//! Medium-scale consistency: a 40-edge, 800-endpoint fabric under random
//! traffic must conserve packets — every injected Send terminates in
//! exactly one of the accounted outcomes — and control-plane state must
//! reconcile across routers and servers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::controller::FabricBuilder;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

#[test]
fn packet_conservation_and_state_reconciliation() {
    let n_edges = 40;
    let n_endpoints = 800;
    let n_sends = 4_000u64;

    let mut b = FabricBuilder::new(77);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    let g_even = GroupId(2);
    let g_odd = GroupId(3);
    // even→even and odd→odd allowed; cross-group denied.
    b.allow(vn, g_even, g_even);
    b.allow(vn, g_odd, g_odd);

    let edges: Vec<_> = (0..n_edges).map(|i| b.add_edge(format!("e{i}"))).collect();
    let border = b.add_border(
        "border",
        vec![Ipv4Prefix::new(Ipv4Addr::new(93, 184, 0, 0), 16).unwrap()],
    );
    let endpoints: Vec<_> = (0..n_endpoints)
        .map(|i| b.mint_endpoint(vn, if i % 2 == 0 { g_even } else { g_odd }))
        .collect();

    let mut f = b.build();
    let mut rng = SmallRng::seed_from_u64(1234);

    // Attach everyone, staggered over a second.
    for (i, ep) in endpoints.iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_secs_f64(rng.gen::<f64>());
        f.attach_at(at, edges[i % n_edges], *ep, PortId(i as u16));
    }
    f.run_until(SimTime::ZERO + SimDuration::from_secs(5));
    let onboarded: u64 = edges.iter().map(|e| f.edge(*e).stats().onboarded).sum();
    assert_eq!(onboarded, n_endpoints as u64);

    // Random traffic: mixture of allowed, denied, external and
    // nonexistent destinations.
    let start = SimTime::ZERO + SimDuration::from_secs(10);
    for k in 0..n_sends {
        let src_i = rng.gen_range(0..n_endpoints);
        let src = endpoints[src_i];
        let dst = match rng.gen_range(0..10) {
            0 => Eid::V4(Ipv4Addr::new(93, 184, 1, 1)),   // external
            1 => Eid::V4(Ipv4Addr::new(10, 1, 200, 200)), // nonexistent
            _ => Eid::V4(endpoints[rng.gen_range(0..n_endpoints)].ipv4),
        };
        let at = start + SimDuration::from_secs_f64(rng.gen::<f64>() * 20.0);
        f.send_at(at, edges[src_i % n_edges], src.mac, dst, 200, k, false);
    }
    f.run_until(start + SimDuration::from_secs(40));

    // ── Conservation ──────────────────────────────────────────────────
    let mut delivered = 0u64;
    let mut policy_drops = 0u64;
    let mut hop_exhausted_edges = 0u64;
    let mut unknown = 0u64;
    for e in &edges {
        let s = f.edge(*e).stats();
        delivered += s.delivered;
        policy_drops += s.policy_drops;
        hop_exhausted_edges += s.hop_exhausted;
        unknown += s.unknown_source;
    }
    let bs = f.border(border).stats();
    let total_terminal = delivered
        + bs.delivered
        + policy_drops
        + bs.policy_drops
        + unknown
        + hop_exhausted_edges
        + f.metrics().counter("fabric.hop_exhausted")
        - hop_exhausted_edges
        + bs.unroutable
        + bs.external;
    assert_eq!(
        total_terminal,
        n_sends,
        "every packet must terminate exactly once \
         (delivered={delivered} borderDelivered={} policy={policy_drops}+{} \
          unknown={unknown} hops={} unroutable={} external={})",
        bs.delivered,
        bs.policy_drops,
        f.metrics().counter("fabric.hop_exhausted"),
        bs.unroutable,
        bs.external
    );

    // ── Reconciliation ────────────────────────────────────────────────
    // Routing server holds 2 EIDs per endpoint (all registrations fresh).
    assert_eq!(f.routing_server().server().db_len(), 2 * n_endpoints);
    // Border's synced table mirrors it.
    assert_eq!(f.border(border).fib_len(), 2 * n_endpoints);
    // Every edge's map-cache only holds IPv4 mappings it actually
    // resolved — bounded by distinct destinations.
    for e in &edges {
        assert!(f.edge(*e).fib_len_v4() <= n_endpoints);
    }
    // Attached endpoints sum to the population.
    let attached: usize = edges.iter().map(|e| f.edge(*e).attached()).sum();
    assert_eq!(attached, n_endpoints);
}

#[test]
fn reactive_state_stays_a_fraction_of_proactive_state() {
    // The Fig. 9 headline at a synthetic scale: with traffic locality,
    // edge caches stay well below the full table the border carries.
    let n_edges = 20;
    let n_endpoints = 400;

    let mut b = FabricBuilder::new(88);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    let g = GroupId(1);
    b.allow(vn, g, g);
    let edges: Vec<_> = (0..n_edges).map(|i| b.add_edge(format!("e{i}"))).collect();
    let border = b.add_border("border", vec![]);
    let endpoints: Vec<_> = (0..n_endpoints).map(|_| b.mint_endpoint(vn, g)).collect();
    let mut f = b.build();
    let mut rng = SmallRng::seed_from_u64(5);

    for (i, ep) in endpoints.iter().enumerate() {
        f.attach_at(SimTime::ZERO, edges[i % n_edges], *ep, PortId(i as u16));
    }
    f.run_until(SimTime::ZERO + SimDuration::from_secs(2));

    // Localized traffic: every endpoint talks to ~6 popular servers.
    let start = SimTime::ZERO + SimDuration::from_secs(3);
    for (i, ep) in endpoints.iter().enumerate() {
        for k in 0..3 {
            let server = &endpoints[rng.gen_range(0..12)];
            let at = start + SimDuration::from_secs_f64(rng.gen::<f64>() * 5.0);
            f.send_at(
                at,
                edges[i % n_edges],
                ep.mac,
                Eid::V4(server.ipv4),
                300,
                (i * 10 + k) as u64,
                false,
            );
        }
    }
    f.run_until(start + SimDuration::from_secs(20));

    let border_fib = f.border(border).fib_len_v4();
    assert_eq!(border_fib, n_endpoints, "border carries the full table");
    let max_edge_fib = edges.iter().map(|e| f.edge(*e).fib_len_v4()).max().unwrap();
    let avg_edge_fib: f64 = edges
        .iter()
        .map(|e| f.edge(*e).fib_len_v4() as f64)
        .sum::<f64>()
        / n_edges as f64;
    assert!(
        (avg_edge_fib as usize) * 5 < border_fib,
        "reactive edges must carry a small fraction: avg={avg_edge_fib:.1} border={border_fib}"
    );
    assert!(max_edge_fib < border_fib);
}
