//! Reproducibility: every scenario is a pure function of its seed.
//! Two runs with the same seed must agree bit-for-bit on every metric;
//! different seeds must (overwhelmingly) differ.

use sda_workloads::campus::{CampusParams, CampusScenario};
use sda_workloads::warehouse::{run_lisp, WarehouseParams};

fn tiny_campus(seed: u64) -> CampusParams {
    CampusParams {
        days: 2,
        endpoints: 40,
        edges: 3,
        seed,
        ..CampusParams::building_a()
    }
}

#[test]
fn campus_identical_across_runs() {
    let run = |seed: u64| {
        let mut s = CampusScenario::build(tiny_campus(seed));
        s.run();
        let m = s.fabric.metrics();
        (
            m.series(&s.border_series(0)).to_vec(),
            m.series(&s.edge_series(0)).to_vec(),
            m.counter("fabric.delivered"),
            m.counter("fabric.map_requests"),
        )
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed ⇒ identical run");

    let c = run(10);
    assert_ne!(
        (a.2, a.3),
        (c.2, c.3),
        "different seed should perturb traffic counts"
    );
}

#[test]
fn warehouse_identical_across_runs() {
    let mut p = WarehouseParams::small();
    p.hosts = 200;
    p.moves_per_sec = 50.0;
    p.measured_moves = 20;
    let delays = |p: &WarehouseParams| -> Vec<Option<f64>> {
        run_lisp(p).iter().map(|s| s.delay_secs()).collect()
    };
    assert_eq!(delays(&p), delays(&p));
    let mut p2 = p.clone();
    p2.seed ^= 1;
    assert_ne!(delays(&p), delays(&p2));
}

#[test]
fn simulator_event_order_is_stable_under_ties() {
    // Two messages injected for the same instant must be delivered in
    // injection order on every run (sequence-number tie-break).
    use sda_simnet::{Context, Node, NodeId, SimTime, Simulator};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Recorder {
        log: Rc<RefCell<Vec<u32>>>,
    }
    impl Node<u32> for Recorder {
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, msg: u32) {
            self.log.borrow_mut().push(msg);
        }
    }

    let run = || {
        let mut sim = Simulator::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(Recorder { log: log.clone() }));
        for i in 0..100 {
            sim.inject_at(SimTime::ZERO, n, i);
        }
        sim.run_to_completion(1_000);
        let result = log.borrow().clone();
        drop(sim);
        result
    };
    let got = run();
    assert_eq!(got, (0..100).collect::<Vec<u32>>());
    assert_eq!(got, run());
}
