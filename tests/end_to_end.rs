//! End-to-end fabric behavior across `sda-core`, `sda-lisp`,
//! `sda-policy` and `sda-simnet`: the full §3 lifecycle on one fabric —
//! onboarding, reactive resolution, segmentation, mobility with SMR,
//! and L2 ARP conversion.

use sda_core::controller::{BorderHandle, EdgeHandle, FabricBuilder};
use sda_core::EndpointIdentity;
use sda_core::Fabric;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};
use std::net::Ipv4Addr;

const USERS: GroupId = GroupId(10);
const SERVERS: GroupId = GroupId(20);

struct World {
    fabric: Fabric,
    edges: Vec<EdgeHandle>,
    border: BorderHandle,
    vn: VnId,
    users: Vec<EndpointIdentity>,
    server: EndpointIdentity,
}

fn world(seed: u64, n_edges: usize, n_users: usize) -> World {
    let mut b = FabricBuilder::new(seed);
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    b.allow(vn, USERS, USERS);
    b.allow(vn, USERS, SERVERS);
    b.allow(vn, SERVERS, USERS);
    let edges: Vec<EdgeHandle> = (0..n_edges).map(|i| b.add_edge(format!("e{i}"))).collect();
    let border = b.add_border(
        "border",
        vec![Ipv4Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).unwrap()],
    );
    let users: Vec<EndpointIdentity> = (0..n_users).map(|_| b.mint_endpoint(vn, USERS)).collect();
    let server = b.mint_endpoint(vn, SERVERS);
    World {
        fabric: b.build(),
        edges,
        border,
        vn,
        users,
        server,
    }
}

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

#[test]
fn onboarding_registers_all_eids_and_arp_pairs() {
    let mut w = world(1, 3, 6);
    for (i, u) in w.users.iter().enumerate() {
        w.fabric
            .attach_at(ms(0), w.edges[i % 3], *u, PortId(i as u16));
    }
    w.fabric.attach_at(ms(0), w.edges[0], w.server, PortId(99));
    w.fabric.run_until(ms(100));

    // 7 endpoints × 2 EIDs (IPv4 + MAC).
    assert_eq!(w.fabric.routing_server().server().db_len(), 14);
    assert_eq!(w.fabric.routing_server().arp_entries(), 7);
    let onboarded: u64 = w
        .edges
        .iter()
        .map(|e| w.fabric.edge(*e).stats().onboarded)
        .sum();
    assert_eq!(onboarded, 7);
    // Onboarding latency was recorded for every endpoint.
    assert_eq!(
        w.fabric.metrics().samples("fabric.onboarding_secs").len(),
        7
    );
    // Border is synchronized with all mappings via pub/sub.
    assert_eq!(w.fabric.border(w.border).fib_len(), 14);
}

#[test]
fn reactive_resolution_first_packet_via_border_then_direct() {
    let mut w = world(2, 2, 2);
    let (alice, bob) = (w.users[0], w.users[1]);
    w.fabric.attach_at(ms(0), w.edges[0], alice, PortId(1));
    w.fabric.attach_at(ms(0), w.edges[1], bob, PortId(1));
    w.fabric.run_until(ms(100));

    for k in 0..5 {
        w.fabric.send_at(
            ms(200 + k * 50),
            w.edges[0],
            alice.mac,
            Eid::V4(bob.ipv4),
            800,
            k,
            false,
        );
    }
    w.fabric.run_until(ms(600));

    let e0 = w.fabric.edge(w.edges[0]).stats();
    let e1 = w.fabric.edge(w.edges[1]).stats();
    assert_eq!(e1.delivered, 5, "all packets delivered");
    assert_eq!(
        e0.default_routed, 1,
        "only the cold packet took the default route"
    );
    assert_eq!(e0.map_requests, 1, "one resolution for the whole flow");
    assert_eq!(w.fabric.border(w.border).stats().relayed, 1);
}

#[test]
fn negative_resolution_deletes_cached_state() {
    let mut w = world(3, 2, 2);
    let (alice, bob) = (w.users[0], w.users[1]);
    w.fabric.attach_at(ms(0), w.edges[0], alice, PortId(1));
    w.fabric.attach_at(ms(0), w.edges[1], bob, PortId(1));
    w.fabric.run_until(ms(100));
    // Warm alice's cache toward bob.
    w.fabric.send_at(
        ms(200),
        w.edges[0],
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        1,
        false,
    );
    w.fabric.run_until(ms(300));
    assert_eq!(w.fabric.edge(w.edges[0]).fib_len(), 1);

    // Bob leaves for the night: registration expires, server purges, and
    // alice's next probe resolves negatively → cache entry deleted
    // (the §4.2 building-B effect).
    w.fabric.detach_at(ms(310), w.edges[1], bob.mac);
    // run past TTL (2h) + purge interval
    let after_ttl = SimTime::ZERO + SimDuration::from_hours(3);
    w.fabric.run_until(after_ttl);
    // Cache entry may have idled out as well; force a fresh probe which
    // must re-resolve and get a negative.
    w.fabric.send_at(
        after_ttl + SimDuration::from_secs(1),
        w.edges[0],
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        2,
        false,
    );
    w.fabric.run_until(after_ttl + SimDuration::from_secs(10));
    assert_eq!(
        w.fabric.edge(w.edges[0]).fib_len(),
        0,
        "negative reply (or idle decay) must have removed the entry"
    );
    assert!(w.fabric.routing_server().server().stats().negative_replies >= 1);
}

#[test]
fn mobility_triangle_old_edge_forwards_then_smr_heals() {
    let mut w = world(4, 3, 2);
    let (alice, bob) = (w.users[0], w.users[1]);
    w.fabric.attach_at(ms(0), w.edges[0], alice, PortId(1));
    w.fabric.attach_at(ms(0), w.edges[1], bob, PortId(1));
    w.fabric.run_until(ms(100));
    w.fabric.send_at(
        ms(150),
        w.edges[0],
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        1,
        false,
    );
    w.fabric.run_until(ms(250));

    // Bob roams to edge 2.
    w.fabric.detach_at(ms(300), w.edges[1], bob.mac);
    w.fabric.attach_at(ms(301), w.edges[2], bob, PortId(5));
    w.fabric.run_until(ms(400));

    // Stale-cache packet: e1 forwards (Fig. 5/6) and SMRs e0.
    w.fabric.send_at(
        ms(410),
        w.edges[0],
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        2,
        false,
    );
    w.fabric.run_until(ms(600));
    assert_eq!(w.fabric.edge(w.edges[1]).stats().mobility_forwards, 1);
    assert_eq!(w.fabric.edge(w.edges[1]).stats().smrs_sent, 1);
    assert_eq!(w.fabric.edge(w.edges[2]).stats().delivered, 1);

    // Healed path: direct to e2, no more forwarding.
    w.fabric.send_at(
        ms(700),
        w.edges[0],
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        3,
        false,
    );
    w.fabric.run_until(ms(900));
    assert_eq!(w.fabric.edge(w.edges[2]).stats().delivered, 2);
    assert_eq!(w.fabric.edge(w.edges[1]).stats().mobility_forwards, 1);
    // Server recorded exactly one move.
    assert_eq!(
        w.fabric.routing_server().server().stats().moves,
        2,
        "IPv4 + MAC EIDs both moved"
    );
}

#[test]
fn l2_arp_broadcast_becomes_unicast_l2_delivery() {
    let mut w = world(5, 2, 2);
    let (alice, bob) = (w.users[0], w.users[1]);
    w.fabric.attach_at(ms(0), w.edges[0], alice, PortId(1));
    w.fabric.attach_at(ms(0), w.edges[1], bob, PortId(1));
    w.fabric.run_until(ms(100));

    w.fabric.arp_at(ms(200), w.edges[0], alice.mac, bob.ipv4);
    w.fabric.run_until(ms(400));
    assert_eq!(w.fabric.metrics().counter("fabric.arp_converted"), 1);
    assert_eq!(w.fabric.metrics().counter("routing_server.arp_queries"), 1);
    // The unicast L2 frame reached bob's edge via a MAC-EID mapping.
    assert_eq!(w.fabric.edge(w.edges[1]).stats().delivered, 1);

    // ARP for an unknown address is absorbed, not flooded.
    w.fabric.arp_at(
        ms(500),
        w.edges[0],
        alice.mac,
        Ipv4Addr::new(10, 100, 99, 99),
    );
    w.fabric.run_until(ms(700));
    assert_eq!(w.fabric.metrics().counter("fabric.arp_unresolved"), 1);
}

#[test]
fn cross_vn_traffic_is_structurally_impossible() {
    let mut b = FabricBuilder::new(6);
    let vn_a = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    let vn_b = b.add_vn(2, Ipv4Prefix::new(Ipv4Addr::new(10, 2, 0, 0), 16).unwrap());
    let g = GroupId(1);
    b.allow(vn_a, g, g);
    b.allow(vn_b, g, g);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    let border = b.add_border("border", vec![]);
    let a = b.mint_endpoint(vn_a, g);
    let bb = b.mint_endpoint(vn_b, g);
    let mut f = b.build();
    f.attach_at(ms(0), e0, a, PortId(1));
    f.attach_at(ms(0), e1, bb, PortId(1));
    f.run_until(ms(100));

    f.send_at(ms(200), e0, a.mac, Eid::V4(bb.ipv4), 100, 1, false);
    f.run_until(ms(500));
    assert_eq!(f.edge(e1).stats().delivered, 0);
    assert_eq!(f.border(border).stats().unroutable, 1);
    // And the resolution failed inside VN A — negative reply, no leak.
    assert!(f.routing_server().server().stats().negative_replies >= 1);
}

#[test]
fn same_group_by_default_denied_without_rule() {
    // Empty matrix: even same-group traffic drops (default deny).
    let mut b = FabricBuilder::new(7);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    b.add_border("border", vec![]);
    let a = b.mint_endpoint(vn, USERS);
    let c = b.mint_endpoint(vn, USERS);
    let mut f = b.build();
    f.attach_at(ms(0), e0, a, PortId(1));
    f.attach_at(ms(0), e1, c, PortId(1));
    f.run_until(ms(100));
    f.send_at(ms(200), e0, a.mac, Eid::V4(c.ipv4), 100, 1, false);
    f.run_until(ms(400));
    assert_eq!(f.edge(e1).stats().delivered, 0);
    assert_eq!(f.edge(e1).stats().policy_drops, 1);
}

#[test]
fn endpoint_count_and_fib_accounting_consistent() {
    let mut w = world(8, 3, 9);
    for (i, u) in w.users.iter().enumerate() {
        w.fabric
            .attach_at(ms(0), w.edges[i % 3], *u, PortId(i as u16));
    }
    w.fabric.run_until(ms(200));
    let attached: usize = w.edges.iter().map(|e| w.fabric.edge(*e).attached()).sum();
    assert_eq!(attached, 9);
    // Everyone talks to user 0: edges 1 and 2 cache one mapping each.
    let target = Eid::V4(w.users[0].ipv4);
    for (i, u) in w.users.iter().enumerate().skip(1) {
        w.fabric.send_at(
            ms(300 + i as u64),
            w.edges[i % 3],
            u.mac,
            target,
            64,
            i as u64,
            false,
        );
    }
    w.fabric.run_until(ms(800));
    assert_eq!(w.fabric.edge(w.edges[1]).fib_len_v4(), 1);
    assert_eq!(w.fabric.edge(w.edges[2]).fib_len_v4(), 1);
    // Edge 0 hosts the target: local deliveries, no cache entry needed.
    assert_eq!(w.fabric.edge(w.edges[0]).fib_len_v4(), 0);
    let _ = w.vn;
}
