//! Wire-format interop: the control plane behaves identically whether
//! messages are passed as structures or serialized through the
//! byte-accurate `sda-wire` formats — i.e. the simulator's structured
//! shortcut loses nothing.

use proptest::prelude::*;
use sda_lisp::MapServer;
use sda_simnet::SimTime;
use sda_types::{Eid, MacAddr, Rloc, VnId};
use sda_wire::lisp::Message;
use std::net::Ipv4Addr;

fn vn() -> VnId {
    VnId::new(7).unwrap()
}

/// Serialize → parse → feed; compare against direct feeding.
fn drive_both(messages: Vec<Message>) {
    let mut direct = MapServer::new(Rloc::for_router_index(65_000));
    let mut via_bytes = MapServer::new(Rloc::for_router_index(65_000));
    for msg in messages {
        let out_direct = direct.handle(msg.clone(), SimTime::ZERO);
        let bytes = msg.emit();
        let parsed = Message::parse(&bytes).expect("emitted message must parse");
        assert_eq!(parsed, msg, "wire round-trip must be lossless");
        let out_bytes = via_bytes.handle(parsed, SimTime::ZERO);
        // Replies must agree, and byte-roundtrip each reply too.
        assert_eq!(out_direct, out_bytes);
        for (_, reply) in out_bytes {
            let reply_bytes = reply.emit();
            assert_eq!(Message::parse(&reply_bytes).unwrap(), reply);
        }
    }
    assert_eq!(direct.db().len(), via_bytes.db().len());
    assert_eq!(direct.stats(), via_bytes.stats());
}

#[test]
fn scripted_control_sequence_interops() {
    let edge1 = Rloc::for_router_index(1);
    let edge2 = Rloc::for_router_index(2);
    let border = Rloc::for_router_index(30_000);
    let host = Eid::V4(Ipv4Addr::new(10, 7, 0, 1));
    let host_mac = Eid::Mac(MacAddr::from_seed(1));
    drive_both(vec![
        Message::Subscribe {
            nonce: 1,
            vn: vn(),
            subscriber: border,
        },
        Message::MapRegister {
            nonce: 2,
            vn: vn(),
            eid: host,
            rloc: edge1,
            ttl_secs: 300,
            want_notify: true,
        },
        Message::MapRegister {
            nonce: 3,
            vn: vn(),
            eid: host_mac,
            rloc: edge1,
            ttl_secs: 300,
            want_notify: false,
        },
        Message::MapRequest {
            nonce: 4,
            smr: false,
            vn: vn(),
            eid: host,
            itr_rloc: edge2,
        },
        // The move.
        Message::MapRegister {
            nonce: 5,
            vn: vn(),
            eid: host,
            rloc: edge2,
            ttl_secs: 300,
            want_notify: false,
        },
        // Unknown EID → negative.
        Message::MapRequest {
            nonce: 6,
            smr: false,
            vn: vn(),
            eid: Eid::V4(Ipv4Addr::new(10, 7, 9, 9)),
            itr_rloc: edge1,
        },
    ]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random register/request interleavings: structured and byte-fed
    /// servers remain in lockstep.
    #[test]
    fn random_sequences_interop(ops in proptest::collection::vec((0u8..3, 0u8..32, 0u16..8), 1..60)) {
        let msgs: Vec<Message> = ops
            .into_iter()
            .enumerate()
            .map(|(i, (kind, host, edge))| {
                let eid = Eid::V4(Ipv4Addr::new(10, 7, 0, host));
                let rloc = Rloc::for_router_index(edge + 1);
                match kind {
                    0 => Message::MapRegister {
                        nonce: i as u64,
                        vn: vn(),
                        eid,
                        rloc,
                        ttl_secs: 300,
                        want_notify: false,
                    },
                    1 => Message::MapRequest {
                        nonce: i as u64,
                        smr: false,
                        vn: vn(),
                        eid,
                        itr_rloc: rloc,
                    },
                    _ => Message::Subscribe { nonce: i as u64, vn: vn(), subscriber: rloc },
                }
            })
            .collect();
        drive_both(msgs);
    }
}

/// The data plane equivalent: a packet pushed through the byte encoder
/// and back makes the same egress decision (checked in depth in
/// `sda-core`'s pipeline tests; here we cross the crate boundary with
/// the fabric's own VXLAN-GPO framing constants).
#[test]
fn vxlan_constants_match_fabric_expectations() {
    use sda_core::pipeline::{decode_packet, encode_packet};
    use sda_core::{InnerPacket, OverlayPacket};
    use sda_types::GroupId;

    let pkt = OverlayPacket {
        vn: vn(),
        src_group: GroupId(42),
        policy_applied: false,
        hops_left: 8,
        origin: Rloc::for_router_index(1),
        inner: InnerPacket {
            src: Eid::V4(Ipv4Addr::new(10, 7, 0, 1)),
            dst: Eid::V4(Ipv4Addr::new(10, 7, 0, 2)),
            payload_len: 1400,
            flow: 99,
            track: true,
        },
    };
    let bytes = encode_packet(
        Rloc::for_router_index(1),
        Rloc::for_router_index(2),
        &pkt,
        sda_dataplane::OuterChecksum::Full,
    )
    .unwrap();

    // The outer stack is real: IPv4 proto 17, UDP dst 4789, VNI = VN.
    let outer = sda_wire::ipv4::Packet::new_checked(&bytes[..]).unwrap();
    assert_eq!(u8::from(outer.protocol()), 17);
    let udp = sda_wire::udp::Packet::new_checked(outer.payload()).unwrap();
    assert_eq!(udp.dst_port(), sda_wire::udp::VXLAN_PORT);
    let vx = sda_wire::vxlan::Packet::new_checked(udp.payload()).unwrap();
    assert_eq!(vx.vni(), vn());
    assert_eq!(vx.group(), Some(GroupId(42)));

    let (_, _, decoded) = decode_packet(&bytes).unwrap();
    assert_eq!(decoded, pkt);
}
