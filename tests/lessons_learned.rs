//! The §5 "Lessons Learnt" scenarios, end to end:
//!
//! * §5.1 — underlay connectivity outage: reachability tracking purges
//!   routes through a dead RLOC and traffic falls back to the border.
//! * §5.2 — edge reboot: the transient border↔edge loop is damped by
//!   the hop budget and healed by re-onboarding.
//! * Fig. 6 — SMR rate limiting under sustained stale traffic.

use sda_core::controller::FabricBuilder;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

const G: GroupId = GroupId(1);

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

fn secs(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(n)
}

#[test]
fn underlay_outage_purges_routes_and_falls_back_to_border() {
    let mut b = FabricBuilder::new(51);
    b.enable_underlay_dynamics();
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    b.allow(vn, G, G);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    let _border = b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, G);
    let bob = b.mint_endpoint(vn, G);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    // Let adjacencies form (hello interval 1 s).
    f.run_until(secs(5));

    // Warm e0's cache toward bob@e1.
    f.send_at(
        secs(5) + SimDuration::from_millis(10),
        e0,
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        1,
        false,
    );
    f.run_until(secs(6));
    assert_eq!(f.edge(e0).fib_len(), 1);

    // e1 dies. After the dead interval (4 s), e0's link-state view drops
    // it and the reachability tracker purges the cache entry (§5.1).
    f.set_edge_failed(e1, true);
    f.run_until(secs(15));
    assert_eq!(
        f.edge(e0).fib_len(),
        0,
        "routes through the dead RLOC must be purged"
    );
    assert!(f.metrics().counter("fabric.reachability_purges") >= 1);

    // Subsequent traffic falls back to the default route (border), and
    // is NOT sent to the dead edge.
    let before = f.edge(e0).stats().default_routed;
    f.send_at(secs(16), e0, alice.mac, Eid::V4(bob.ipv4), 100, 2, false);
    f.run_until(secs(17));
    assert_eq!(f.edge(e0).stats().default_routed, before + 1);
}

#[test]
fn edge_reboot_transient_loop_is_damped_and_heals() {
    let mut b = FabricBuilder::new(52);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    b.allow(vn, G, G);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    let _border = b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, G);
    let bob = b.mint_endpoint(vn, G);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    f.run_until(ms(100));
    f.send_at(ms(150), e0, alice.mac, Eid::V4(bob.ipv4), 100, 1, false);
    f.run_until(ms(300));
    assert_eq!(f.edge(e1).stats().delivered, 1);

    // e1 reboots: empty VRF and cache. The border still believes bob is
    // at e1 (registration not expired), so traffic loops border→e1→
    // border→… until the hop budget kills the packet (§5.2).
    f.reboot_edge(e1);
    f.send_at(ms(400), e0, alice.mac, Eid::V4(bob.ipv4), 100, 2, false);
    f.run_until(ms(600));
    let hop_exhausted = f.metrics().counter("fabric.hop_exhausted");
    assert!(
        hop_exhausted >= 1,
        "transient loop must be damped by the hop budget"
    );
    assert_eq!(
        f.edge(e1).stats().delivered,
        1,
        "no new delivery: the rebooted edge lost its VRF (count unchanged)"
    );

    // Bob's port is re-detected → re-onboarding → traffic heals.
    f.attach_at(ms(700), e1, bob, PortId(1));
    f.run_until(ms(800));
    f.send_at(ms(850), e0, alice.mac, Eid::V4(bob.ipv4), 100, 3, false);
    f.run_until(ms(1000));
    assert_eq!(
        f.edge(e1).stats().delivered,
        2,
        "delivery restored after reboot"
    );
}

#[test]
fn rebooted_edge_smrs_senders_to_refresh_their_caches() {
    // §5.2's second mechanism: "the rebooting router will not recognize
    // the incoming traffic, so it will send the data plane message …
    // to the originating edge router. This will trigger a refresh."
    let mut b = FabricBuilder::new(53);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    b.allow(vn, G, G);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, G);
    let bob = b.mint_endpoint(vn, G);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    f.run_until(ms(100));
    f.send_at(ms(150), e0, alice.mac, Eid::V4(bob.ipv4), 100, 1, false);
    f.run_until(ms(300));

    f.reboot_edge(e1);
    // alice's edge still caches bob@e1 and sends directly — e1 does not
    // recognize the traffic and SMRs e0.
    f.send_at(ms(400), e0, alice.mac, Eid::V4(bob.ipv4), 100, 2, false);
    f.run_until(ms(600));
    assert!(
        f.edge(e1).stats().smrs_sent >= 1,
        "rebooted edge must SMR the origin"
    );
    assert!(
        f.edge(e0).stats().map_requests >= 2,
        "origin must re-resolve"
    );
}

#[test]
fn smr_is_rate_limited_per_source() {
    let mut b = FabricBuilder::new(54);
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    b.allow(vn, G, G);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    let e2 = b.add_edge("e2");
    b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, G);
    let bob = b.mint_endpoint(vn, G);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    f.run_until(ms(100));
    f.send_at(ms(150), e0, alice.mac, Eid::V4(bob.ipv4), 100, 1, false);
    f.run_until(ms(300));

    // bob moves to e2; alice bursts 50 packets within the SMR window.
    f.detach_at(ms(310), e1, bob.mac);
    f.attach_at(ms(311), e2, bob, PortId(1));
    f.run_until(ms(350));
    // Freeze e0's re-resolution by sending the burst back-to-back.
    for k in 0..50 {
        f.send_at(
            ms(360) + SimDuration::from_micros(k * 10),
            e0,
            alice.mac,
            Eid::V4(bob.ipv4),
            100,
            k,
            false,
        );
    }
    f.run_until(ms(600));
    let smrs = f.edge(e1).stats().smrs_sent;
    assert!(
        smrs <= 2,
        "SMRs must be deduplicated within the hold-down window, got {smrs}"
    );
    // All packets still delivered (forwarded by the old edge).
    assert_eq!(f.edge(e2).stats().delivered, 50 + 1 - 1);
}

#[test]
fn failed_edge_recovers_and_rejoins_underlay() {
    let mut b = FabricBuilder::new(55);
    b.enable_underlay_dynamics();
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    b.allow(vn, G, G);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, G);
    let bob = b.mint_endpoint(vn, G);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    f.run_until(secs(5));

    f.set_edge_failed(e1, true);
    f.run_until(secs(15)); // dead interval passes, e1 purged

    f.set_edge_failed(e1, false);
    f.run_until(secs(30)); // hellos resume, adjacency reforms

    // Traffic to bob flows directly again after a resolution.
    f.send_at(
        secs(30) + SimDuration::from_millis(1),
        e0,
        alice.mac,
        Eid::V4(bob.ipv4),
        100,
        7,
        false,
    );
    f.run_until(secs(31));
    assert_eq!(
        f.edge(e1).stats().delivered,
        1,
        "revived edge serves traffic"
    );
}
