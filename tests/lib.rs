//! Integration-test package: the tests live in sibling files
//! (`end_to_end.rs`, `lessons_learned.rs`, `wire_interop.rs`,
//! `determinism.rs`, `scaling.rs`), each exercising multiple crates
//! together. This library target exists only to anchor the package.
