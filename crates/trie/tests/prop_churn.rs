//! Churn property test for the arena trie: interleaved batches of
//! insert / remove / retain / compact against a `BTreeMap` model,
//! asserting `longest_match` and `iter` agree after **every** batch.
//!
//! `prop_model.rs` already checks per-operation agreement; this file
//! targets what the arena layout specifically puts at risk — free-list
//! reuse handing out stale slots, opportunistic compaction firing
//! mid-churn, and explicit `compact()` calls at arbitrary points must
//! all leave the logical contents untouched.
//!
//! The dense batch variants deliberately cross the stride boundary:
//! `InsertDense` populates every extension of a short base prefix (a
//! width-7+ block holds >= 128 span ends, promoting an 8-bit fanout
//! table at the next `compact()`), and `RemoveDense` empties it again
//! (the next `compact()` demotes back to plain Patricia), so the
//! promotion/demotion seam and the insert/remove table-invalidation
//! paths are all exercised against the model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sda_trie::{BitStr, PatriciaTrie};

/// One batch of churn. Each variant mutates (or re-lays) the trie and
/// the model in lockstep; agreement is asserted after every batch.
#[derive(Clone, Debug)]
enum Batch {
    /// Insert all keys (values derived from the batch seed).
    Insert(Vec<Vec<bool>>, u32),
    /// Remove all keys (hits and misses both exercised).
    Remove(Vec<Vec<bool>>),
    /// Retain only entries whose value parity matches.
    RetainParity(bool),
    /// Explicit DFS re-layout.
    Compact,
    /// Insert every `width`-bit extension of `base` (dense block:
    /// promotion fodder for the stride layer).
    InsertDense {
        base: Vec<bool>,
        width: usize,
        seed: u32,
    },
    /// Remove every `width`-bit extension of `base` (demotion fodder).
    RemoveDense { base: Vec<bool>, width: usize },
}

fn arb_key() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..24)
}

/// Dense-block parameters: a short base so blocks overlap across
/// batches, and widths up to 8 so both the 4-bit (>= 8 ends within 4)
/// and 8-bit (>= 128 ends within 8) promotion thresholds trip.
fn arb_dense() -> impl Strategy<Value = (Vec<bool>, usize)> {
    (proptest::collection::vec(any::<bool>(), 0..6), 1usize..=8)
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    prop_oneof![
        (proptest::collection::vec(arb_key(), 1..40), any::<u32>())
            .prop_map(|(ks, seed)| Batch::Insert(ks, seed)),
        proptest::collection::vec(arb_key(), 1..40).prop_map(Batch::Remove),
        any::<bool>().prop_map(Batch::RetainParity),
        Just(Batch::Compact),
        (arb_dense(), any::<u32>()).prop_map(|((base, width), seed)| Batch::InsertDense {
            base,
            width,
            seed
        }),
        arb_dense().prop_map(|(base, width)| Batch::RemoveDense { base, width }),
    ]
}

/// All `width`-bit extensions of `base`, as full keys.
fn dense_block(base: &[bool], width: usize) -> Vec<Vec<bool>> {
    (0..1u32 << width)
        .map(|ext| {
            let mut k = base.to_vec();
            for b in (0..width).rev() {
                k.push((ext >> b) & 1 == 1);
            }
            k
        })
        .collect()
}

fn to_bits(k: &[bool]) -> BitStr {
    let mut s = BitStr::empty();
    for &b in k {
        s.push(b);
    }
    s
}

/// The model keyed by the key's bit rendering ("" = empty key), which
/// makes longest-prefix-of a `starts_with` scan.
fn model_lpm(model: &BTreeMap<String, u32>, key: &str) -> Option<(usize, u32)> {
    model
        .iter()
        .filter(|(p, _)| key.starts_with(p.as_str()))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (p.len(), *v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn churn_agrees_with_model(
        batches in proptest::collection::vec(arb_batch(), 1..24),
        probes in proptest::collection::vec(arb_key(), 8),
    ) {
        let mut trie = PatriciaTrie::new();
        let mut model: BTreeMap<String, u32> = BTreeMap::new();
        for (bi, batch) in batches.iter().enumerate() {
            match batch {
                Batch::Insert(keys, seed) => {
                    for (ki, k) in keys.iter().enumerate() {
                        let v = seed.wrapping_add(ki as u32);
                        let key = to_bits(k);
                        prop_assert_eq!(
                            trie.insert(&key, v),
                            model.insert(key.to_string(), v),
                            "insert disagreement in batch {}", bi
                        );
                    }
                }
                Batch::Remove(keys) => {
                    for k in keys {
                        let key = to_bits(k);
                        prop_assert_eq!(
                            trie.remove(&key),
                            model.remove(&key.to_string()),
                            "remove disagreement in batch {}", bi
                        );
                    }
                }
                Batch::RetainParity(keep_odd) => {
                    let removed = trie.retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    let before = model.len();
                    model.retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    prop_assert_eq!(removed, before - model.len());
                }
                Batch::Compact => trie.compact(),
                Batch::InsertDense { base, width, seed } => {
                    for (ki, k) in dense_block(base, *width).iter().enumerate() {
                        let v = seed.wrapping_add(ki as u32);
                        let key = to_bits(k);
                        prop_assert_eq!(
                            trie.insert(&key, v),
                            model.insert(key.to_string(), v),
                            "dense insert disagreement in batch {}", bi
                        );
                    }
                    // Promote immediately: the dense block is in place,
                    // so this compact is what builds the stride table
                    // the following batches then churn against.
                    trie.compact();
                }
                Batch::RemoveDense { base, width } => {
                    for k in dense_block(base, *width) {
                        let key = to_bits(&k);
                        prop_assert_eq!(
                            trie.remove(&key),
                            model.remove(&key.to_string()),
                            "dense remove disagreement in batch {}", bi
                        );
                    }
                    // Demote: with the block gone, occupancy falls back
                    // under the promotion thresholds.
                    trie.compact();
                }
            }

            // After every batch: size, LPM on probe keys, and full
            // iteration all agree with the model.
            prop_assert_eq!(trie.len(), model.len(), "len drift in batch {}", bi);
            for p in &probes {
                let key = to_bits(p);
                prop_assert_eq!(
                    trie.longest_match(&key).map(|(l, v)| (l, *v)),
                    model_lpm(&model, &key.to_string()),
                    "LPM disagreement in batch {}", bi
                );
            }
            let mut got: Vec<(String, u32)> =
                trie.iter().map(|(k, v)| (k.to_string(), *v)).collect();
            got.sort();
            let want: Vec<(String, u32)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(got, want, "iter disagreement in batch {}", bi);
        }

        // Cool-down: a final compact must be a logical no-op, and the
        // arena must hold exactly the live structure (no stranded
        // free slots).
        trie.compact();
        let stats = trie.mem_stats();
        prop_assert_eq!(stats.free_list_len, 0);
        prop_assert_eq!(stats.arena_len, stats.live_nodes);
        prop_assert!(
            stats.stride_filled <= stats.stride_slots,
            "stride accounting inconsistent: {} filled > {} slots",
            stats.stride_filled, stats.stride_slots
        );
        let mut got: Vec<(String, u32)> =
            trie.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        got.sort();
        let want: Vec<(String, u32)> =
            model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want, "final compact changed contents");
    }
}
