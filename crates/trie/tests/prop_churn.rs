//! Churn property test for the arena trie: interleaved batches of
//! insert / remove / retain / compact against a `BTreeMap` model,
//! asserting `longest_match` and `iter` agree after **every** batch.
//!
//! `prop_model.rs` already checks per-operation agreement; this file
//! targets what the arena layout specifically puts at risk — free-list
//! reuse handing out stale slots, opportunistic compaction firing
//! mid-churn, and explicit `compact()` calls at arbitrary points must
//! all leave the logical contents untouched.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sda_trie::{BitStr, PatriciaTrie};

/// One batch of churn. Each variant mutates (or re-lays) the trie and
/// the model in lockstep; agreement is asserted after every batch.
#[derive(Clone, Debug)]
enum Batch {
    /// Insert all keys (values derived from the batch seed).
    Insert(Vec<Vec<bool>>, u32),
    /// Remove all keys (hits and misses both exercised).
    Remove(Vec<Vec<bool>>),
    /// Retain only entries whose value parity matches.
    RetainParity(bool),
    /// Explicit DFS re-layout.
    Compact,
}

fn arb_key() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..24)
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    prop_oneof![
        (proptest::collection::vec(arb_key(), 1..40), any::<u32>())
            .prop_map(|(ks, seed)| Batch::Insert(ks, seed)),
        proptest::collection::vec(arb_key(), 1..40).prop_map(Batch::Remove),
        any::<bool>().prop_map(Batch::RetainParity),
        Just(Batch::Compact),
    ]
}

fn to_bits(k: &[bool]) -> BitStr {
    let mut s = BitStr::empty();
    for &b in k {
        s.push(b);
    }
    s
}

/// The model keyed by the key's bit rendering ("" = empty key), which
/// makes longest-prefix-of a `starts_with` scan.
fn model_lpm(model: &BTreeMap<String, u32>, key: &str) -> Option<(usize, u32)> {
    model
        .iter()
        .filter(|(p, _)| key.starts_with(p.as_str()))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (p.len(), *v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn churn_agrees_with_model(
        batches in proptest::collection::vec(arb_batch(), 1..24),
        probes in proptest::collection::vec(arb_key(), 8),
    ) {
        let mut trie = PatriciaTrie::new();
        let mut model: BTreeMap<String, u32> = BTreeMap::new();
        for (bi, batch) in batches.iter().enumerate() {
            match batch {
                Batch::Insert(keys, seed) => {
                    for (ki, k) in keys.iter().enumerate() {
                        let v = seed.wrapping_add(ki as u32);
                        let key = to_bits(k);
                        prop_assert_eq!(
                            trie.insert(&key, v),
                            model.insert(key.to_string(), v),
                            "insert disagreement in batch {}", bi
                        );
                    }
                }
                Batch::Remove(keys) => {
                    for k in keys {
                        let key = to_bits(k);
                        prop_assert_eq!(
                            trie.remove(&key),
                            model.remove(&key.to_string()),
                            "remove disagreement in batch {}", bi
                        );
                    }
                }
                Batch::RetainParity(keep_odd) => {
                    let removed = trie.retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    let before = model.len();
                    model.retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    prop_assert_eq!(removed, before - model.len());
                }
                Batch::Compact => trie.compact(),
            }

            // After every batch: size, LPM on probe keys, and full
            // iteration all agree with the model.
            prop_assert_eq!(trie.len(), model.len(), "len drift in batch {}", bi);
            for p in &probes {
                let key = to_bits(p);
                prop_assert_eq!(
                    trie.longest_match(&key).map(|(l, v)| (l, *v)),
                    model_lpm(&model, &key.to_string()),
                    "LPM disagreement in batch {}", bi
                );
            }
            let mut got: Vec<(String, u32)> =
                trie.iter().map(|(k, v)| (k.to_string(), *v)).collect();
            got.sort();
            let want: Vec<(String, u32)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(got, want, "iter disagreement in batch {}", bi);
        }

        // Cool-down: a final compact must be a logical no-op, and the
        // arena must hold exactly the live structure (no stranded
        // free slots).
        trie.compact();
        let stats = trie.mem_stats();
        prop_assert_eq!(stats.free_list_len, 0);
        prop_assert_eq!(stats.arena_len, stats.live_nodes);
        let mut got: Vec<(String, u32)> =
            trie.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        got.sort();
        let want: Vec<(String, u32)> =
            model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want, "final compact changed contents");
    }
}
