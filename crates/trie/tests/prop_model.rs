//! Model-based property tests: the Patricia trie must agree with a naive
//! reference implementation (linear scan over a `Vec`) on every operation
//! sequence, and its structural invariants must hold throughout.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_trie::{BitStr, EidTrie, PatriciaTrie};
use sda_types::{Eid, EidPrefix, Ipv4Prefix};

/// Naive reference: HashMap keyed by the bit-string rendering.
#[derive(Default)]
struct Model {
    entries: HashMap<String, u32>,
}

impl Model {
    fn insert(&mut self, k: &BitStr, v: u32) -> Option<u32> {
        self.entries.insert(k.to_string(), v)
    }
    fn get(&self, k: &BitStr) -> Option<u32> {
        self.entries.get(&k.to_string()).copied()
    }
    fn remove(&mut self, k: &BitStr) -> Option<u32> {
        self.entries.remove(&k.to_string())
    }
    fn longest_match(&self, k: &BitStr) -> Option<(usize, u32)> {
        let key = k.to_string();
        self.entries
            .iter()
            .filter(|(p, _)| key.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (p.len(), *v))
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<bool>, u32),
    Remove(Vec<bool>),
    Get(Vec<bool>),
    Lpm(Vec<bool>),
    /// `longest_match_mut` + overwrite the matched value.
    LpmMutSet(Vec<bool>, u32),
    /// `retain` keeping only values with the given parity.
    RetainParity(bool),
}

fn arb_key() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..24)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Remove),
        arb_key().prop_map(Op::Get),
        arb_key().prop_map(Op::Lpm),
        (arb_key(), any::<u32>()).prop_map(|(k, v)| Op::LpmMutSet(k, v)),
        any::<bool>().prop_map(Op::RetainParity),
    ]
}

fn to_bits(k: &[bool]) -> BitStr {
    let mut s = BitStr::empty();
    for &b in k {
        s.push(b);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn trie_matches_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut trie = PatriciaTrie::new();
        let mut model = Model::default();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let key = to_bits(k);
                    prop_assert_eq!(trie.insert(&key, *v), model.insert(&key, *v));
                }
                Op::Remove(k) => {
                    let key = to_bits(k);
                    prop_assert_eq!(trie.remove(&key), model.remove(&key));
                }
                Op::Get(k) => {
                    let key = to_bits(k);
                    prop_assert_eq!(trie.get(&key).copied(), model.get(&key));
                }
                Op::Lpm(k) => {
                    let key = to_bits(k);
                    prop_assert_eq!(
                        trie.longest_match(&key).map(|(l, v)| (l, *v)),
                        model.longest_match(&key)
                    );
                }
                Op::LpmMutSet(k, new_v) => {
                    let key = to_bits(k);
                    // The mutable match must find exactly what the
                    // immutable one does, and writes through it must land.
                    let got = trie.longest_match_mut(&key).map(|(l, v)| {
                        let old = *v;
                        *v = *new_v;
                        (l, old)
                    });
                    let want = model.longest_match(&key);
                    prop_assert_eq!(got, want);
                    if let Some((l, _)) = want {
                        let matched: String = key.to_string()[..l].to_string();
                        model.entries.insert(matched.clone(), *new_v);
                        let matched_bits = to_bits(
                            &matched.chars().map(|c| c == '1').collect::<Vec<_>>(),
                        );
                        prop_assert_eq!(trie.get(&matched_bits), Some(new_v));
                    }
                }
                Op::RetainParity(keep_odd) => {
                    let removed =
                        trie.retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    let before = model.entries.len();
                    model
                        .entries
                        .retain(|_, v| (*v % 2 == 1) == *keep_odd);
                    prop_assert_eq!(removed, before - model.entries.len());
                }
            }
            prop_assert_eq!(trie.len(), model.entries.len());
        }
        // Final iteration agreement.
        let mut got: Vec<(String, u32)> =
            trie.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        got.sort();
        let mut want: Vec<(String, u32)> =
            model.entries.iter().map(|(k, v)| (k.clone(), *v)).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Depth stays bounded by the key width no matter the workload — the
    /// Fig. 7 "flat latency" property in structural form.
    #[test]
    fn depth_bounded_by_width(keys in proptest::collection::vec(any::<u32>(), 1..500)) {
        let mut trie = PatriciaTrie::new();
        for k in &keys {
            let bytes = k.to_be_bytes();
            trie.insert(&BitStr::from_bytes(&bytes, 32), *k);
        }
        prop_assert!(trie.max_depth() <= 32);
    }

    /// EidTrie LPM agrees with a linear scan over `EidPrefix::contains`.
    #[test]
    fn eid_trie_lookup_matches_contains_scan(
        prefixes in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..64),
        probe in any::<u32>(),
    ) {
        let mut m = EidTrie::new();
        let mut list: Vec<(EidPrefix, usize)> = Vec::new();
        for (i, (addr, len)) in prefixes.iter().enumerate() {
            let p: EidPrefix =
                Ipv4Prefix::new(Ipv4Addr::from(*addr), *len).unwrap().into();
            m.insert(p, i);
            // Later inserts of the same canonical prefix overwrite.
            list.retain(|(q, _)| *q != p);
            list.push((p, i));
        }
        let eid = Eid::V4(Ipv4Addr::from(probe));
        let expect = list
            .iter()
            .filter(|(p, _)| p.contains(eid))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = m.lookup(&eid).map(|(p, v)| (p, *v));
        prop_assert_eq!(got, expect);
    }

    /// `retain(|..| false)` is a full clear: no structural nodes survive,
    /// and the removed count equals the former length.
    #[test]
    fn retain_nothing_restores_empty(keys in proptest::collection::hash_set(any::<u32>(), 1..200)) {
        let mut trie = PatriciaTrie::new();
        for k in &keys {
            trie.insert(&BitStr::from_bytes(&k.to_be_bytes(), 32), *k);
        }
        let removed = trie.retain(|_, _| false);
        prop_assert_eq!(removed, keys.len());
        prop_assert!(trie.is_empty());
        prop_assert_eq!(trie.iter().count(), 0);
        prop_assert_eq!(trie.max_depth(), 0);
    }

    /// Insert-then-remove of a disjoint batch restores emptiness (no leaks
    /// of structural nodes visible through iteration or len).
    #[test]
    fn insert_remove_all_restores_empty(keys in proptest::collection::hash_set(any::<u32>(), 1..200)) {
        let mut trie = PatriciaTrie::new();
        for k in &keys {
            trie.insert(&BitStr::from_bytes(&k.to_be_bytes(), 32), *k);
        }
        prop_assert_eq!(trie.len(), keys.len());
        for k in &keys {
            prop_assert_eq!(trie.remove(&BitStr::from_bytes(&k.to_be_bytes(), 32)), Some(*k));
        }
        prop_assert!(trie.is_empty());
        prop_assert_eq!(trie.iter().count(), 0);
        prop_assert_eq!(trie.max_depth(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interleaved lockstep batch walk must agree with the
    /// sequential `longest_match` on every key — including batches
    /// larger than one 32-lane chunk, duplicate keys in one batch, and
    /// writes through the returned mutable references.
    #[test]
    fn batch_walk_matches_sequential(
        inserts in proptest::collection::vec((arb_key(), any::<u32>()), 1..120),
        queries in proptest::collection::vec(arb_key(), 1..90),
    ) {
        let mut trie = PatriciaTrie::new();
        for (k, v) in &inserts {
            trie.insert(&to_bits(k), *v);
        }
        let keys: Vec<BitStr> = queries.iter().map(|k| to_bits(k)).collect();
        let want: Vec<Option<(usize, u32)>> = keys
            .iter()
            .map(|k| trie.longest_match(k).map(|(l, v)| (l, *v)))
            .collect();

        let mut got: Vec<Option<(usize, u32)>> = vec![None; keys.len()];
        trie.longest_match_mut_each(&keys, |i, res| {
            got[i] = res.map(|(l, v)| (l, *v));
        });
        prop_assert_eq!(&got, &want);

        // Writes through the batch walk land in place (last write wins
        // for duplicate keys, same as sequential mutation would).
        trie.longest_match_mut_each(&keys, |i, res| {
            if let Some((_, v)) = res {
                *v = i as u32 + 1_000_000;
            }
        });
        let mut last_writer = std::collections::HashMap::new();
        for (i, w) in want.iter().enumerate() {
            if let Some((len, _)) = w {
                last_writer.insert(keys[i].slice(0, *len), i as u32 + 1_000_000);
            }
        }
        for (key, val) in &last_writer {
            prop_assert_eq!(trie.get(key), Some(val));
        }
    }
}
