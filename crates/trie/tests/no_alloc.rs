//! Proof, not promise: the LPM lookup paths perform **zero heap
//! allocations**. A counting global allocator wraps the system one; the
//! test drives `get` / `longest_match` / `longest_match_mut` over a
//! populated trie and asserts the allocation counter does not move.
//!
//! This file deliberately holds a single `#[test]` — the counter is
//! process-global, and a concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sda_trie::{BitStr, EidTrie, PatriciaTrie};
use sda_types::{Eid, EidPrefix};
use std::net::Ipv4Addr;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn lookup_paths_allocate_nothing() {
    // -- Raw PatriciaTrie over 32-bit keys.
    let mut trie = PatriciaTrie::new();
    for i in 0u32..10_000 {
        let k = i.wrapping_mul(2_654_435_761);
        trie.insert(&BitStr::from_bytes(&k.to_be_bytes(), 32), k);
    }

    // -- EidTrie as the map layers use it.
    let mut eids: EidTrie<u32> = EidTrie::new();
    for i in 0u32..10_000 {
        let e = Eid::V4(Ipv4Addr::from(0x0A00_0000 | i));
        eids.insert(EidPrefix::host(e), i);
    }

    let before = allocations();

    let mut hits = 0u64;
    for i in 0u32..10_000 {
        let k = i.wrapping_mul(2_654_435_761);
        let key = BitStr::from_bytes(&k.to_be_bytes(), 32);
        if trie.get(&key).is_some() {
            hits += 1;
        }
        if trie.longest_match(&key).is_some() {
            hits += 1;
        }
        if let Some((_, v)) = trie.longest_match_mut(&key) {
            *v = v.wrapping_add(1);
            hits += 1;
        }
        let e = Eid::V4(Ipv4Addr::from(0x0A00_0000 | i));
        // `EidTrie::lookup` reconstructs the matched `EidPrefix` — also
        // allocation-free (stack byte buffer).
        if eids.lookup(&e).is_some() {
            hits += 1;
        }
        if let Some((_, v)) = eids.lookup_mut(&e) {
            *v = v.wrapping_add(1);
            hits += 1;
        }
        // Misses must not allocate either.
        let miss = Eid::V4(Ipv4Addr::from(0xC0A8_0000 | i));
        if eids.lookup(&miss).is_some() {
            hits += 1;
        }
    }

    let after = allocations();
    assert_eq!(hits, 50_000, "every present key must hit");
    assert_eq!(
        after - before,
        0,
        "lookup hot path performed {} heap allocations",
        after - before
    );
}
