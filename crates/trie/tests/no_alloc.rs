//! Proof, not promise: the LPM lookup paths perform **zero heap
//! allocations**. A counting global allocator wraps the system one; the
//! test drives `get` / `longest_match` / `longest_match_mut` /
//! `longest_match_mut_each` / `longest_match_each_where_lanes` (at both
//! 32 and 64 lanes) over a populated trie — before *and after* an arena
//! `compact()`, i.e. over both the plain Patricia and the
//! stride-promoted layouts — and asserts the allocation counter does
//! not move. (`compact()` itself allocates the re-laid arena; it runs
//! outside the measured windows, as the bulk-load hooks do in
//! production.)
//!
//! This file deliberately holds a single `#[test]` — the counter is
//! process-global, and a concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sda_trie::{BitStr, EidTrie, PatriciaTrie};
use sda_types::{Eid, EidPrefix};
use std::net::Ipv4Addr;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Drives every lookup surface once per key and returns the hit count.
/// Runs under the measured (must-not-allocate) windows.
fn drive_lookups(trie: &mut PatriciaTrie<u32>, eids: &mut EidTrie<u32>) -> u64 {
    let mut hits = 0u64;
    for i in 0u32..10_000 {
        let k = i.wrapping_mul(2_654_435_761);
        let key = BitStr::from_bytes(&k.to_be_bytes(), 32);
        if trie.get(&key).is_some() {
            hits += 1;
        }
        if trie.longest_match(&key).is_some() {
            hits += 1;
        }
        if let Some((_, v)) = trie.longest_match_mut(&key) {
            *v = v.wrapping_add(1);
            hits += 1;
        }
        let e = Eid::V4(Ipv4Addr::from(0x0A00_0000 | i));
        // `EidTrie::lookup` reconstructs the matched `EidPrefix` — also
        // allocation-free (stack byte buffer).
        if eids.lookup(&e).is_some() {
            hits += 1;
        }
        if let Some((_, v)) = eids.lookup_mut(&e) {
            *v = v.wrapping_add(1);
            hits += 1;
        }
        // Misses must not allocate either.
        let miss = Eid::V4(Ipv4Addr::from(0xC0A8_0000 | i));
        if eids.lookup(&miss).is_some() {
            hits += 1;
        }
    }

    // The interleaved lockstep batch walk: enough keys for two full
    // chunks at the widened [`sda_trie::DEFAULT_LANES`] (64) plus a
    // ragged tail, hits and misses mixed, keys staged in a stack array.
    let mut keys = [BitStr::empty(); 160];
    for (j, slot) in keys.iter_mut().enumerate() {
        let k = (j as u32 % 40).wrapping_mul(2_654_435_761);
        *slot = if j % 5 == 4 {
            BitStr::from_bytes(&0xC0A8_0001u32.to_be_bytes(), 32) // miss
        } else {
            BitStr::from_bytes(&k.to_be_bytes(), 32)
        };
    }
    trie.longest_match_mut_each(&keys, |_, res| {
        if let Some((_, v)) = res {
            *v = v.wrapping_add(1);
            hits += 1;
        }
    });
    // Both explicit lane widths of the shared walk (the lane-sweep
    // surface the benches tune), through the filtered entry point.
    trie.longest_match_each_where_lanes::<32, _, _>(
        &keys,
        |_| true,
        |_, res| {
            hits += res.is_some() as u64;
        },
    );
    trie.longest_match_each_where_lanes::<64, _, _>(
        &keys,
        |_| true,
        |_, res| {
            hits += res.is_some() as u64;
        },
    );
    hits
}

#[test]
fn lookup_paths_allocate_nothing() {
    // -- Raw PatriciaTrie over 32-bit keys.
    let mut trie = PatriciaTrie::new();
    for i in 0u32..10_000 {
        let k = i.wrapping_mul(2_654_435_761);
        trie.insert(&BitStr::from_bytes(&k.to_be_bytes(), 32), k);
    }

    // -- EidTrie as the map layers use it.
    let mut eids: EidTrie<u32> = EidTrie::new();
    for i in 0u32..10_000 {
        let e = Eid::V4(Ipv4Addr::from(0x0A00_0000 | i));
        eids.insert(EidPrefix::host(e), i);
    }

    // Per-key surfaces + three batch walks over 160 keys (128 hits each:
    // every fifth key is a deliberate miss).
    const EXPECTED_HITS: u64 = 50_000 + 3 * 128;

    // Window 1: the insertion-order arena.
    let before = allocations();
    let hits = drive_lookups(&mut trie, &mut eids);
    let after = allocations();
    assert_eq!(hits, EXPECTED_HITS, "every present key must hit");
    assert_eq!(
        after - before,
        0,
        "lookup hot path performed {} heap allocations",
        after - before
    );

    // Window 2: the DFS-compacted arena (the production layout after
    // bulk-load hooks run), now with dense upper levels promoted to
    // stride fanout tables — so this window proves the *stride* descent
    // (table hop + packed best extraction) allocates nothing too.
    // Compaction itself may allocate — it happens between the windows —
    // but lookups afterwards must not.
    trie.compact();
    eids.compact();
    assert!(
        trie.mem_stats().stride_tables > 0,
        "10k well-spread keys must promote at least one stride table, \
         or window 2 no longer exercises the stride descent"
    );
    let before = allocations();
    let hits = drive_lookups(&mut trie, &mut eids);
    let after = allocations();
    assert_eq!(hits, EXPECTED_HITS, "compaction must not change results");
    assert_eq!(
        after - before,
        0,
        "post-compact lookups performed {} heap allocations",
        after - before
    );
}
