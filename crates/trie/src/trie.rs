//! The path-compressed binary radix (Patricia) trie.
//!
//! Structure: every node carries a *label* (the bits between its parent
//! and itself), an optional value, and up to two children indexed by the
//! first bit of their labels. Invariants maintained by all operations:
//!
//! 1. A child's label is never empty and starts with the bit it is
//!    indexed under.
//! 2. No interior node without a value has fewer than two children
//!    (otherwise it is merged with its single child) — *path compression*.
//!
//! Lookup cost is therefore O(key bits), independent of the number of
//! stored entries — the property Fig. 7a/7b measures.
//!
//! ## Inline keys and the zero-allocation lookup path
//!
//! Labels are [`BitStr`]s: inline `(u128, u8)` words, never heap data
//! (every key in the system is at most 128 bits — see the `bits` module
//! docs for why that bound holds). All label surgery during descent —
//! slicing off matched bits, comparing a label against the remaining key —
//! is shift/mask/`leading_zeros` arithmetic on words. Consequently
//! [`PatriciaTrie::get`], [`PatriciaTrie::longest_match`] and
//! [`PatriciaTrie::longest_match_mut`] perform **zero heap allocations**;
//! only `insert` allocates (the new node), and `remove`/`retain` only
//! free.
//!
//! For callers that previously did a remove + insert round trip to update
//! a value (the map-cache's `last_used` refresh), use
//! [`PatriciaTrie::longest_match_mut`]; for batch eviction, use
//! [`PatriciaTrie::retain`], which prunes and re-compresses in one
//! traversal instead of one remove per victim.

use crate::bits::BitStr;

#[derive(Clone)]
struct Node<V> {
    /// Bits between the parent node and this node.
    label: BitStr,
    /// Value stored at this exact prefix, if any.
    value: Option<V>,
    /// Children indexed by their label's first bit.
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new(label: BitStr, value: Option<V>) -> Self {
        Node {
            label,
            value,
            children: [None, None],
        }
    }

    fn child_count(&self) -> usize {
        self.children.iter().filter(|c| c.is_some()).count()
    }
}

/// A Patricia trie mapping bit-string prefixes to values.
#[derive(Clone)]
pub struct PatriciaTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V: core::fmt::Debug> core::fmt::Debug for PatriciaTrie<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V> Default for PatriciaTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PatriciaTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PatriciaTrie {
            root: Node::new(BitStr::empty(), None),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: &BitStr, value: V) -> Option<V> {
        let (old, _) = Self::insert_at(&mut self.root, key, 0, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Recursive insert below `node`, whose label is already matched up
    /// to `depth` bits of `key`. Returns (old value, ()).
    fn insert_at(node: &mut Node<V>, key: &BitStr, depth: usize, value: V) -> (Option<V>, ()) {
        // `depth` bits of key consumed before node's label started.
        let label_len = node.label.len();
        debug_assert!(depth + label_len <= key.len() || label_len > 0 || depth <= key.len());
        let after_label = depth + label_len;

        if after_label == key.len() {
            // Key ends exactly at this node.
            return (node.value.replace(value), ());
        }

        // Key continues below this node.
        let next_bit = key.bit(after_label) as usize;
        match &mut node.children[next_bit] {
            None => {
                let label = key.slice(after_label, key.len());
                node.children[next_bit] = Some(Box::new(Node::new(label, Some(value))));
                (None, ())
            }
            Some(child) => {
                let rest = key.slice(after_label, key.len());
                let common = child.label.common_prefix_len(&rest);
                if common == child.label.len() {
                    // Child label fully matches; descend.
                    Self::insert_at(child, key, after_label, value)
                } else {
                    // Split the child at `common`.
                    let child_box = node.children[next_bit].take().unwrap();
                    let split = Self::split_node(child_box, common);
                    node.children[next_bit] = Some(split);
                    let child = node.children[next_bit].as_mut().unwrap();
                    if common == rest.len() {
                        // Key ends exactly at the split point.
                        (child.value.replace(value), ())
                    } else {
                        let bit = rest.bit(common) as usize;
                        debug_assert!(child.children[bit].is_none());
                        let label = rest.slice(common, rest.len());
                        child.children[bit] = Some(Box::new(Node::new(label, Some(value))));
                        (None, ())
                    }
                }
            }
        }
    }

    /// Splits `node` after `at` bits of its label, returning the new
    /// parent whose single child is the original node (with shortened
    /// label).
    fn split_node(mut node: Box<Node<V>>, at: usize) -> Box<Node<V>> {
        debug_assert!(at < node.label.len());
        let parent_label = node.label.slice(0, at);
        let child_label = node.label.slice(at, node.label.len());
        let bit = child_label.bit(0) as usize;
        node.label = child_label;
        let mut parent = Box::new(Node::new(parent_label, None));
        parent.children[bit] = Some(node);
        parent
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &BitStr) -> Option<&V> {
        let mut node = &self.root;
        let mut depth = node.label.len(); // root label is empty
        debug_assert_eq!(depth, 0);
        loop {
            if depth == key.len() {
                return node.value.as_ref();
            }
            let bit = key.bit(depth) as usize;
            let child = node.children[bit].as_ref()?;
            let rest = key.slice(depth, key.len());
            if !child.label.is_prefix_of(&rest) {
                return None;
            }
            depth += child.label.len();
            node = child;
        }
    }

    /// Longest-prefix match: the value of the longest stored prefix of
    /// `key`, together with its bit length.
    pub fn longest_match(&self, key: &BitStr) -> Option<(usize, &V)> {
        let mut node = &self.root;
        let mut depth = 0usize;
        let mut best: Option<(usize, &V)> = node.value.as_ref().map(|v| (0, v));
        loop {
            if depth == key.len() {
                return best;
            }
            let bit = key.bit(depth) as usize;
            let Some(child) = node.children[bit].as_ref() else {
                return best;
            };
            let rest = key.slice(depth, key.len());
            if !child.label.is_prefix_of(&rest) {
                return best;
            }
            depth += child.label.len();
            node = child;
            if let Some(v) = node.value.as_ref() {
                best = Some((depth, v));
            }
        }
    }

    /// Raw, reference-free trie step: the `bit` child of `node`, or null.
    ///
    /// Reads the pointer straight out of the `Option<Box<Node<V>>>`
    /// slot: `Option<Box<T>>` is guaranteed null-pointer-optimized
    /// (documented in the std `Option` representation notes — same
    /// layout as a nullable pointer, `None` = null), and a raw read
    /// preserves the stored pointer's provenance. No reference of any
    /// kind is created, which is what keeps the interleaved multi-lane
    /// walk in [`PatriciaTrie::longest_match_mut_each`] sound: lanes
    /// parked on shared upper nodes never assert uniqueness over them.
    ///
    /// # Safety
    /// `node` must point to a live `Node<V>` reachable from a borrow
    /// that permits reads.
    #[inline]
    unsafe fn raw_child(node: *mut Node<V>, bit: usize) -> *mut Node<V> {
        core::ptr::addr_of_mut!((*node).children[bit])
            .cast::<*mut Node<V>>()
            .read()
    }

    /// Longest-prefix match returning a mutable value reference, so
    /// callers can update entry metadata (e.g. an LRU stamp) in place
    /// instead of a remove + insert round trip.
    ///
    /// Zero-allocation and **single-pass**: one descent finds and
    /// returns the deepest match (the first version walked down twice —
    /// an immutable scan then a mutable re-walk — which doubled the
    /// pointer-chasing on the forwarding hot path).
    pub fn longest_match_mut(&mut self, key: &BitStr) -> Option<(usize, &mut V)> {
        // The descent keeps a candidate pointer to the best value seen
        // while continuing down the nodes below it — a shape the borrow
        // checker cannot express with references (the classic
        // conditional-return limitation), hence the raw pointers.
        //
        // SAFETY: all pointers derive from the exclusive `&mut self`
        // borrow; the walk performs only reads through them (labels and
        // `Option` discriminants; children via the reference-free
        // `raw_child`), the structure is not mutated meanwhile, and
        // exactly one `&mut V` escapes, bounded by `self`'s lifetime.
        let mut node: *mut Node<V> = &mut self.root;
        let mut depth = 0usize;
        unsafe {
            let value_slot = |n: *mut Node<V>| core::ptr::addr_of_mut!((*n).value);
            let mut best: Option<(usize, *mut Option<V>)> =
                (*value_slot(node)).is_some().then(|| (0, value_slot(node)));
            loop {
                if depth == key.len() {
                    break;
                }
                let bit = key.bit(depth) as usize;
                let child = Self::raw_child(node, bit);
                if child.is_null() {
                    break;
                }
                let label: BitStr = (*child).label;
                if !label.is_prefix_of(&key.slice(depth, key.len())) {
                    break;
                }
                depth += label.len();
                node = child;
                if (*value_slot(node)).is_some() {
                    best = Some((depth, value_slot(node)));
                }
            }
            best.map(|(d, slot)| (d, (*slot).as_mut().expect("slot held a value")))
        }
    }

    /// Batched [`PatriciaTrie::longest_match_mut`]: calls
    /// `f(i, match)` for every key, where a match is `(prefix bit
    /// length, &mut value)`.
    ///
    /// The point is not the loop — it is the **interleaved descent**:
    /// keys advance in lockstep, one trie step per round, so the node
    /// loads of the whole batch are independent and overlap in the
    /// memory pipeline. A sequential descent serializes ~log(n)
    /// dependent cache misses per key; the lockstep walk exposes them
    /// as memory-level parallelism, which is where the batched data
    /// plane's speedup over per-packet processing comes from (the
    /// `dataplane_fwd` bench measures it).
    ///
    pub fn longest_match_mut_each<F>(&mut self, keys: &[BitStr], mut f: F)
    where
        F: FnMut(usize, Option<(usize, &mut V)>),
    {
        /// One in-flight lookup of the lockstep walk. `best` is the
        /// `Option<V>` slot of the deepest match so far (null = none).
        struct Lane<V> {
            node: *mut Node<V>,
            depth: usize,
            best_depth: usize,
            best: *mut Option<V>,
            done: bool,
        }
        impl<V> Clone for Lane<V> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<V> Copy for Lane<V> {}

        const LANES: usize = 32;
        let root: *mut Node<V> = &mut self.root;
        for (ci, chunk) in keys.chunks(LANES).enumerate() {
            let mut lanes = [Lane::<V> {
                node: root,
                depth: 0,
                best_depth: 0,
                best: core::ptr::null_mut(),
                done: false,
            }; LANES];
            // SAFETY: every pointer derives from the exclusive `&mut
            // self`, and the descent never creates a reference: labels
            // are copied out by raw place reads, child pointers come
            // from the reference-free `raw_child`, and value presence is
            // checked through `addr_of_mut!` slots. Lanes therefore
            // never assert uniqueness over the upper nodes they share.
            // Mutable references materialize only in the tail loop, one
            // at a time, each ending when `f` returns — `f`'s HRTB
            // signature prevents escape (duplicate keys in one batch
            // simply yield the same slot twice, sequentially).
            unsafe {
                let root_vslot = core::ptr::addr_of_mut!((*root).value);
                if (*root_vslot).is_some() {
                    for lane in lanes.iter_mut().take(chunk.len()) {
                        lane.best = root_vslot;
                    }
                }
                loop {
                    let mut active = false;
                    for (i, lane) in lanes.iter_mut().enumerate().take(chunk.len()) {
                        if lane.done {
                            continue;
                        }
                        let key = &chunk[i];
                        if lane.depth == key.len() {
                            lane.done = true;
                            continue;
                        }
                        let bit = key.bit(lane.depth) as usize;
                        let child = Self::raw_child(lane.node, bit);
                        if child.is_null() {
                            lane.done = true;
                            continue;
                        }
                        let label: BitStr = (*child).label;
                        if !label.is_prefix_of(&key.slice(lane.depth, key.len())) {
                            lane.done = true;
                            continue;
                        }
                        lane.depth += label.len();
                        lane.node = child;
                        let vslot = core::ptr::addr_of_mut!((*child).value);
                        if (*vslot).is_some() {
                            lane.best_depth = lane.depth;
                            lane.best = vslot;
                        }
                        active = true;
                    }
                    if !active {
                        break;
                    }
                }
                for (i, lane) in lanes.iter().enumerate().take(chunk.len()) {
                    let res = if lane.best.is_null() {
                        None
                    } else {
                        Some((
                            lane.best_depth,
                            (*lane.best).as_mut().expect("best slot holds a value"),
                        ))
                    };
                    f(ci * LANES + i, res);
                }
            }
        }
    }

    /// Keeps only entries for which `f` returns true, re-compressing the
    /// structure in a single traversal. Returns how many entries were
    /// removed.
    ///
    /// This replaces the collect-victims-then-remove-each pattern: one
    /// pass over the trie instead of one full descent per victim.
    pub fn retain<F: FnMut(&BitStr, &mut V) -> bool>(&mut self, mut f: F) -> usize {
        let mut removed = 0usize;
        Self::retain_at(&mut self.root, BitStr::empty(), &mut f, &mut removed);
        self.len -= removed;
        removed
    }

    fn retain_at<F: FnMut(&BitStr, &mut V) -> bool>(
        node: &mut Node<V>,
        prefix: BitStr,
        f: &mut F,
        removed: &mut usize,
    ) {
        let here = prefix.concat(&node.label);
        if let Some(v) = node.value.as_mut() {
            if !f(&here, v) {
                node.value = None;
                *removed += 1;
            }
        }
        for i in 0..2 {
            if node.children[i].is_some() {
                {
                    let child = node.children[i].as_mut().unwrap();
                    Self::retain_at(child, here, f, removed);
                }
                // Re-establish compression exactly as `remove` does: a
                // valueless child with zero children disappears, with one
                // child merges into its grandchild.
                let child = node.children[i].as_mut().unwrap();
                if child.value.is_none() {
                    match child.child_count() {
                        0 => {
                            node.children[i] = None;
                        }
                        1 => {
                            let mut child_box = node.children[i].take().unwrap();
                            let mut gc = child_box
                                .children
                                .iter_mut()
                                .find_map(Option::take)
                                .expect("child_count said 1");
                            gc.label = child_box.label.concat(&gc.label);
                            node.children[i] = Some(gc);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Removes the value at `key`, returning it. Re-compresses the path.
    pub fn remove(&mut self, key: &BitStr) -> Option<V> {
        let removed = Self::remove_at(&mut self.root, key, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(node: &mut Node<V>, key: &BitStr, depth: usize) -> Option<V> {
        if depth == key.len() {
            return node.value.take();
        }
        let bit = key.bit(depth) as usize;
        let child = node.children[bit].as_mut()?;
        let rest = key.slice(depth, key.len());
        if !child.label.is_prefix_of(&rest) {
            return None;
        }
        let child_depth = depth + child.label.len();
        let removed = Self::remove_at(child, key, child_depth)?;
        // Re-establish compression on the way out.
        let child_ref = node.children[bit].as_mut().unwrap();
        if child_ref.value.is_none() {
            match child_ref.child_count() {
                0 => {
                    node.children[bit] = None;
                }
                1 => {
                    // Merge child with its single grandchild.
                    let mut child_box = node.children[bit].take().unwrap();
                    let gc = child_box
                        .children
                        .iter_mut()
                        .find_map(Option::take)
                        .expect("child_count said 1");
                    let mut gc = gc;
                    gc.label = child_box.label.concat(&gc.label);
                    node.children[bit] = Some(gc);
                }
                _ => {}
            }
        }
        Some(removed)
    }

    /// Iterates `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (BitStr, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect(&self.root, BitStr::empty(), &mut out);
        out.into_iter()
    }

    fn collect<'a>(node: &'a Node<V>, prefix: BitStr, out: &mut Vec<(BitStr, &'a V)>) {
        let here = prefix.concat(&node.label);
        if let Some(v) = node.value.as_ref() {
            out.push((here, v));
        }
        for child in node.children.iter().flatten() {
            Self::collect(child, here, out);
        }
    }

    /// Maximum node depth (edges from the root), a diagnostics metric:
    /// bounded by key bit-width regardless of entry count.
    pub fn max_depth(&self) -> usize {
        fn depth_of<V>(node: &Node<V>) -> usize {
            node.children
                .iter()
                .flatten()
                .map(|c| 1 + depth_of(c))
                .max()
                .unwrap_or(0)
        }
        depth_of(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bits: &str) -> BitStr {
        let mut s = BitStr::empty();
        for c in bits.chars() {
            s.push(c == '1');
        }
        s
    }

    #[test]
    fn insert_get_basic() {
        let mut t = PatriciaTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(&key("1010"), "a"), None);
        assert_eq!(t.insert(&key("1011"), "b"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key("1010")), Some(&"a"));
        assert_eq!(t.get(&key("1011")), Some(&"b"));
        assert_eq!(t.get(&key("101")), None);
        assert_eq!(t.get(&key("10110")), None);
    }

    #[test]
    fn insert_replaces() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("111"), 1);
        assert_eq!(t.insert(&key("111"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key("111")), Some(&2));
    }

    #[test]
    fn empty_key_is_a_valid_entry() {
        let mut t = PatriciaTrie::new();
        t.insert(&BitStr::empty(), "default");
        assert_eq!(t.get(&BitStr::empty()), Some(&"default"));
        // Default route matches everything via LPM.
        assert_eq!(t.longest_match(&key("10101")), Some((0, &"default")));
    }

    #[test]
    fn longest_match_prefers_longest() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("10"), "short");
        t.insert(&key("1010"), "long");
        assert_eq!(t.longest_match(&key("101011")), Some((4, &"long")));
        assert_eq!(t.longest_match(&key("100111")), Some((2, &"short")));
        assert_eq!(t.longest_match(&key("0")), None);
        // Exact length counts too.
        assert_eq!(t.longest_match(&key("1010")), Some((4, &"long")));
    }

    #[test]
    fn split_preserves_existing_entries() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("110011"), "deep");
        t.insert(&key("1100"), "mid"); // ends exactly at split point
        t.insert(&key("110100"), "fork"); // splits at bit 3
        assert_eq!(t.get(&key("110011")), Some(&"deep"));
        assert_eq!(t.get(&key("1100")), Some(&"mid"));
        assert_eq!(t.get(&key("110100")), Some(&"fork"));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_and_recompress() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("1010"), 1);
        t.insert(&key("1011"), 2);
        t.insert(&key("10"), 3);
        assert_eq!(t.remove(&key("1010")), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key("1010")), None);
        assert_eq!(t.get(&key("1011")), Some(&2));
        assert_eq!(t.get(&key("10")), Some(&3));
        assert_eq!(t.remove(&key("1010")), None);
        assert_eq!(t.remove(&key("10")), Some(3));
        assert_eq!(t.remove(&key("1011")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn remove_nonexistent_divergent_key() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("1111"), 1);
        assert_eq!(t.remove(&key("1110")), None);
        assert_eq!(t.remove(&key("11")), None);
        assert_eq!(t.remove(&key("11110")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PatriciaTrie::new();
        let keys = ["0", "00", "01", "1", "101", "111111"];
        for (i, k) in keys.iter().enumerate() {
            t.insert(&key(k), i);
        }
        let mut got: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn depth_bounded_by_key_width() {
        // Insert many 32-bit keys; depth can never exceed 32.
        let mut t = PatriciaTrie::new();
        for i in 0u32..2000 {
            let bytes = i.wrapping_mul(2_654_435_761).to_be_bytes();
            t.insert(&BitStr::from_bytes(&bytes, 32), i);
        }
        assert!(t.max_depth() <= 32, "depth {} exceeds 32", t.max_depth());
        assert_eq!(t.len(), 2000);
    }
}
