//! The path-compressed binary radix (Patricia) trie, arena-compacted,
//! with a multibit **stride layer** over its dense upper levels.
//!
//! Structure: every node carries a *label* (the bits between its parent
//! and itself), an optional value, and up to two children indexed by the
//! first bit of their labels. Invariants maintained by all operations:
//!
//! 1. A child's label is never empty and starts with the bit it is
//!    indexed under.
//! 2. No interior node without a value has fewer than two children
//!    (otherwise it is merged with its single child) — *path compression*.
//!
//! Lookup cost is therefore O(key bits), independent of the number of
//! stored entries — the property Fig. 7a/7b measures.
//!
//! ## Arena layout: contiguous nodes, index children
//!
//! Nodes do **not** live in individual heap boxes. The whole trie is
//! three `Vec`s:
//!
//! * `nodes: Vec<Node>` — the descent-critical data only: label bits
//!   (inline `u128` word + length), two `u32` child indices ([`NONE`] =
//!   no child), the stride table reference (base slot + width) and a
//!   value-presence flag. `Node` is exactly 32 bytes, so **two nodes
//!   share every cache line**.
//! * `values: Vec<Option<V>>` — the payloads, touched once per lookup
//!   (at the final best match), never during the descent.
//! * `stride_tables: Vec<u32>` — the shared fanout-table slab (see the
//!   stride section below).
//!
//! The previous layout (`Option<Box<Node<V>>>` children) made every trie
//! step an independent cache miss into malloc-scattered memory; PR 2's
//! interleaved lockstep batch walk proved the descent is memory-latency
//! bound (32 overlapped lookups ran ~3x faster per packet *only* because
//! their misses overlap). The arena attacks the same bottleneck from the
//! layout side: child hops are `u32` loads from one slab, the hot upper
//! levels pack densely into a few cache lines, and splitting the values
//! out roughly halves the bytes the descent streams through. Every
//! descent step additionally issues a prefetch for **both** children of
//! the node it lands on — the next hop's line is in flight one hop
//! early, overlapping what would otherwise be a strictly serial miss
//! chain (the single-lookup analogue of the batch walk's
//! memory-level parallelism).
//!
//! ## Free-list and compaction
//!
//! `remove`/`retain` push dead slots onto a free-list that `insert`
//! reuses, so churn does not grow the arena. Holes cost locality, not
//! correctness — descents simply skip them — so the trie re-lays itself
//! two ways:
//!
//! * [`PatriciaTrie::compact`] rebuilds the arena in **DFS preorder**:
//!   a node's 0-subtree immediately follows it, so a descent walks
//!   nearly-sequential memory. Bulk-load paths (map-cache population,
//!   RIB sync, VRF onboarding) call it once loading settles.
//! * When the free-list exceeds [`COMPACT_FREE_MIN`] slots *and* half
//!   the arena, `retain` compacts opportunistically — amortized O(1)
//!   per freed slot, so bulk eviction cannot strand a mostly-dead
//!   arena. `remove` never compacts: it runs inline on the forwarding
//!   path (TTL-expired entries are purged by the lookup that finds
//!   them), so it must stay O(key bits) and allocation-free.
//!
//! [`PatriciaTrie::mem_stats`] exposes the layout (live nodes, arena
//! capacity, free-list length, stride occupancy/fill, depth histogram)
//! so benches can print it and regressions are visible in bench output.
//!
//! ## Stride layer: multibit fanout over the dense top
//!
//! At route-table scale the upper trie levels are *dense*: 100k spread
//! keys force branching at nearly every one of the first ~17 bits, so a
//! binary descent burns a dependent load per bit exactly where the data
//! guarantees the fanout exists. The stride layer collapses such levels
//! into 4- or 8-bit fanout tables, Luleå/Tree-Bitmap style: a strided
//! node consumes `s` key bits in **one hop** — direct index extraction
//! from the running key word, no label compare — cutting descent depth
//! ~3-4x at 100k+ routes (18 binary hops become 2-3 table hops plus a
//! short Patricia tail).
//!
//! Tables live in one shared `stride_tables: Vec<u32>` slab in the same
//! arena spirit as the nodes. A width-`s` table is `2^s` slots of two
//! words each:
//!
//! * `next` — the node whose label ends exactly `s` bits below the
//!   strided node along that bit path ([`NONE`] = the path dies inside
//!   the span). Valid because compaction splits every label crossing an
//!   active span boundary, so a landing node always exists.
//! * `best` — the deepest *valued* node strictly inside the span on
//!   that path, packed as `(depth delta << 28) | arena index`, so the
//!   hop records the in-span longest-prefix candidate without walking
//!   the span. The strided node's own value and the landing node's
//!   value are covered by the ordinary arrival checks on either side.
//!
//! **Promotion** happens only inside [`PatriciaTrie::compact`]: during
//! the DFS re-layout each node sitting on a span boundary counts the
//! label-ends in its first 4 and 8 levels; at least
//! [`STRIDE8_MIN_ENDS`] ends promotes an 8-bit table, else
//! [`STRIDE4_MIN_ENDS`] a 4-bit one, else the level stays Patricia — so
//! sparse regions never pay for empty tables, and the choice is
//! re-derived from occupancy on every compaction (a thinned-out level
//! **demotes** the same way). **Invalidation** is conservative:
//! `insert` and `remove` clear the tables of the nodes they descend
//! through (the structure below them may have changed shape), and
//! `retain` drops all tables when anything was freed — lookups fall
//! back to plain binary steps there until the next `compact()`
//! re-promotes. Mutators never build tables; the slab is rebuilt from
//! scratch at each compaction, so stale-slot hazards cannot outlive it.
//!
//! ## Inline keys and the zero-allocation lookup path
//!
//! Labels are [`BitStr`]s: inline `(u128, u8)` words, never heap data
//! (every key in the system is at most 128 bits — see the `bits` module
//! docs for why that bound holds). All label surgery during descent —
//! slicing off matched bits, comparing a label against the remaining key —
//! is shift/mask/`leading_zeros` arithmetic on words. Consequently
//! [`PatriciaTrie::get`], [`PatriciaTrie::longest_match`],
//! [`PatriciaTrie::longest_match_mut`] and
//! [`PatriciaTrie::longest_match_mut_each`] perform **zero heap
//! allocations** — including after a `compact()` (proved by
//! `tests/no_alloc.rs`); only `insert` may allocate (arena growth), and
//! `remove`/`retain` only free or compact.
//!
//! A welcome side effect of index-based children: the lockstep batch
//! walk ([`PatriciaTrie::longest_match_mut_each`]) needs **no `unsafe`**
//! anymore. The old pointer-chasing version kept raw `*mut Node`
//! candidates alive across lanes because the borrow checker cannot
//! express "many readers now, one writer later" through references;
//! lane state is now plain `u32` indices, and the single mutable borrow
//! per result materializes from the index at the end.

use crate::bits::BitStr;

/// Sentinel child index: no child / no best match.
const NONE: u32 = u32::MAX;

/// Root node index. The root always exists and is never freed.
const ROOT: u32 = 0;

/// Opportunistic compaction floor: below this many free slots, churn is
/// ignored (tiny tries re-lay in nanoseconds anyway; the threshold keeps
/// steady small-scale insert/remove cycles from compacting every call).
const COMPACT_FREE_MIN: usize = 64;

/// Default lockstep batch width. Stride hops touch fewer nodes per key,
/// so more in-flight lanes fit the memory-level-parallelism window than
/// the pre-stride 32: the `lpm_hot_path` lane sweep (32 vs 64) measures
/// near-parity per key on the bench box, so the wider window — which
/// halves the per-chunk staging overhead for the dataplane's larger
/// bursts — wins on the forwarding path. The sweep stays in the bench
/// to keep this choice honest; callers that want a different width use
/// the `_lanes` flavors.
pub const DEFAULT_LANES: usize = 64;

/// Stride promotion floor at width 8: label-ends inside the first 8 bits
/// below the candidate (max 510 for a full subtree). 128 ≈ 25% fill, so
/// a 2 KiB table never backs a sparse path.
const STRIDE8_MIN_ENDS: usize = 128;

/// Stride promotion floor at width 4 (max 30 ends; 8 ≈ 27% fill for a
/// 128-byte table).
const STRIDE4_MIN_ENDS: usize = 8;

/// `best` slot packing: bits 28.. hold the value's depth below the
/// strided node (1..=7), bits 0..28 the arena index.
const STRIDE_DELTA_SHIFT: u32 = 28;
const STRIDE_IDX_MASK: u32 = (1 << STRIDE_DELTA_SHIFT) - 1;

/// Promotion is skipped entirely once the arena is too large for packed
/// slot indices (boundary splits can still grow it past this during the
/// same compaction, hence the margin below [`STRIDE_IDX_MASK`]).
const STRIDE_MAX_NODES: usize = 1 << 26;

/// One arena node: the descent-critical data only (32 bytes — two nodes
/// per cache line). Values live in the parallel `values` vec and are
/// only touched at the end of a lookup.
#[derive(Clone, Copy)]
struct Node {
    /// Label bits between the parent and this node, left-aligned.
    bits: u128,
    /// Children indexed by their label's first bit ([`NONE`] = absent).
    children: [u32; 2],
    /// Base slot of this node's stride fanout table in the
    /// `stride_tables` slab ([`NONE`] = no table).
    table: u32,
    /// Label length in bits.
    label_len: u8,
    /// Stride fanout width in bits (0 = plain Patricia node, else 4/8).
    stride: u8,
    /// Whether `values[this index]` holds an entry (kept in the node so
    /// the descent never touches the values slab).
    has_value: bool,
}

/// Hints the CPU to pull both children of `node` into cache. The
/// descent is a chain of dependent loads — each hop's line must arrive
/// before the next hop's address is known — so fetching both possible
/// next lines one hop early overlaps successive misses. [`NONE`]
/// children are skipped; a live index may still be a free-listed slot
/// (stale line, harmless): `wrapping_add` keeps the address arithmetic
/// defined without a bounds check, and PREFETCH never faults.
#[inline(always)]
fn prefetch_children(nodes: &[Node], node: &Node) {
    #[cfg(target_arch = "x86_64")]
    {
        let base = nodes.as_ptr();
        for bit in 0..2 {
            let c = node.children[bit];
            if c != NONE {
                // SAFETY: prefetch is a hint; it dereferences nothing.
                unsafe {
                    core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                        base.wrapping_add(c as usize).cast::<i8>(),
                    );
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (nodes, node);
    }
}

/// One step of the descent state machine, shared by every lookup path:
/// from `idx` at `depth` with `rem` holding the unconsumed key bits
/// left-aligned, try to advance along `key`. Returns the child index,
/// or [`NONE`] when the descent ends here (no child / label mismatch /
/// label overruns the key).
#[inline(always)]
fn descend_step(
    nodes: &[Node],
    idx: u32,
    key_len: usize,
    depth: usize,
    rem: u128,
) -> (u32, usize, u128) {
    let bit = (rem >> (crate::bits::MAX_BITS - 1)) as usize;
    let child = nodes[idx as usize].children[bit];
    if child == NONE {
        return (NONE, depth, rem);
    }
    let node = &nodes[child as usize];
    let ll = node.label_len as usize;
    // Non-root labels are 1..=128 bits, so `128 - ll` is a valid shift;
    // the XOR-shift compares exactly the label's bits against the key's
    // next `ll` bits (both words are left-aligned).
    if depth + ll > key_len || (node.bits ^ rem) >> (crate::bits::MAX_BITS - ll) != 0 {
        return (NONE, depth, rem);
    }
    prefetch_children(nodes, node);
    let rem = if ll >= crate::bits::MAX_BITS {
        0
    } else {
        rem << ll
    };
    (child, depth + ll, rem)
}

/// Reads the stride fanout slot for the next `stride` key bits at `idx`:
/// `Some((stride, next, best_packed))` when `idx` carries a table and the
/// key has at least `stride` bits left, else `None` (take a binary step).
/// `next` is the node whose label ends exactly `stride` bits below `idx`
/// on that path ([`NONE`] = the path dies inside the span); `best_packed`
/// is the deepest valued node strictly inside the span (depth delta in
/// the top nibble, arena index below — see [`STRIDE_DELTA_SHIFT`]).
#[inline(always)]
fn stride_slot(
    nodes: &[Node],
    tables: &[u32],
    idx: u32,
    key_len: usize,
    depth: usize,
    rem: u128,
) -> Option<(usize, u32, u32)> {
    let node = &nodes[idx as usize];
    let s = node.stride as usize;
    if s == 0 || key_len - depth < s {
        return None;
    }
    let j = (rem >> (crate::bits::MAX_BITS - s)) as usize;
    let base = node.table as usize + 2 * j;
    Some((s, tables[base], tables[base + 1]))
}

/// Unpacks a non-[`NONE`] `best` slot into `(depth delta, arena index)`.
#[inline(always)]
fn unpack_best(bp: u32) -> (usize, u32) {
    ((bp >> STRIDE_DELTA_SHIFT) as usize, bp & STRIDE_IDX_MASK)
}

/// Fills the fanout table of a freshly laid strided node `root` by
/// expanding every `s`-bit path below it in the **new** arena (children
/// are already laid, and boundary-crossing labels already split, when
/// this runs): per slot, the landing node whose label ends exactly `s`
/// bits down (`next`) and the deepest valued node strictly inside the
/// span (`best`, packed). Paths that die early leave `next` = [`NONE`]
/// with the `best` accumulated to the point of death, so a jump that
/// hits such a slot resolves the whole span in one load pair.
fn fill_stride_table(nodes: &[Node], tables: &mut [u32], base: usize, s: usize, root: u32) {
    #[allow(clippy::too_many_arguments)]
    fn walk(
        nodes: &[Node],
        tables: &mut [u32],
        base: usize,
        s: usize,
        cur: u32,
        len: usize,
        jpfx: usize,
        best: u32,
    ) {
        if len == s {
            tables[base + 2 * jpfx] = cur;
            tables[base + 2 * jpfx + 1] = best;
            return;
        }
        let node = &nodes[cur as usize];
        // The strided node's own value (len == 0) is the *caller's*
        // running best at jump time, never a span entry.
        let best = if len > 0 && node.has_value {
            ((len as u32) << STRIDE_DELTA_SHIFT) | cur
        } else {
            best
        };
        for bit in 0..2 {
            let c = node.children[bit];
            if c == NONE {
                // Path dies inside the span: `next` stays NONE, the
                // accumulated best covers every slot under this prefix.
                let width = s - len - 1;
                let start = ((jpfx << 1) | bit) << width;
                for j in start..start + (1usize << width) {
                    tables[base + 2 * j + 1] = best;
                }
                continue;
            }
            let cnode = &nodes[c as usize];
            let cl = cnode.label_len as usize;
            debug_assert!(len + cl <= s, "label crosses a stride boundary");
            let cbits = (cnode.bits >> (crate::bits::MAX_BITS - cl)) as usize;
            // Paths diverging *inside* a multi-bit label die at the
            // divergence point: their slots keep `next` = NONE and
            // inherit the best accumulated above the label (the child's
            // own value lies past the divergence and must not leak in).
            for p in 1..cl {
                let matched = cbits >> (cl - p);
                let flipped = 1 ^ ((cbits >> (cl - 1 - p)) & 1);
                let width = s - (len + p + 1);
                let start = (((jpfx << p) | matched) << 1 | flipped) << width;
                for j in start..start + (1usize << width) {
                    tables[base + 2 * j + 1] = best;
                }
            }
            walk(
                nodes,
                tables,
                base,
                s,
                c,
                len + cl,
                (jpfx << cl) | cbits,
                best,
            );
        }
    }
    walk(nodes, tables, base, s, root, 0, 0, NONE);
}

impl Node {
    fn new(label: BitStr, has_value: bool) -> Self {
        Node {
            bits: label.raw(),
            children: [NONE, NONE],
            table: NONE,
            label_len: label.len() as u8,
            stride: 0,
            has_value,
        }
    }

    #[inline]
    fn label(&self) -> BitStr {
        // Labels only ever come from `BitStr` surgery, so the word is
        // canonical (bits past `label_len` are zero) by construction.
        BitStr::from_raw(self.bits, self.label_len as usize)
    }

    fn set_label(&mut self, label: BitStr) {
        self.bits = label.raw();
        self.label_len = label.len() as u8;
    }

    fn child_count(&self) -> usize {
        (self.children[0] != NONE) as usize + (self.children[1] != NONE) as usize
    }
}

/// Arena layout diagnostics — what [`PatriciaTrie::mem_stats`] reports
/// and the `lpm_hot_path` bench prints, so layout regressions (bloated
/// arenas, stranded free-lists, deep tries) show up in bench output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Live nodes (including the root and valueless interior nodes).
    pub live_nodes: usize,
    /// Arena slots currently allocated (live + free).
    pub arena_len: usize,
    /// Bytes reserved by the arenas: node slab + value slab capacities.
    pub capacity_bytes: usize,
    /// Dead slots awaiting reuse.
    pub free_list_len: usize,
    /// Stride fanout tables on live nodes.
    pub stride_tables: usize,
    /// Total stride table slots (sum of `2^stride` over strided nodes).
    pub stride_slots: usize,
    /// Stride slots whose landing pointer is live — the fill measure
    /// that makes table bloat (sparse promotions) visible in benches.
    pub stride_filled: usize,
    /// `depth_histogram[d]` = live nodes at `d` edges from the root.
    pub depth_histogram: Vec<usize>,
}

impl MemStats {
    /// Merges another family's stats into this one (the [`crate::EidTrie`]
    /// aggregate: counts add, histograms add element-wise).
    pub fn merge(&mut self, other: &MemStats) {
        self.live_nodes += other.live_nodes;
        self.arena_len += other.arena_len;
        self.capacity_bytes += other.capacity_bytes;
        self.free_list_len += other.free_list_len;
        self.stride_tables += other.stride_tables;
        self.stride_slots += other.stride_slots;
        self.stride_filled += other.stride_filled;
        if self.depth_histogram.len() < other.depth_histogram.len() {
            self.depth_histogram.resize(other.depth_histogram.len(), 0);
        }
        for (d, n) in other.depth_histogram.iter().enumerate() {
            self.depth_histogram[d] += n;
        }
    }

    /// Maximum node depth (edges from the root).
    pub fn max_depth(&self) -> usize {
        self.depth_histogram.len().saturating_sub(1)
    }
}

impl core::fmt::Display for MemStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} live nodes / {} slots ({} free), {} KiB reserved, max depth {}, {} stride tables ({}/{} slots filled)",
            self.live_nodes,
            self.arena_len,
            self.free_list_len,
            self.capacity_bytes / 1024,
            self.max_depth(),
            self.stride_tables,
            self.stride_filled,
            self.stride_slots,
        )
    }
}

/// A Patricia trie mapping bit-string prefixes to values.
#[derive(Clone)]
pub struct PatriciaTrie<V> {
    /// The node arena. `nodes[0]` is the root (empty label, never freed).
    nodes: Vec<Node>,
    /// Values parallel to `nodes`: `values[i]` belongs to `nodes[i]`.
    values: Vec<Option<V>>,
    /// Stride fanout slab: each table with width `s` is `2^s` slots of
    /// two `u32`s (`[next, best_packed]`), built only by `compact()`.
    /// Mutation drops tables without reclaiming their slots; the next
    /// compaction rebuilds the slab from scratch.
    stride_tables: Vec<u32>,
    /// Dead arena slots available for reuse by `insert`.
    free: Vec<u32>,
    /// Stored entry count.
    len: usize,
}

impl<V: core::fmt::Debug> core::fmt::Debug for PatriciaTrie<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V> Default for PatriciaTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PatriciaTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PatriciaTrie {
            nodes: vec![Node::new(BitStr::empty(), false)],
            values: vec![None],
            stride_tables: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates an arena slot (reusing the free-list when possible).
    fn alloc_node(&mut self, label: BitStr, value: Option<V>) -> u32 {
        let has_value = value.is_some();
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node::new(label, has_value);
            self.values[idx as usize] = value;
            idx
        } else {
            let idx = self.nodes.len();
            assert!(idx < NONE as usize, "arena exceeds u32 index space");
            self.nodes.push(Node::new(label, has_value));
            self.values.push(value);
            idx as u32
        }
    }

    /// Returns a slot to the free-list, dropping its value.
    fn free_node(&mut self, idx: u32) {
        debug_assert_ne!(idx, ROOT, "the root is never freed");
        self.nodes[idx as usize] = Node::new(BitStr::empty(), false);
        self.values[idx as usize] = None;
        self.free.push(idx);
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: &BitStr, value: V) -> Option<V> {
        let mut idx = ROOT;
        // Bits of `key` consumed up to and including `idx`'s label.
        let mut after_label = 0usize;
        loop {
            // A stride table on the path may reference structure or a
            // value this insert changes — drop it (the slot leaks until
            // the next `compact()` rebuilds the slab and re-densifies).
            {
                let n = &mut self.nodes[idx as usize];
                n.stride = 0;
                n.table = NONE;
            }
            if after_label == key.len() {
                // Key ends exactly at this node.
                let node = &mut self.nodes[idx as usize];
                node.has_value = true;
                let old = self.values[idx as usize].replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }

            // Key continues below this node.
            let next_bit = key.bit(after_label) as usize;
            let child = self.nodes[idx as usize].children[next_bit];
            if child == NONE {
                let label = key.slice(after_label, key.len());
                let leaf = self.alloc_node(label, Some(value));
                self.nodes[idx as usize].children[next_bit] = leaf;
                self.len += 1;
                return None;
            }

            let rest = key.slice(after_label, key.len());
            let child_label = self.nodes[child as usize].label();
            let common = child_label.common_prefix_len(&rest);
            if common == child_label.len() {
                // Child label fully matches; descend.
                idx = child;
                after_label += child_label.len();
                continue;
            }

            // Split the child at `common`: a new interior node takes the
            // shared head of the label, the old child keeps the tail.
            let head = child_label.slice(0, common);
            let tail = child_label.slice(common, child_label.len());
            let tail_bit = tail.bit(0) as usize;
            let ends_here = common == rest.len();
            let split = self.alloc_node(head, None);
            self.nodes[child as usize].set_label(tail);
            self.nodes[split as usize].children[tail_bit] = child;
            self.nodes[idx as usize].children[next_bit] = split;
            if ends_here {
                // Key ends exactly at the split point.
                self.nodes[split as usize].has_value = true;
                self.values[split as usize] = Some(value);
            } else {
                let bit = rest.bit(common) as usize;
                debug_assert_ne!(bit, tail_bit);
                let label = rest.slice(common, rest.len());
                let leaf = self.alloc_node(label, Some(value));
                self.nodes[split as usize].children[bit] = leaf;
            }
            self.len += 1;
            return None;
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &BitStr) -> Option<&V> {
        let nodes = self.nodes.as_slice();
        let tables = self.stride_tables.as_slice();
        let mut idx = ROOT;
        let mut depth = 0usize;
        let mut rem = key.raw();
        loop {
            if depth == key.len() {
                return self.values[idx as usize].as_ref();
            }
            if let Some((s, next, _)) = stride_slot(nodes, tables, idx, key.len(), depth, rem) {
                if next == NONE {
                    // No node ends exactly at the boundary on this path,
                    // so no exact match at or past it either.
                    return None;
                }
                idx = next;
                depth += s;
                rem <<= s;
                prefetch_children(nodes, &nodes[idx as usize]);
                continue;
            }
            let (child, d, r) = descend_step(nodes, idx, key.len(), depth, rem);
            if child == NONE {
                return None;
            }
            (idx, depth, rem) = (child, d, r);
        }
    }

    /// Longest-prefix match: the value of the longest stored prefix of
    /// `key`, together with its bit length.
    pub fn longest_match(&self, key: &BitStr) -> Option<(usize, &V)> {
        let (depth, idx) = self.longest_match_idx(key)?;
        Some((
            depth,
            self.values[idx as usize]
                .as_ref()
                .expect("has_value node holds a value"),
        ))
    }

    /// The shared best-candidate descent: `(matched bit length, arena
    /// index)` of the deepest valued node on `key`'s path, or `None`.
    /// Both `longest_match` flavors materialize their reference from
    /// the returned index — which is also why the mutable flavor needs
    /// no `unsafe`.
    #[inline]
    fn longest_match_idx(&self, key: &BitStr) -> Option<(usize, u32)> {
        let nodes = self.nodes.as_slice();
        let tables = self.stride_tables.as_slice();
        let mut idx = ROOT;
        let mut depth = 0usize;
        let mut rem = key.raw();
        let mut best = if nodes[ROOT as usize].has_value {
            (0usize, ROOT)
        } else {
            (0, NONE)
        };
        while depth < key.len() {
            if let Some((s, next, bp)) = stride_slot(nodes, tables, idx, key.len(), depth, rem) {
                if bp != NONE {
                    let (delta, bidx) = unpack_best(bp);
                    best = (depth + delta, bidx);
                }
                if next == NONE {
                    break;
                }
                idx = next;
                depth += s;
                rem <<= s;
                prefetch_children(nodes, &nodes[idx as usize]);
                if nodes[idx as usize].has_value {
                    best = (depth, idx);
                }
                continue;
            }
            let (child, d, r) = descend_step(nodes, idx, key.len(), depth, rem);
            if child == NONE {
                break;
            }
            (idx, depth, rem) = (child, d, r);
            if nodes[idx as usize].has_value {
                best = (depth, idx);
            }
        }
        (best.1 != NONE).then_some(best)
    }

    /// Longest-prefix match returning a mutable value reference, so
    /// callers can update entry metadata (e.g. an LRU stamp) in place
    /// instead of a remove + insert round trip.
    ///
    /// Zero-allocation and single-pass. Entirely safe code: the descent
    /// tracks the best candidate as an arena *index*, and the one `&mut
    /// V` materializes from it only after the walk ends — the shape the
    /// borrow checker rejected in the pointer-chasing layout.
    pub fn longest_match_mut(&mut self, key: &BitStr) -> Option<(usize, &mut V)> {
        let (depth, idx) = self.longest_match_idx(key)?;
        Some((
            depth,
            self.values[idx as usize]
                .as_mut()
                .expect("has_value node holds a value"),
        ))
    }

    /// Shared-read longest-prefix match that **skips entries failing
    /// `keep`**: the deepest valued node on `key`'s path whose value
    /// satisfies the predicate. `longest_match` is the unfiltered
    /// special case.
    ///
    /// This is the `&self` descent the multi-core forwarding path rides:
    /// a reader thread holding only `&PatriciaTrie` can resolve a key
    /// while treating logically dead entries (e.g. TTL-expired map-cache
    /// mappings, which only the table *owner* may structurally remove)
    /// as absent — so a dead host route never shadows a live covering
    /// subnet. The predicate runs once per valued node on the path
    /// (host-route tries: exactly one, at the final candidate), so the
    /// filtered descent streams the same memory as the plain one plus at
    /// most a handful of value-slab reads.
    ///
    /// Kept as a separate body from [`PatriciaTrie::longest_match_idx`]
    /// on purpose: that descent backs the single-threaded benchmarks'
    /// asserted ratios and must not grow a predicate indirection.
    pub fn longest_match_where<F>(&self, key: &BitStr, mut keep: F) -> Option<(usize, &V)>
    where
        F: FnMut(&V) -> bool,
    {
        let nodes = self.nodes.as_slice();
        let tables = self.stride_tables.as_slice();
        let mut idx = ROOT;
        let mut depth = 0usize;
        let mut rem = key.raw();
        let mut best = NONE;
        let mut best_depth = 0usize;
        if nodes[ROOT as usize].has_value
            && keep(
                self.values[ROOT as usize]
                    .as_ref()
                    .expect("root holds a value"),
            )
        {
            best = ROOT;
        }
        while depth < key.len() {
            if let Some((s, next, bp)) = stride_slot(nodes, tables, idx, key.len(), depth, rem) {
                let mut jump = true;
                if bp != NONE {
                    let (delta, bidx) = unpack_best(bp);
                    if keep(
                        self.values[bidx as usize]
                            .as_ref()
                            .expect("span best holds a value"),
                    ) {
                        best = bidx;
                        best_depth = depth + delta;
                    } else {
                        // The span's deepest value is filtered out, but a
                        // shallower one inside the span might not be: walk
                        // this span node-by-node instead of jumping it.
                        jump = false;
                    }
                }
                if jump {
                    if next == NONE {
                        break;
                    }
                    idx = next;
                    depth += s;
                    rem <<= s;
                    prefetch_children(nodes, &nodes[idx as usize]);
                    if nodes[idx as usize].has_value
                        && keep(
                            self.values[idx as usize]
                                .as_ref()
                                .expect("has_value node holds a value"),
                        )
                    {
                        best = idx;
                        best_depth = depth;
                    }
                    continue;
                }
            }
            let (child, d, r) = descend_step(nodes, idx, key.len(), depth, rem);
            if child == NONE {
                break;
            }
            (idx, depth, rem) = (child, d, r);
            if nodes[idx as usize].has_value
                && keep(
                    self.values[idx as usize]
                        .as_ref()
                        .expect("has_value node holds a value"),
                )
            {
                best = idx;
                best_depth = depth;
            }
        }
        (best != NONE).then(|| {
            (
                best_depth,
                self.values[best as usize]
                    .as_ref()
                    .expect("kept node holds a value"),
            )
        })
    }

    /// Batched shared-read longest-prefix match: the `&self` counterpart
    /// of [`PatriciaTrie::longest_match_mut_each`], same interleaved
    /// lockstep walk ([`DEFAULT_LANES`] lanes, one trie step per round —
    /// a stride hop where a table exists — node loads overlapping as
    /// memory-level parallelism), yielding `&V` so any number of reader
    /// threads can run it concurrently.
    pub fn longest_match_each<F>(&self, keys: &[BitStr], f: F)
    where
        F: FnMut(usize, Option<(usize, &V)>),
    {
        self.longest_match_each_where(keys, |_| true, f)
    }

    /// [`PatriciaTrie::longest_match_each`] with the
    /// [`PatriciaTrie::longest_match_where`] predicate: lanes only
    /// record valued nodes whose value satisfies `keep`.
    pub fn longest_match_each_where<P, F>(&self, keys: &[BitStr], keep: P, f: F)
    where
        P: FnMut(&V) -> bool,
        F: FnMut(usize, Option<(usize, &V)>),
    {
        self.longest_match_each_where_lanes::<DEFAULT_LANES, P, F>(keys, keep, f)
    }

    /// [`PatriciaTrie::longest_match_each_where`] with an explicit lane
    /// count — the tunable the `lpm_hot_path` lane sweep measures. `L`
    /// bounds how many descents are in flight per round; past the
    /// memory-level-parallelism window extra lanes only add register
    /// pressure, so [`DEFAULT_LANES`] is the measured sweet spot, not a
    /// hard ceiling.
    pub fn longest_match_each_where_lanes<const L: usize, P, F>(
        &self,
        keys: &[BitStr],
        mut keep: P,
        mut f: F,
    ) where
        P: FnMut(&V) -> bool,
        F: FnMut(usize, Option<(usize, &V)>),
    {
        /// One in-flight shared lookup of the lockstep walk (the `&mut`
        /// walk's `Lane`, minus nothing — the state is identical; only
        /// the materialized reference differs).
        #[derive(Clone, Copy)]
        struct Lane {
            node: u32,
            best: u32,
            rem: u128,
            depth: u16,
            best_depth: u16,
            done: bool,
        }

        let nodes = self.nodes.as_slice();
        let tables = self.stride_tables.as_slice();
        let root_best = if nodes[ROOT as usize].has_value
            && keep(
                self.values[ROOT as usize]
                    .as_ref()
                    .expect("root holds a value"),
            ) {
            ROOT
        } else {
            NONE
        };
        for (ci, chunk) in keys.chunks(L).enumerate() {
            let mut lanes = [Lane {
                node: ROOT,
                best: root_best,
                rem: 0,
                depth: 0,
                best_depth: 0,
                done: false,
            }; L];
            for (lane, key) in lanes.iter_mut().zip(chunk) {
                lane.rem = key.raw();
            }
            loop {
                let mut active = false;
                for (i, lane) in lanes.iter_mut().enumerate().take(chunk.len()) {
                    if lane.done {
                        continue;
                    }
                    let key = &chunk[i];
                    let depth = lane.depth as usize;
                    if depth == key.len() {
                        lane.done = true;
                        continue;
                    }
                    if let Some((s, next, bp)) =
                        stride_slot(nodes, tables, lane.node, key.len(), depth, lane.rem)
                    {
                        let mut jump = true;
                        if bp != NONE {
                            let (delta, bidx) = unpack_best(bp);
                            if keep(
                                self.values[bidx as usize]
                                    .as_ref()
                                    .expect("span best holds a value"),
                            ) {
                                lane.best = bidx;
                                lane.best_depth = (depth + delta) as u16;
                            } else {
                                // Filtered span best: walk node-by-node
                                // (same fallback as the single descent).
                                jump = false;
                            }
                        }
                        if jump {
                            if next == NONE {
                                lane.done = true;
                                continue;
                            }
                            lane.node = next;
                            lane.depth = (depth + s) as u16;
                            lane.rem <<= s;
                            prefetch_children(nodes, &nodes[next as usize]);
                            if nodes[next as usize].has_value
                                && keep(
                                    self.values[next as usize]
                                        .as_ref()
                                        .expect("has_value node holds a value"),
                                )
                            {
                                lane.best_depth = lane.depth;
                                lane.best = next;
                            }
                            active = true;
                            continue;
                        }
                    }
                    let (child, d, r) = descend_step(nodes, lane.node, key.len(), depth, lane.rem);
                    if child == NONE {
                        lane.done = true;
                        continue;
                    }
                    lane.node = child;
                    lane.depth = d as u16;
                    lane.rem = r;
                    if nodes[child as usize].has_value
                        && keep(
                            self.values[child as usize]
                                .as_ref()
                                .expect("has_value node holds a value"),
                        )
                    {
                        lane.best_depth = lane.depth;
                        lane.best = child;
                    }
                    active = true;
                }
                if !active {
                    break;
                }
            }
            for (i, lane) in lanes.iter().enumerate().take(chunk.len()) {
                let res = if lane.best == NONE {
                    None
                } else {
                    Some((
                        lane.best_depth as usize,
                        self.values[lane.best as usize]
                            .as_ref()
                            .expect("kept node holds a value"),
                    ))
                };
                f(ci * L + i, res);
            }
        }
    }

    /// Batched [`PatriciaTrie::longest_match_mut`]: calls
    /// `f(i, match)` for every key, where a match is `(prefix bit
    /// length, &mut value)`.
    ///
    /// The point is not the loop — it is the **interleaved descent**:
    /// keys advance in lockstep, one trie step per round, so the node
    /// loads of the whole batch are independent and overlap in the
    /// memory pipeline. A sequential descent serializes ~log(n)
    /// dependent cache misses per key; the lockstep walk exposes them
    /// as memory-level parallelism, which is where the batched data
    /// plane's speedup over per-packet processing comes from (the
    /// `dataplane_fwd` bench measures it). With the arena layout the
    /// lanes advance by `u32` index loads from one contiguous slab —
    /// no `unsafe`, no pointer provenance gymnastics.
    pub fn longest_match_mut_each<F>(&mut self, keys: &[BitStr], f: F)
    where
        F: FnMut(usize, Option<(usize, &mut V)>),
    {
        self.longest_match_mut_each_lanes::<DEFAULT_LANES, F>(keys, f)
    }

    /// [`PatriciaTrie::longest_match_mut_each`] with an explicit lane
    /// count (see [`PatriciaTrie::longest_match_each_where_lanes`]).
    pub fn longest_match_mut_each_lanes<const L: usize, F>(&mut self, keys: &[BitStr], mut f: F)
    where
        F: FnMut(usize, Option<(usize, &mut V)>),
    {
        /// One in-flight lookup of the lockstep walk. `best` is the
        /// arena index of the deepest match so far ([`NONE`] = none).
        #[derive(Clone, Copy)]
        struct Lane {
            node: u32,
            best: u32,
            rem: u128,
            depth: u16,
            best_depth: u16,
            done: bool,
        }

        let root_best = if self.nodes[ROOT as usize].has_value {
            ROOT
        } else {
            NONE
        };
        for (ci, chunk) in keys.chunks(L).enumerate() {
            let mut lanes = [Lane {
                node: ROOT,
                best: root_best,
                rem: 0,
                depth: 0,
                best_depth: 0,
                done: false,
            }; L];
            for (lane, key) in lanes.iter_mut().zip(chunk) {
                lane.rem = key.raw();
            }
            let nodes = self.nodes.as_slice();
            let tables = self.stride_tables.as_slice();
            loop {
                let mut active = false;
                for (i, lane) in lanes.iter_mut().enumerate().take(chunk.len()) {
                    if lane.done {
                        continue;
                    }
                    let key = &chunk[i];
                    let depth = lane.depth as usize;
                    if depth == key.len() {
                        lane.done = true;
                        continue;
                    }
                    if let Some((s, next, bp)) =
                        stride_slot(nodes, tables, lane.node, key.len(), depth, lane.rem)
                    {
                        if bp != NONE {
                            let (delta, bidx) = unpack_best(bp);
                            lane.best = bidx;
                            lane.best_depth = (depth + delta) as u16;
                        }
                        if next == NONE {
                            lane.done = true;
                            continue;
                        }
                        lane.node = next;
                        lane.depth = (depth + s) as u16;
                        lane.rem <<= s;
                        prefetch_children(nodes, &nodes[next as usize]);
                        if nodes[next as usize].has_value {
                            lane.best_depth = lane.depth;
                            lane.best = next;
                        }
                        active = true;
                        continue;
                    }
                    let (child, d, r) = descend_step(nodes, lane.node, key.len(), depth, lane.rem);
                    if child == NONE {
                        lane.done = true;
                        continue;
                    }
                    lane.node = child;
                    lane.depth = d as u16;
                    lane.rem = r;
                    if nodes[child as usize].has_value {
                        lane.best_depth = lane.depth;
                        lane.best = child;
                    }
                    active = true;
                }
                if !active {
                    break;
                }
            }
            // Results, one mutable borrow at a time (duplicate keys in
            // one batch simply yield the same slot twice, sequentially).
            for (i, lane) in lanes.iter().enumerate().take(chunk.len()) {
                let res = if lane.best == NONE {
                    None
                } else {
                    Some((
                        lane.best_depth as usize,
                        self.values[lane.best as usize]
                            .as_mut()
                            .expect("has_value node holds a value"),
                    ))
                };
                f(ci * L + i, res);
            }
        }
    }

    /// Keeps only entries for which `f` returns true, re-compressing the
    /// structure in a single traversal. Returns how many entries were
    /// removed.
    ///
    /// This replaces the collect-victims-then-remove-each pattern: one
    /// pass over the trie instead of one full descent per victim.
    pub fn retain<F: FnMut(&BitStr, &mut V) -> bool>(&mut self, mut f: F) -> usize {
        let free_before = self.free.len();
        let mut removed = 0usize;
        self.retain_at(ROOT, BitStr::empty(), &mut f, &mut removed);
        self.len -= removed;
        if removed > 0 || self.free.len() > free_before {
            // Structure (and span bests) may have changed anywhere: drop
            // every stride table and the slab wholesale — the next
            // compact() rebuilds them from the surviving occupancy. The
            // free-list check matters even at zero removals: `fix_child`
            // merges away valueless boundary-split nodes that stride
            // tables point at as landing nodes. A true no-op retain
            // (nothing freed, values only mutated) keeps its tables:
            // value edits never move nodes.
            for n in &mut self.nodes {
                n.stride = 0;
                n.table = NONE;
            }
            self.stride_tables.clear();
        }
        self.maybe_compact();
        removed
    }

    fn retain_at<F: FnMut(&BitStr, &mut V) -> bool>(
        &mut self,
        idx: u32,
        prefix: BitStr,
        f: &mut F,
        removed: &mut usize,
    ) {
        let here = prefix.concat(&self.nodes[idx as usize].label());
        if let Some(v) = self.values[idx as usize].as_mut() {
            if !f(&here, v) {
                self.values[idx as usize] = None;
                self.nodes[idx as usize].has_value = false;
                *removed += 1;
            }
        }
        for bit in 0..2 {
            let child = self.nodes[idx as usize].children[bit];
            if child != NONE {
                self.retain_at(child, here, f, removed);
                // Re-establish compression exactly as `remove` does: a
                // valueless child with zero children disappears, with one
                // child merges into its grandchild.
                self.fix_child(idx, bit);
            }
        }
    }

    /// Removes the value at `key`, returning it. Re-compresses the path.
    ///
    /// Never compacts: `remove` runs inline on the forwarding path
    /// (TTL-expired map-cache entries are purged by the lookup that
    /// finds them), so it stays O(key bits) and allocation-free. Freed
    /// slots go to the free-list for `insert` to reuse; arena re-layout
    /// happens in `retain` (the maintenance-path bulk operation) or an
    /// explicit `compact()`.
    pub fn remove(&mut self, key: &BitStr) -> Option<V> {
        let removed = self.remove_at(ROOT, key, 0);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, idx: u32, key: &BitStr, depth: usize) -> Option<V> {
        if depth == key.len() {
            self.nodes[idx as usize].has_value = false;
            return self.values[idx as usize].take();
        }
        let bit = key.bit(depth) as usize;
        let child = self.nodes[idx as usize].children[bit];
        if child == NONE {
            return None;
        }
        let label = self.nodes[child as usize].label();
        if !label.is_prefix_of(&key.slice(depth, key.len())) {
            return None;
        }
        let removed = self.remove_at(child, key, depth + label.len())?;
        // Re-establish compression on the way out, dropping this
        // ancestor's stride table first: its span may reference the
        // removed value or a node the merge below frees. The target's
        // own table (deepest frame) stays — it only describes structure
        // *below* the target, which a value removal leaves intact.
        {
            let n = &mut self.nodes[idx as usize];
            n.stride = 0;
            n.table = NONE;
        }
        self.fix_child(idx, bit);
        Some(removed)
    }

    /// Restores the path-compression invariant for `parent`'s `bit`
    /// child: a valueless child with zero children is freed, with one
    /// child merges into its grandchild (which absorbs its label).
    fn fix_child(&mut self, parent: u32, bit: usize) {
        let child = self.nodes[parent as usize].children[bit];
        let node = self.nodes[child as usize];
        if node.has_value {
            return;
        }
        match node.child_count() {
            0 => {
                self.nodes[parent as usize].children[bit] = NONE;
                self.free_node(child);
            }
            1 => {
                let gc = if node.children[0] != NONE {
                    node.children[0]
                } else {
                    node.children[1]
                };
                let merged = node.label().concat(&self.nodes[gc as usize].label());
                self.nodes[gc as usize].set_label(merged);
                self.nodes[parent as usize].children[bit] = gc;
                self.free_node(child);
            }
            _ => {}
        }
    }

    /// Re-lays the arena in DFS preorder so a descent walks
    /// nearly-sequential memory, and empties the free-list.
    ///
    /// A node's 0-subtree immediately follows it in the new arena; the
    /// deepest levels — where subtrees span a handful of nodes — end up
    /// sharing cache lines, which is where the pointer-chasing layout
    /// paid one full miss per hop. Call after bulk loads (the map-cache,
    /// RIB and VRF population paths do); churn-heavy workloads get the
    /// same treatment automatically via the free-list threshold in
    /// `remove`/`retain`.
    pub fn compact(&mut self) {
        let live = self.nodes.len() - self.free.len();
        let mut nodes = Vec::with_capacity(live);
        let mut values = Vec::with_capacity(live);
        let mut tables = Vec::new();
        let allow_stride = live < STRIDE_MAX_NODES;
        self.compact_at(ROOT, 0, allow_stride, &mut nodes, &mut values, &mut tables);
        debug_assert!(nodes.len() >= live, "compaction dropped nodes");
        // Boundary splits push past the `live` reservation, and Vec
        // growth doubles — at 1M routes that doubling alone would blow
        // the scale-tier memory budget. Compact is the bulk-load hook,
        // so one trailing realloc to exact size is the right trade.
        nodes.shrink_to_fit();
        values.shrink_to_fit();
        tables.shrink_to_fit();
        self.nodes = nodes;
        self.values = values;
        self.stride_tables = tables;
        self.free.clear();
    }

    /// Moves the subtree at `idx` into `nodes`/`values` in preorder,
    /// returning its new index, and grows the stride layer as it goes:
    /// a node sitting on a span boundary (`span_rem == 0` — landing
    /// nodes of an enclosing table, or any node outside one) whose old
    /// subtree is dense enough gets a fanout table, and labels that
    /// would cross an active boundary are split there so every covered
    /// path has a landing node. Layout order is unchanged — node, its
    /// 0-subtree, its 1-subtree, split nodes in path position — so the
    /// preorder locality the module docs promise survives.
    fn compact_at(
        &mut self,
        idx: u32,
        span_rem: usize,
        allow_stride: bool,
        nodes: &mut Vec<Node>,
        values: &mut Vec<Option<V>>,
        tables: &mut Vec<u32>,
    ) -> u32 {
        let node = self.nodes[idx as usize];
        let new_idx = nodes.len() as u32;
        nodes.push(Node {
            children: [NONE, NONE],
            table: NONE,
            stride: 0,
            ..node
        });
        values.push(self.values[idx as usize].take());

        // Promotion: only at span boundaries, from old-arena occupancy.
        let mut stride = 0usize;
        if span_rem == 0 && allow_stride {
            let (e4, e8) = self.count_span_ends(idx);
            if e8 >= STRIDE8_MIN_ENDS {
                stride = 8;
            } else if e4 >= STRIDE4_MIN_ENDS {
                stride = 4;
            }
        }
        if stride != 0 {
            let base = tables.len();
            tables.resize(base + (2usize << stride), NONE);
            nodes[new_idx as usize].table = base as u32;
            nodes[new_idx as usize].stride = stride as u8;
        }
        let child_avail = if stride != 0 { stride } else { span_rem };

        for bit in 0..2 {
            let child = node.children[bit];
            if child == NONE {
                continue;
            }
            let cl = self.nodes[child as usize].label_len as usize;
            let c_new = if child_avail > 0 && cl > child_avail {
                // The label crosses the enclosing stride boundary: split
                // it there — in the old arena, so the (valueless) split
                // node is laid and considered for promotion like any
                // other boundary node — and recurse on the split.
                let clabel = self.nodes[child as usize].label();
                let head = clabel.slice(0, child_avail);
                let tail = clabel.slice(child_avail, cl);
                self.nodes[child as usize].set_label(tail);
                let mut split = Node::new(head, false);
                split.children[tail.bit(0) as usize] = child;
                self.nodes.push(split);
                self.values.push(None);
                let split_idx = (self.nodes.len() - 1) as u32;
                self.compact_at(split_idx, 0, allow_stride, nodes, values, tables)
            } else {
                let crem = child_avail.saturating_sub(cl);
                self.compact_at(child, crem, allow_stride, nodes, values, tables)
            };
            nodes[new_idx as usize].children[bit] = c_new;
        }

        if stride != 0 {
            let base = nodes[new_idx as usize].table as usize;
            fill_stride_table(nodes, tables, base, stride, new_idx);
        }
        new_idx
    }

    /// Occupancy probe for stride promotion: counts label-ends within
    /// the first 4 and 8 bits below `idx` in the (old) arena. A label
    /// crossing a limit contributes nothing to it — it is a single
    /// sparse path, and the split a table would force on it is only
    /// worth paying under a dense fanout.
    fn count_span_ends(&self, idx: u32) -> (usize, usize) {
        fn go(nodes: &[Node], idx: u32, depth: usize, e4: &mut usize, e8: &mut usize) {
            for bit in 0..2 {
                let c = nodes[idx as usize].children[bit];
                if c == NONE {
                    continue;
                }
                let end = depth + nodes[c as usize].label_len as usize;
                if end > 8 {
                    continue;
                }
                *e8 += 1;
                if end <= 4 {
                    *e4 += 1;
                }
                if end < 8 {
                    go(nodes, c, end, e4, e8);
                }
            }
        }
        let (mut e4, mut e8) = (0, 0);
        go(&self.nodes, idx, 0, &mut e4, &mut e8);
        (e4, e8)
    }

    /// Opportunistic re-layout once the free-list dominates the arena:
    /// at least [`COMPACT_FREE_MIN`] dead slots *and* as many dead as
    /// live. Amortized O(1) per freed slot (a compaction halves the
    /// arena, so the next trigger needs that many frees again). Called
    /// only from `retain` — the maintenance-path bulk eviction — never
    /// from `remove`, which must stay cheap on the forwarding path.
    fn maybe_compact(&mut self) {
        if self.free.len() >= COMPACT_FREE_MIN && self.free.len() * 2 >= self.nodes.len() {
            self.compact();
        }
    }

    /// Arena layout diagnostics: live node count, slot count, reserved
    /// bytes, free-list length and the live-nodes-per-depth histogram.
    pub fn mem_stats(&self) -> MemStats {
        let mut stats = MemStats {
            live_nodes: 0,
            arena_len: self.nodes.len(),
            capacity_bytes: self.nodes.capacity() * core::mem::size_of::<Node>()
                + self.values.capacity() * core::mem::size_of::<Option<V>>()
                + self.stride_tables.capacity() * core::mem::size_of::<u32>()
                + self.free.capacity() * core::mem::size_of::<u32>(),
            free_list_len: self.free.len(),
            stride_tables: 0,
            stride_slots: 0,
            stride_filled: 0,
            depth_histogram: Vec::new(),
        };
        self.depth_census(ROOT, 0, &mut stats);
        stats
    }

    fn depth_census(&self, idx: u32, depth: usize, stats: &mut MemStats) {
        stats.live_nodes += 1;
        if stats.depth_histogram.len() <= depth {
            stats.depth_histogram.resize(depth + 1, 0);
        }
        stats.depth_histogram[depth] += 1;
        let node = &self.nodes[idx as usize];
        if node.stride != 0 {
            stats.stride_tables += 1;
            let slots = 1usize << node.stride;
            stats.stride_slots += slots;
            let base = node.table as usize;
            for j in 0..slots {
                if self.stride_tables[base + 2 * j] != NONE {
                    stats.stride_filled += 1;
                }
            }
        }
        for bit in 0..2 {
            let child = self.nodes[idx as usize].children[bit];
            if child != NONE {
                self.depth_census(child, depth + 1, stats);
            }
        }
    }

    /// Iterates `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (BitStr, &V)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_at(ROOT, BitStr::empty(), &mut out);
        out.into_iter()
    }

    fn collect_at<'a>(&'a self, idx: u32, prefix: BitStr, out: &mut Vec<(BitStr, &'a V)>) {
        let here = prefix.concat(&self.nodes[idx as usize].label());
        if let Some(v) = self.values[idx as usize].as_ref() {
            out.push((here, v));
        }
        for bit in 0..2 {
            let child = self.nodes[idx as usize].children[bit];
            if child != NONE {
                self.collect_at(child, here, out);
            }
        }
    }

    /// Maximum node depth (edges from the root), a diagnostics metric:
    /// bounded by key bit-width regardless of entry count.
    pub fn max_depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: u32) -> usize {
            let mut max = 0;
            for bit in 0..2 {
                let child = nodes[idx as usize].children[bit];
                if child != NONE {
                    max = max.max(1 + depth_of(nodes, child));
                }
            }
            max
        }
        depth_of(&self.nodes, ROOT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bits: &str) -> BitStr {
        let mut s = BitStr::empty();
        for c in bits.chars() {
            s.push(c == '1');
        }
        s
    }

    #[test]
    fn node_is_two_per_cache_line() {
        // The layout claim the module docs make: 32-byte nodes.
        assert_eq!(core::mem::size_of::<Node>(), 32);
    }

    #[test]
    fn insert_get_basic() {
        let mut t = PatriciaTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(&key("1010"), "a"), None);
        assert_eq!(t.insert(&key("1011"), "b"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key("1010")), Some(&"a"));
        assert_eq!(t.get(&key("1011")), Some(&"b"));
        assert_eq!(t.get(&key("101")), None);
        assert_eq!(t.get(&key("10110")), None);
    }

    #[test]
    fn insert_replaces() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("111"), 1);
        assert_eq!(t.insert(&key("111"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key("111")), Some(&2));
    }

    #[test]
    fn empty_key_is_a_valid_entry() {
        let mut t = PatriciaTrie::new();
        t.insert(&BitStr::empty(), "default");
        assert_eq!(t.get(&BitStr::empty()), Some(&"default"));
        // Default route matches everything via LPM.
        assert_eq!(t.longest_match(&key("10101")), Some((0, &"default")));
    }

    #[test]
    fn longest_match_prefers_longest() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("10"), "short");
        t.insert(&key("1010"), "long");
        assert_eq!(t.longest_match(&key("101011")), Some((4, &"long")));
        assert_eq!(t.longest_match(&key("100111")), Some((2, &"short")));
        assert_eq!(t.longest_match(&key("0")), None);
        // Exact length counts too.
        assert_eq!(t.longest_match(&key("1010")), Some((4, &"long")));
    }

    #[test]
    fn longest_match_where_skips_filtered_entries() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("10"), 1u32); // live subnet
        t.insert(&key("1010"), 2u32); // "dead" host route
                                      // Unfiltered: the deepest entry wins.
        assert_eq!(
            t.longest_match_where(&key("101011"), |_| true),
            Some((4, &2))
        );
        // Filtered: the dead host route must not shadow the live subnet.
        assert_eq!(
            t.longest_match_where(&key("101011"), |v| *v != 2),
            Some((2, &1))
        );
        // Everything filtered: no match, even though entries cover.
        assert_eq!(t.longest_match_where(&key("101011"), |_| false), None);
        // Filtered root default route still answers.
        t.insert(&BitStr::empty(), 0u32);
        assert_eq!(
            t.longest_match_where(&key("0111"), |v| *v == 0),
            Some((0, &0))
        );
    }

    #[test]
    fn longest_match_each_agrees_with_single_descent() {
        let mut t = PatriciaTrie::new();
        t.insert(&BitStr::empty(), 0u32);
        t.insert(&key("10"), 1u32);
        t.insert(&key("1010"), 2u32);
        t.insert(&key("1111"), 3u32);
        let keys: Vec<BitStr> = ["101011", "100111", "0", "1111", "110000", "1010"]
            .iter()
            .map(|s| key(s))
            .collect();
        let mut got = Vec::new();
        t.longest_match_each(&keys, |i, res| {
            got.push((i, res.map(|(d, v)| (d, *v))));
        });
        let want: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (i, t.longest_match(k).map(|(d, v)| (d, *v))))
            .collect();
        assert_eq!(got, want);

        // The filtered flavor agrees with the filtered single descent.
        let mut got = Vec::new();
        t.longest_match_each_where(
            &keys,
            |v| *v % 2 == 0,
            |i, res| {
                got.push((i, res.map(|(d, v)| (d, *v))));
            },
        );
        let want: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    i,
                    t.longest_match_where(k, |v| *v % 2 == 0)
                        .map(|(d, v)| (d, *v)),
                )
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn split_preserves_existing_entries() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("110011"), "deep");
        t.insert(&key("1100"), "mid"); // ends exactly at split point
        t.insert(&key("110100"), "fork"); // splits at bit 3
        assert_eq!(t.get(&key("110011")), Some(&"deep"));
        assert_eq!(t.get(&key("1100")), Some(&"mid"));
        assert_eq!(t.get(&key("110100")), Some(&"fork"));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_and_recompress() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("1010"), 1);
        t.insert(&key("1011"), 2);
        t.insert(&key("10"), 3);
        assert_eq!(t.remove(&key("1010")), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&key("1010")), None);
        assert_eq!(t.get(&key("1011")), Some(&2));
        assert_eq!(t.get(&key("10")), Some(&3));
        assert_eq!(t.remove(&key("1010")), None);
        assert_eq!(t.remove(&key("10")), Some(3));
        assert_eq!(t.remove(&key("1011")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn remove_nonexistent_divergent_key() {
        let mut t = PatriciaTrie::new();
        t.insert(&key("1111"), 1);
        assert_eq!(t.remove(&key("1110")), None);
        assert_eq!(t.remove(&key("11")), None);
        assert_eq!(t.remove(&key("11110")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PatriciaTrie::new();
        let keys = ["0", "00", "01", "1", "101", "111111"];
        for (i, k) in keys.iter().enumerate() {
            t.insert(&key(k), i);
        }
        let mut got: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn depth_bounded_by_key_width() {
        // Insert many 32-bit keys; depth can never exceed 32.
        let mut t = PatriciaTrie::new();
        for i in 0u32..2000 {
            let bytes = i.wrapping_mul(2_654_435_761).to_be_bytes();
            t.insert(&BitStr::from_bytes(&bytes, 32), i);
        }
        assert!(t.max_depth() <= 32, "depth {} exceeds 32", t.max_depth());
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn compact_preserves_everything() {
        let mut t = PatriciaTrie::new();
        for i in 0u32..500 {
            let bytes = i.wrapping_mul(2_654_435_761).to_be_bytes();
            t.insert(&BitStr::from_bytes(&bytes, 32), i);
        }
        // Punch holes, then compact.
        for i in 0u32..500 {
            if i % 3 == 0 {
                let bytes = i.wrapping_mul(2_654_435_761).to_be_bytes();
                t.remove(&BitStr::from_bytes(&bytes, 32));
            }
        }
        let before: Vec<(String, u32)> = t.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let len = t.len();
        t.compact();
        assert_eq!(t.len(), len);
        let after: Vec<(String, u32)> = t.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        assert_eq!(before, after, "compaction must not change contents");
        let stats = t.mem_stats();
        assert_eq!(stats.free_list_len, 0, "compaction empties the free-list");
        assert_eq!(stats.arena_len, stats.live_nodes);
        // Compact is idempotent.
        t.compact();
        let again: Vec<(String, u32)> = t.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        assert_eq!(after, again);
        for i in 0u32..500 {
            let bytes = i.wrapping_mul(2_654_435_761).to_be_bytes();
            let k = BitStr::from_bytes(&bytes, 32);
            assert_eq!(t.get(&k).copied(), (i % 3 != 0).then_some(i));
        }
    }

    #[test]
    fn compact_lays_preorder() {
        // After compaction, a pure-0-bit descent touches strictly
        // ascending, adjacent-when-possible indices: child 0 of node i
        // is exactly i + 1 (preorder property).
        let mut t = PatriciaTrie::new();
        for i in 0u32..64 {
            t.insert(&BitStr::from_bytes(&(i << 2).to_be_bytes(), 32), i);
        }
        t.compact();
        let mut idx = ROOT;
        loop {
            let child = t.nodes[idx as usize].children[0];
            if child == NONE {
                break;
            }
            assert_eq!(child, idx + 1, "0-child must immediately follow parent");
            idx = child;
        }
    }

    #[test]
    fn retain_churn_triggers_opportunistic_compaction() {
        let mut t = PatriciaTrie::new();
        for i in 0u32..1000 {
            t.insert(&BitStr::from_bytes(&i.to_be_bytes(), 32), i);
        }
        // Evict 90% through retain (the maintenance path): far past the
        // free-list threshold, so the arena must have re-laid itself.
        let removed = t.retain(|_, v| *v % 10 == 0);
        assert_eq!(removed, 900);
        let stats = t.mem_stats();
        assert!(
            stats.free_list_len * 2 < stats.arena_len.max(COMPACT_FREE_MIN * 2),
            "retain churn must have compacted: {stats}"
        );
        assert_eq!(t.len(), 100);
        for i in (0u32..1000).step_by(10) {
            assert_eq!(t.get(&BitStr::from_bytes(&i.to_be_bytes(), 32)), Some(&i));
        }
    }

    #[test]
    fn remove_never_compacts() {
        // `remove` runs inline on the forwarding path (TTL expiry), so
        // it must only free-list its slots — the re-layout belongs to
        // `retain`/`compact`.
        let mut t = PatriciaTrie::new();
        for i in 0u32..1000 {
            t.insert(&BitStr::from_bytes(&i.to_be_bytes(), 32), i);
        }
        let slots = t.mem_stats().arena_len;
        for i in 0u32..1000 {
            if i % 10 != 0 {
                t.remove(&BitStr::from_bytes(&i.to_be_bytes(), 32));
            }
        }
        let stats = t.mem_stats();
        assert_eq!(stats.arena_len, slots, "remove must not re-lay the arena");
        assert!(stats.free_list_len > 0, "freed slots await reuse");
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn mem_stats_reports_layout() {
        let mut t = PatriciaTrie::new();
        assert_eq!(t.mem_stats().live_nodes, 1, "root only");
        t.insert(&key("0"), 0);
        t.insert(&key("00"), 1);
        t.insert(&key("01"), 2);
        let stats = t.mem_stats();
        // root -> "0" -> {"0","1"} tails.
        assert_eq!(stats.live_nodes, 4);
        assert_eq!(stats.depth_histogram, vec![1, 1, 2]);
        assert_eq!(stats.max_depth(), 2);
        assert!(stats.capacity_bytes > 0);
        let mut merged = stats.clone();
        merged.merge(&t.mem_stats());
        assert_eq!(merged.live_nodes, 8);
        assert_eq!(merged.depth_histogram, vec![2, 2, 4]);
    }

    /// All 256 8-bit keys, each valued with its bit pattern.
    fn dense8() -> PatriciaTrie<u32> {
        let mut t = PatriciaTrie::new();
        for i in 0u32..256 {
            t.insert(&BitStr::from_bytes(&[i as u8], 8), i);
        }
        t
    }

    #[test]
    fn compact_promotes_dense_top_to_stride8() {
        let mut t = dense8();
        assert_eq!(t.mem_stats().stride_tables, 0, "promotion is compact-only");
        t.compact();
        let stats = t.mem_stats();
        // A full 8-bit subtree has 510 label-ends within 8 levels — well
        // past STRIDE8_MIN_ENDS — so exactly the root promotes (landing
        // nodes have nothing below them).
        assert_eq!(stats.stride_tables, 1);
        assert_eq!(stats.stride_slots, 256);
        assert_eq!(stats.stride_filled, 256, "every path has a landing node");
        for i in 0u32..256 {
            let k = BitStr::from_bytes(&[i as u8], 8);
            assert_eq!(t.get(&k), Some(&i), "stride get {i}");
            assert_eq!(t.longest_match(&k), Some((8, &i)), "stride LPM {i}");
        }
        // Longer probes jump the span, then fall off the landing node.
        let long = BitStr::from_bytes(&[0xAB, 0xCD], 16);
        assert_eq!(t.longest_match(&long), Some((8, &0xABu32)));
    }

    #[test]
    fn compact_promotes_moderate_density_to_stride4() {
        let mut t = PatriciaTrie::new();
        // A full 4-bit subtree: 30 ends within 4 levels (>= the 4-bit
        // floor), far short of the 8-bit floor.
        for i in 0u32..16 {
            t.insert(&BitStr::from_bytes(&[(i as u8) << 4], 4), i);
        }
        t.compact();
        let stats = t.mem_stats();
        assert_eq!(stats.stride_tables, 1);
        assert_eq!(stats.stride_slots, 16);
        for i in 0u32..16 {
            let k = BitStr::from_bytes(&[(i as u8) << 4], 4);
            assert_eq!(t.longest_match(&k), Some((4, &i)));
        }
    }

    #[test]
    fn compact_splits_labels_crossing_the_span_boundary() {
        // All 8-bit keys except 0xFF keep the root dense enough to
        // promote; the 12-bit key then hangs off the depth-7 branch with
        // a label crossing the 8-bit boundary, forcing a split.
        let mut t = PatriciaTrie::new();
        for i in 0u32..255 {
            t.insert(&BitStr::from_bytes(&[i as u8], 8), i);
        }
        t.insert(&BitStr::from_bytes(&[0xFF, 0x50], 12), 999);
        let live_before = t.mem_stats().live_nodes;
        t.compact();
        let stats = t.mem_stats();
        assert_eq!(stats.stride_tables, 1);
        assert_eq!(
            stats.live_nodes,
            live_before + 1,
            "exactly one boundary split node"
        );
        assert_eq!(stats.stride_filled, 256, "the split fills slot 0xFF");
        assert_eq!(
            t.longest_match(&BitStr::from_bytes(&[0xFF, 0x50], 12)),
            Some((12, &999))
        );
        // The split node at depth 8 is valueless: an exact 8-bit probe
        // under it must fall back to the best *above* the span.
        assert_eq!(t.get(&BitStr::from_bytes(&[0xFF], 8)), None);
        assert_eq!(t.longest_match(&BitStr::from_bytes(&[0xFF], 8)), None);
        assert_eq!(t.len(), 256, "splits add structure, not entries");
    }

    #[test]
    fn insert_and_remove_invalidate_stride_tables() {
        let mut t = dense8();
        t.compact();
        assert_eq!(t.mem_stats().stride_tables, 1);
        // Insert through the strided root: its table is cleared (the
        // span's shape may have changed) and lookups take binary steps
        // until the next compact re-derives promotion from occupancy.
        t.insert(&BitStr::from_bytes(&[0x12, 0x34], 16), 4660);
        assert_eq!(t.mem_stats().stride_tables, 0);
        assert_eq!(
            t.longest_match(&BitStr::from_bytes(&[0x12, 0x34], 16)),
            Some((16, &4660))
        );
        assert_eq!(t.get(&BitStr::from_bytes(&[0x12], 8)), Some(&0x12));
        t.compact();
        assert!(t.mem_stats().stride_tables >= 1, "re-promoted");
        // Remove through it: same deal.
        assert_eq!(t.remove(&BitStr::from_bytes(&[0x12, 0x34], 16)), Some(4660));
        assert_eq!(t.mem_stats().stride_tables, 0);
        for i in 0u32..256 {
            let k = BitStr::from_bytes(&[i as u8], 8);
            assert_eq!(t.get(&k), Some(&i), "post-remove get {i}");
        }
    }

    #[test]
    fn filtered_lookups_fall_back_across_stride_spans() {
        let mut t = dense8();
        t.insert(&key("1"), 1000);
        t.compact();
        assert_eq!(t.mem_stats().stride_tables, 1);
        let probe = BitStr::from_bytes(&[0xFF], 8);
        // Unfiltered: the landing node wins.
        assert_eq!(t.longest_match(&probe), Some((8, &255)));
        // Rejecting the landing value forces the walk back into the
        // span; the packed best (the depth-1 entry) must surface.
        assert_eq!(
            t.longest_match_where(&probe, |v| *v != 255),
            Some((1, &1000))
        );
        // Rejecting both falls through to no match on the 0x00 path.
        assert_eq!(
            t.longest_match_where(&BitStr::from_bytes(&[0x00], 8), |v| *v != 0),
            None
        );
    }

    #[test]
    fn lockstep_lanes_agree_across_stride_layout() {
        let mut t = dense8();
        t.insert(&key("1"), 1000);
        t.compact();
        // More keys than the widest lane count, mixing in-table hits,
        // deep misses and short keys.
        let keys: Vec<BitStr> = (0u32..150)
            .map(|j| match j % 3 {
                0 => BitStr::from_bytes(&[(j * 7) as u8], 8),
                1 => BitStr::from_bytes(&[(j * 11) as u8, j as u8], 16),
                _ => BitStr::from_bytes(&[(j * 13) as u8], 5),
            })
            .collect();
        let single: Vec<Option<(usize, u32)>> = keys
            .iter()
            .map(|k| {
                t.longest_match_where(k, |v| *v % 2 == 0)
                    .map(|(l, v)| (l, *v))
            })
            .collect();
        for lanes in [8usize, 32, 64] {
            let mut got: Vec<Option<(usize, u32)>> = vec![None; keys.len()];
            match lanes {
                8 => t.longest_match_each_where_lanes::<8, _, _>(
                    &keys,
                    |v| *v % 2 == 0,
                    |i, m| got[i] = m.map(|(l, v)| (l, *v)),
                ),
                32 => t.longest_match_each_where_lanes::<32, _, _>(
                    &keys,
                    |v| *v % 2 == 0,
                    |i, m| got[i] = m.map(|(l, v)| (l, *v)),
                ),
                _ => t.longest_match_each_where_lanes::<64, _, _>(
                    &keys,
                    |v| *v % 2 == 0,
                    |i, m| got[i] = m.map(|(l, v)| (l, *v)),
                ),
            }
            assert_eq!(got, single, "{lanes}-lane walk diverged");
        }
    }
}
