//! # sda-trie
//!
//! A Patricia (path-compressed binary radix) trie, the data structure the
//! paper credits for the routing server's flat lookup latency:
//!
//! > "it makes it easy to implement the routing server with a Patricia
//! > Trie. The delay of this data structure depends on the number of bits
//! > of the keys, not the number of elements" (§4.1, citing Morrison 1968).
//!
//! Two layers:
//!
//! * [`trie::PatriciaTrie`] — the generic bit-keyed trie with exact-match
//!   and longest-prefix-match operations.
//! * [`map::EidTrie`] — an address-family-aware wrapper keyed by
//!   [`sda_types::EidPrefix`], with one inner trie per family so IPv4,
//!   IPv6 and MAC keys never collide.
//!
//! The benchmark `fig7_routing_server` measures these operations directly
//! to reproduce Fig. 7a/7b.

pub mod bits;
pub mod map;
pub mod trie;

pub use bits::BitStr;
pub use map::EidTrie;
pub use trie::PatriciaTrie;
