//! # sda-trie
//!
//! A Patricia (path-compressed binary radix) trie, the data structure the
//! paper credits for the routing server's flat lookup latency:
//!
//! > "it makes it easy to implement the routing server with a Patricia
//! > Trie. The delay of this data structure depends on the number of bits
//! > of the keys, not the number of elements" (§4.1, citing Morrison 1968).
//!
//! Two layers:
//!
//! * [`trie::PatriciaTrie`] — the generic bit-keyed trie with exact-match,
//!   longest-prefix-match (shared and mutable) and `retain` operations.
//! * [`map::EidTrie`] — an address-family-aware wrapper keyed by
//!   [`sda_types::EidPrefix`], with one inner trie per family so IPv4,
//!   IPv6 and MAC keys never collide.
//!
//! Keys are inline `(u128, u8)` bit strings ([`bits::BitStr`]) — every
//! key in the system is at most 128 bits (IPv6), so the lookup path is
//! zero-allocation word arithmetic. Nodes live in a contiguous arena
//! (`u32`-indexed, DFS-compacted after bulk loads, with dense upper
//! levels promoted to multibit stride fanout tables — see the `trie`
//! module docs for the layout rationale and the promotion/demotion
//! rules). See the `bits` module docs for
//! the key representation and `benches/lpm_hot_path.rs` in `sda-bench`
//! for the measured effect (`BENCH_lpm.json` at the repo root).
//!
//! The benchmark `fig7_routing_server` measures these operations directly
//! to reproduce Fig. 7a/7b.

pub mod bits;
pub mod map;
pub mod trie;

pub use bits::BitStr;
pub use map::{compact_each, covering_prefix, merged_mem_stats, EidTrie};
pub use trie::{MemStats, PatriciaTrie, DEFAULT_LANES};
