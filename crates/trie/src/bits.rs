//! Bit-string keys for the Patricia trie.
//!
//! A [`BitStr`] is an immutable sequence of bits backed by bytes, most
//! significant bit first — the natural order for network prefixes, where
//! "the first `len` bits of the address" is exactly the CIDR meaning.

use core::fmt;

/// An owned bit string (MSB-first).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitStr {
    /// Backing bytes; bits beyond `len` are zero (canonical form).
    bytes: Vec<u8>,
    /// Length in bits.
    len: usize,
}

impl BitStr {
    /// The empty bit string (the trie root's label).
    pub fn empty() -> Self {
        BitStr::default()
    }

    /// Builds a bit string from the first `len` bits of `bytes`.
    ///
    /// Trailing bits inside the last byte are zeroed so equal prefixes
    /// have equal representations regardless of the source buffer.
    ///
    /// # Panics
    /// Panics if `len > bytes.len() * 8`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len <= bytes.len() * 8, "bit length exceeds buffer");
        let nbytes = len.div_ceil(8);
        let mut v = bytes[..nbytes].to_vec();
        let spare = nbytes * 8 - len;
        if spare > 0 {
            if let Some(last) = v.last_mut() {
                *last &= 0xffu8 << spare;
            }
        }
        BitStr { bytes: v, len }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the string holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i` (0 = most significant of the first byte).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let byte = self.bytes[i / 8];
        (byte >> (7 - (i % 8))) & 1 == 1
    }

    /// The sub-string `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn slice(&self, start: usize, end: usize) -> BitStr {
        assert!(start <= end && end <= self.len);
        let mut out = BitStr::with_capacity(end - start);
        for i in start..end {
            out.push(self.bit(i));
        }
        out
    }

    fn with_capacity(bits: usize) -> BitStr {
        BitStr { bytes: Vec::with_capacity(bits.div_ceil(8)), len: 0 }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let idx = self.len / 8;
            self.bytes[idx] |= 1 << (7 - (self.len % 8));
        }
        self.len += 1;
    }

    /// Concatenation `self ++ other`.
    pub fn concat(&self, other: &BitStr) -> BitStr {
        let mut out = self.clone();
        for i in 0..other.len {
            out.push(other.bit(i));
        }
        out
    }

    /// Number of leading bits shared with `other`.
    pub fn common_prefix_len(&self, other: &BitStr) -> usize {
        let max = self.len.min(other.len);
        // Byte-at-a-time fast path.
        let full_bytes = max / 8;
        let mut i = 0;
        while i < full_bytes {
            let x = self.bytes[i] ^ other.bytes[i];
            if x != 0 {
                return i * 8 + x.leading_zeros() as usize;
            }
            i += 1;
        }
        let mut bits = full_bytes * 8;
        while bits < max && self.bit(bits) == other.bit(bits) {
            bits += 1;
        }
        bits
    }

    /// True when `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitStr) -> bool {
        self.len <= other.len && self.common_prefix_len(other) == self.len
    }
}

impl fmt::Debug for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStr(")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_canonicalizes_spare_bits() {
        let a = BitStr::from_bytes(&[0b1010_1111], 4);
        let b = BitStr::from_bytes(&[0b1010_0000], 4);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "1010");
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let s = BitStr::from_bytes(&[0b1000_0001, 0b0100_0000], 16);
        assert!(s.bit(0));
        assert!(!s.bit(1));
        assert!(s.bit(7));
        assert!(!s.bit(8));
        assert!(s.bit(9));
    }

    #[test]
    fn push_builds_same_as_from_bytes() {
        let mut s = BitStr::empty();
        for b in [true, false, true, true, false, false, true, false, true] {
            s.push(b);
        }
        assert_eq!(s, BitStr::from_bytes(&[0b1011_0010, 0b1000_0000], 9));
    }

    #[test]
    fn slice_and_concat_are_inverse() {
        let s = BitStr::from_bytes(&[0xDE, 0xAD, 0xBE], 22);
        let left = s.slice(0, 10);
        let right = s.slice(10, 22);
        assert_eq!(left.concat(&right), s);
    }

    #[test]
    fn common_prefix_len_cases() {
        let a = BitStr::from_bytes(&[0b1100_0000], 8);
        let b = BitStr::from_bytes(&[0b1101_0000], 8);
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), 8);
        let empty = BitStr::empty();
        assert_eq!(a.common_prefix_len(&empty), 0);
    }

    #[test]
    fn common_prefix_spans_byte_boundary() {
        let a = BitStr::from_bytes(&[0xFF, 0b1010_0000], 12);
        let b = BitStr::from_bytes(&[0xFF, 0b1011_0000], 12);
        assert_eq!(a.common_prefix_len(&b), 11);
    }

    #[test]
    fn is_prefix_of() {
        let p = BitStr::from_bytes(&[0b1010_0000], 4);
        let full = BitStr::from_bytes(&[0b1010_1111], 8);
        assert!(p.is_prefix_of(&full));
        assert!(!full.is_prefix_of(&p));
        assert!(BitStr::empty().is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        BitStr::from_bytes(&[0xff], 4).bit(4);
    }
}
