//! Bit-string keys for the Patricia trie — inline 128-bit representation.
//!
//! A [`BitStr`] is an immutable sequence of up to 128 bits, MSB-first —
//! the natural order for network prefixes, where "the first `len` bits of
//! the address" is exactly the CIDR meaning.
//!
//! ## Why 128 bits is enough
//!
//! Every key type in the system fits: IPv6 EIDs are exactly 128 bits, MAC
//! EIDs 48, IPv4 EIDs 32, and trie *labels* (the bits between a node and
//! its parent) are sub-slices of keys, so they can never exceed the
//! longest key. That bound lets the whole bit string live inline as a
//! `(u128, u8)` pair: a left-aligned word of bits plus a length.
//!
//! ## Why inline matters
//!
//! The seed implementation backed `BitStr` with a `Vec<u8>`, so every
//! trie step in `longest_match`/`get` materialized a fresh heap-allocated
//! copy via `slice()` — on the single hottest path in the repo (map-cache
//! and map-server lookups, Fig. 7a/7b). With the inline representation:
//!
//! * `BitStr` is `Copy`; slicing is a shift + mask, concatenation a
//!   shift + or, and prefix comparison one `XOR` + `leading_zeros` —
//!   all word ops, **zero heap allocations** anywhere in the type.
//! * A borrowed "view" type is unnecessary: copying the key *is* the
//!   cheap path, so lookups simply walk a local `(u128, u8)` cursor.
//!
//! Bits are stored left-aligned: bit `i` of the string is bit `127 - i`
//! of the word. Bits at positions `>= len` are always zero (canonical
//! form), so derived `Eq`/`Ord`/`Hash` agree with logical equality.

use core::fmt;

/// Maximum key width in bits (IPv6 EIDs; see the module docs).
pub const MAX_BITS: usize = 128;

/// An inline bit string (MSB-first, at most [`MAX_BITS`] bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitStr {
    /// Left-aligned bits; everything past `len` is zero (canonical form).
    bits: u128,
    /// Length in bits, `0..=128`.
    len: u8,
}

/// All-ones mask over the first `n` (left-aligned) bits.
#[inline]
const fn mask(n: usize) -> u128 {
    match n {
        0 => 0,
        MAX_BITS.. => u128::MAX,
        _ => u128::MAX << (MAX_BITS - n),
    }
}

impl BitStr {
    /// The empty bit string (the trie root's label).
    #[inline]
    pub const fn empty() -> Self {
        BitStr { bits: 0, len: 0 }
    }

    /// Builds a bit string directly from a left-aligned word.
    ///
    /// # Panics
    /// Panics if `len > 128` or if bits beyond `len` are set.
    #[inline]
    pub const fn from_raw(bits: u128, len: usize) -> Self {
        assert!(len <= MAX_BITS, "bit length exceeds 128");
        assert!(bits & !mask(len) == 0, "non-canonical bits past len");
        BitStr {
            bits,
            len: len as u8,
        }
    }

    /// Builds a bit string from the first `len` bits of `bytes`.
    ///
    /// Trailing bits inside the last byte are zeroed so equal prefixes
    /// have equal representations regardless of the source buffer.
    ///
    /// # Panics
    /// Panics if `len > bytes.len() * 8` or `len > 128`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len <= bytes.len() * 8, "bit length exceeds buffer");
        assert!(len <= MAX_BITS, "bit length exceeds 128");
        let mut bits = 0u128;
        let nbytes = len.div_ceil(8);
        for (i, &b) in bytes[..nbytes].iter().enumerate() {
            bits |= u128::from(b) << (120 - 8 * i);
        }
        BitStr {
            bits: bits & mask(len),
            len: len as u8,
        }
    }

    /// The raw left-aligned word (bits past `len` are zero).
    #[inline]
    pub const fn raw(&self) -> u128 {
        self.bits
    }

    /// Writes the bits back out as big-endian bytes into `out`.
    ///
    /// Fills `ceil(len / 8)` bytes; the rest of `out` is untouched.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `ceil(len / 8)` bytes.
    pub fn write_bytes(&self, out: &mut [u8]) {
        let nbytes = (self.len as usize).div_ceil(8);
        let be = self.bits.to_be_bytes();
        out[..nbytes].copy_from_slice(&be[..nbytes]);
    }

    /// Length in bits.
    #[inline]
    pub const fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the string holds no bits.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at position `i` (0 = most significant).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len);
        (self.bits >> (MAX_BITS - 1 - i)) & 1 == 1
    }

    /// The sub-string `[start, end)` — a shift and a mask, no allocation.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> BitStr {
        assert!(start <= end && end <= self.len(), "slice out of range");
        let n = end - start;
        // `start == 128` implies `n == 0`; keep the shift in range.
        let shifted = if start == 0 {
            self.bits
        } else if start >= MAX_BITS {
            0
        } else {
            self.bits << start
        };
        BitStr {
            bits: shifted & mask(n),
            len: n as u8,
        }
    }

    /// Appends one bit.
    ///
    /// # Panics
    /// Panics if the string is already 128 bits long.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        assert!(self.len() < MAX_BITS, "bit string full (128 bits)");
        if bit {
            self.bits |= 1 << (MAX_BITS - 1 - self.len());
        }
        self.len += 1;
    }

    /// Concatenation `self ++ other` — a shift and an or, no allocation.
    ///
    /// # Panics
    /// Panics if the combined length exceeds 128 bits.
    #[inline]
    pub fn concat(&self, other: &BitStr) -> BitStr {
        let total = self.len() + other.len();
        assert!(total <= MAX_BITS, "concatenation exceeds 128 bits");
        let tail = if self.is_empty() {
            other.bits
        } else if self.len() >= MAX_BITS {
            0
        } else {
            other.bits >> self.len()
        };
        BitStr {
            bits: self.bits | tail,
            len: total as u8,
        }
    }

    /// Number of leading bits shared with `other`: one `XOR` plus
    /// `leading_zeros`, the word-sized comparison the trie walk relies on.
    #[inline]
    pub fn common_prefix_len(&self, other: &BitStr) -> usize {
        let max = self.len().min(other.len());
        let diff = self.bits ^ other.bits;
        (diff.leading_zeros() as usize).min(max)
    }

    /// True when `self` is a prefix of `other`.
    #[inline]
    pub fn is_prefix_of(&self, other: &BitStr) -> bool {
        self.len <= other.len && (self.bits ^ other.bits) & mask(self.len()) == 0
    }
}

impl fmt::Debug for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStr(")?;
        for i in 0..self.len() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_canonicalizes_spare_bits() {
        let a = BitStr::from_bytes(&[0b1010_1111], 4);
        let b = BitStr::from_bytes(&[0b1010_0000], 4);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "1010");
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let s = BitStr::from_bytes(&[0b1000_0001, 0b0100_0000], 16);
        assert!(s.bit(0));
        assert!(!s.bit(1));
        assert!(s.bit(7));
        assert!(!s.bit(8));
        assert!(s.bit(9));
    }

    #[test]
    fn push_builds_same_as_from_bytes() {
        let mut s = BitStr::empty();
        for b in [true, false, true, true, false, false, true, false, true] {
            s.push(b);
        }
        assert_eq!(s, BitStr::from_bytes(&[0b1011_0010, 0b1000_0000], 9));
    }

    #[test]
    fn slice_and_concat_are_inverse() {
        let s = BitStr::from_bytes(&[0xDE, 0xAD, 0xBE], 22);
        let left = s.slice(0, 10);
        let right = s.slice(10, 22);
        assert_eq!(left.concat(&right), s);
    }

    #[test]
    fn common_prefix_len_cases() {
        let a = BitStr::from_bytes(&[0b1100_0000], 8);
        let b = BitStr::from_bytes(&[0b1101_0000], 8);
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), 8);
        let empty = BitStr::empty();
        assert_eq!(a.common_prefix_len(&empty), 0);
    }

    #[test]
    fn common_prefix_spans_byte_boundary() {
        let a = BitStr::from_bytes(&[0xFF, 0b1010_0000], 12);
        let b = BitStr::from_bytes(&[0xFF, 0b1011_0000], 12);
        assert_eq!(a.common_prefix_len(&b), 11);
    }

    #[test]
    fn is_prefix_of() {
        let p = BitStr::from_bytes(&[0b1010_0000], 4);
        let full = BitStr::from_bytes(&[0b1010_1111], 8);
        assert!(p.is_prefix_of(&full));
        assert!(!full.is_prefix_of(&p));
        assert!(BitStr::empty().is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        BitStr::from_bytes(&[0xff], 4).bit(4);
    }

    #[test]
    fn full_width_128_bit_key() {
        let bytes = [0xABu8; 16];
        let s = BitStr::from_bytes(&bytes, 128);
        assert_eq!(s.len(), 128);
        assert_eq!(s.slice(0, 128), s);
        assert_eq!(s.slice(128, 128), BitStr::empty());
        assert_eq!(s.common_prefix_len(&s), 128);
        assert!(s.is_prefix_of(&s));
        assert_eq!(BitStr::empty().concat(&s), s);
        assert_eq!(s.concat(&BitStr::empty()), s);
        let mut out = [0u8; 16];
        s.write_bytes(&mut out);
        assert_eq!(out, bytes);
    }

    #[test]
    #[should_panic(expected = "exceeds 128 bits")]
    fn concat_past_128_panics() {
        let a = BitStr::from_bytes(&[0xFF; 16], 128);
        let b = BitStr::from_bytes(&[0x80], 1);
        let _ = a.concat(&b);
    }

    #[test]
    fn write_bytes_roundtrip_partial_byte() {
        let s = BitStr::from_bytes(&[0b1011_0110, 0b1100_0000], 10);
        let mut out = [0u8; 2];
        s.write_bytes(&mut out);
        assert_eq!(BitStr::from_bytes(&out, 10), s);
    }

    #[test]
    fn raw_is_canonical() {
        let s = BitStr::from_bytes(&[0xFF, 0xFF], 10);
        assert_eq!(s.raw() & !super::mask(10), 0);
        assert_eq!(BitStr::from_raw(s.raw(), 10), s);
    }
}
