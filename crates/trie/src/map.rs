//! Address-family-aware prefix map over the Patricia trie.
//!
//! The routing server stores IPv4, IPv6 and MAC EIDs. [`EidTrie`] keeps
//! one inner trie per family so a 32-bit IPv4 key can never alias a
//! 48-bit MAC key, and exposes the operations the map-server needs:
//! exact insert/remove by [`EidPrefix`] and longest-prefix lookup by
//! [`Eid`].

use sda_types::{Eid, EidKind, EidPrefix, Ipv4Prefix, Ipv6Prefix, MacPrefix};

use crate::bits::BitStr;
use crate::trie::PatriciaTrie;

fn prefix_key(p: &EidPrefix) -> BitStr {
    // Prefix construction already canonicalized (host bits zeroed), so the
    // raw word is valid as-is — no bytes, no heap.
    BitStr::from_raw(p.key_bits(), p.len() as usize)
}

fn eid_key(e: &Eid) -> BitStr {
    BitStr::from_raw(e.key_bits(), e.kind().bit_len() as usize)
}

fn prefix_from_parts(kind: EidKind, key: &BitStr) -> EidPrefix {
    // Reconstruct canonical bytes from the bit string (stack buffer only).
    let mut bytes = [0u8; 16];
    key.write_bytes(&mut bytes);
    let len = key.len() as u8;
    match kind {
        EidKind::V4 => {
            let arr: [u8; 4] = bytes[..4].try_into().unwrap();
            EidPrefix::V4(Ipv4Prefix::new(arr.into(), len).unwrap())
        }
        EidKind::V6 => EidPrefix::V6(Ipv6Prefix::new(bytes.into(), len).unwrap()),
        EidKind::Mac => {
            let arr: [u8; 6] = bytes[..6].try_into().unwrap();
            EidPrefix::Mac(MacPrefix::new(sda_types::MacAddr(arr), len).unwrap())
        }
    }
}

/// The stored prefix a [`EidTrie::lookup_mut_each`] match of `len` bits
/// on `eid` corresponds to — the lazy counterpart of what
/// [`EidTrie::lookup_mut`] reconstructs eagerly. Stack-only.
pub fn covering_prefix(eid: &Eid, len: usize) -> EidPrefix {
    prefix_from_parts(eid.kind(), &eid_key(eid).slice(0, len))
}

/// Compacts every trie of a keyed collection (the shared body of the
/// per-VN bulk-load hooks: map-cache, mapping DB, VRF table).
pub fn compact_each<'a, V: 'a>(tries: impl IntoIterator<Item = &'a mut EidTrie<V>>) {
    for trie in tries {
        trie.compact();
    }
}

/// Aggregates [`EidTrie::mem_stats`] across a keyed collection (counts
/// add, depth histograms add element-wise).
pub fn merged_mem_stats<'a, V: 'a>(
    tries: impl IntoIterator<Item = &'a EidTrie<V>>,
) -> crate::trie::MemStats {
    let mut stats = crate::trie::MemStats::default();
    for trie in tries {
        stats.merge(&trie.mem_stats());
    }
    stats
}

/// A map from [`EidPrefix`] to `V` with longest-prefix lookup by [`Eid`].
#[derive(Clone)]
pub struct EidTrie<V> {
    v4: PatriciaTrie<V>,
    v6: PatriciaTrie<V>,
    mac: PatriciaTrie<V>,
}

impl<V: core::fmt::Debug> core::fmt::Debug for EidTrie<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V> Default for EidTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> EidTrie<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        EidTrie {
            v4: PatriciaTrie::new(),
            v6: PatriciaTrie::new(),
            mac: PatriciaTrie::new(),
        }
    }

    fn family(&self, kind: EidKind) -> &PatriciaTrie<V> {
        match kind {
            EidKind::V4 => &self.v4,
            EidKind::V6 => &self.v6,
            EidKind::Mac => &self.mac,
        }
    }

    fn family_mut(&mut self, kind: EidKind) -> &mut PatriciaTrie<V> {
        match kind {
            EidKind::V4 => &mut self.v4,
            EidKind::V6 => &mut self.v6,
            EidKind::Mac => &mut self.mac,
        }
    }

    /// Total entries across all families.
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len() + self.mac.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries in one family.
    pub fn len_of(&self, kind: EidKind) -> usize {
        self.family(kind).len()
    }

    /// Inserts `value` at `prefix`, returning any previous value.
    pub fn insert(&mut self, prefix: EidPrefix, value: V) -> Option<V> {
        let key = prefix_key(&prefix);
        self.family_mut(prefix.kind()).insert(&key, value)
    }

    /// Exact-match lookup by prefix.
    pub fn get(&self, prefix: &EidPrefix) -> Option<&V> {
        self.family(prefix.kind()).get(&prefix_key(prefix))
    }

    /// Removes the entry at `prefix`, returning its value.
    pub fn remove(&mut self, prefix: &EidPrefix) -> Option<V> {
        let key = prefix_key(prefix);
        self.family_mut(prefix.kind()).remove(&key)
    }

    /// Longest-prefix match for `eid`: the most specific covering prefix
    /// and its value.
    pub fn lookup(&self, eid: &Eid) -> Option<(EidPrefix, &V)> {
        let key = eid_key(eid);
        let (len, v) = self.family(eid.kind()).longest_match(&key)?;
        let pk = key.slice(0, len);
        Some((prefix_from_parts(eid.kind(), &pk), v))
    }

    /// Longest-prefix match for `eid` with a mutable value reference, so
    /// callers can update entry metadata in place (no remove + insert
    /// round trip, no heap allocation).
    pub fn lookup_mut(&mut self, eid: &Eid) -> Option<(EidPrefix, &mut V)> {
        let key = eid_key(eid);
        let kind = eid.kind();
        let (len, v) = self.family_mut(kind).longest_match_mut(&key)?;
        Some((prefix_from_parts(kind, &key.slice(0, len)), v))
    }

    /// Shared-read longest-prefix match for `eid`, **skipping entries
    /// failing `keep`**: returns `(matched bit length, &V)` of the most
    /// specific covering prefix whose value satisfies the predicate.
    ///
    /// This is the multi-core hot path's descent
    /// ([`PatriciaTrie::longest_match_where`]): `&self`, so any number
    /// of reader threads can resolve concurrently, treating logically
    /// dead entries (the predicate) as absent — structural removal stays
    /// with the owner. No [`EidPrefix`] is reconstructed; callers that
    /// need one build it lazily via [`covering_prefix`].
    pub fn lookup_where<F>(&self, eid: &Eid, keep: F) -> Option<(usize, &V)>
    where
        F: FnMut(&V) -> bool,
    {
        self.family(eid.kind())
            .longest_match_where(&eid_key(eid), keep)
    }

    /// Batched shared-read longest-prefix match: the `&self` counterpart
    /// of [`EidTrie::lookup_mut_each`], same same-family runs and
    /// interleaved lockstep walk, filtered by `keep` as in
    /// [`EidTrie::lookup_where`]. Allocation-free: keys stage through a
    /// stack buffer.
    pub fn lookup_each_where<P, F>(&self, eids: &[Eid], mut keep: P, mut f: F)
    where
        P: FnMut(&V) -> bool,
        F: FnMut(usize, Option<(usize, &V)>),
    {
        const CHUNK: usize = crate::trie::DEFAULT_LANES;
        let mut start = 0;
        while start < eids.len() {
            // One same-family run.
            let kind = eids[start].kind();
            let mut end = start + 1;
            while end < eids.len() && eids[end].kind() == kind {
                end += 1;
            }
            let trie = self.family(kind);
            let mut keys = [BitStr::empty(); CHUNK];
            let mut i = start;
            while i < end {
                let n = (end - i).min(CHUNK);
                for (j, eid) in eids[i..i + n].iter().enumerate() {
                    keys[j] = eid_key(eid);
                }
                trie.longest_match_each_where(&keys[..n], &mut keep, |j, res| f(i + j, res));
                i += n;
            }
            start = end;
        }
    }

    /// Batched longest-prefix match: calls `f(i, result)` once per EID,
    /// in order, where a match is `(prefix bit length, &mut value)`.
    ///
    /// This is the data plane's batch entry point. Three things make it
    /// faster than per-EID [`EidTrie::lookup_mut`] calls:
    ///
    /// 1. Same-family runs resolve the inner trie once, not per packet.
    /// 2. Each run descends via the **interleaved lockstep walk**
    ///    ([`PatriciaTrie::longest_match_mut_each`]), overlapping the
    ///    batch's node loads in the memory pipeline instead of
    ///    serializing ~log(n) cache misses per key.
    /// 3. No [`EidPrefix`] is reconstructed per hit — callers that need
    ///    one (e.g. to remove an expired entry) build it lazily via
    ///    [`covering_prefix`].
    ///
    /// Allocation-free: keys stage through a stack buffer.
    pub fn lookup_mut_each<F>(&mut self, eids: &[Eid], mut f: F)
    where
        F: FnMut(usize, Option<(usize, &mut V)>),
    {
        const CHUNK: usize = crate::trie::DEFAULT_LANES;
        let mut start = 0;
        while start < eids.len() {
            // One same-family run.
            let kind = eids[start].kind();
            let mut end = start + 1;
            while end < eids.len() && eids[end].kind() == kind {
                end += 1;
            }
            let trie = self.family_mut(kind);
            let mut keys = [BitStr::empty(); CHUNK];
            let mut i = start;
            while i < end {
                let n = (end - i).min(CHUNK);
                for (j, eid) in eids[i..i + n].iter().enumerate() {
                    keys[j] = eid_key(eid);
                }
                trie.longest_match_mut_each(&keys[..n], |j, res| f(i + j, res));
                i += n;
            }
            start = end;
        }
    }

    /// Re-lays every family's arena in DFS preorder (see
    /// [`PatriciaTrie::compact`]). Call once a bulk load settles — the
    /// map-cache, RIB and VRF population paths do — so subsequent
    /// descents walk nearly-sequential memory.
    pub fn compact(&mut self) {
        self.v4.compact();
        self.v6.compact();
        self.mac.compact();
    }

    /// Aggregated arena diagnostics across the three families (counts
    /// add, depth histograms add element-wise).
    pub fn mem_stats(&self) -> crate::trie::MemStats {
        let mut stats = self.v4.mem_stats();
        stats.merge(&self.v6.mem_stats());
        stats.merge(&self.mac.mem_stats());
        stats
    }

    /// Keeps only entries for which `f` returns true, across all
    /// families, in one traversal per family. Returns how many entries
    /// were removed.
    pub fn retain<F: FnMut(&EidPrefix, &mut V) -> bool>(&mut self, mut f: F) -> usize {
        let mut removed = 0;
        removed += self
            .v4
            .retain(|k, v| f(&prefix_from_parts(EidKind::V4, k), v));
        removed += self
            .v6
            .retain(|k, v| f(&prefix_from_parts(EidKind::V6, k), v));
        removed += self
            .mac
            .retain(|k, v| f(&prefix_from_parts(EidKind::Mac, k), v));
        removed
    }

    /// Iterates all `(prefix, value)` pairs, IPv4 then IPv6 then MAC.
    pub fn iter(&self) -> impl Iterator<Item = (EidPrefix, &V)> {
        let v4 = self
            .v4
            .iter()
            .map(|(k, v)| (prefix_from_parts(EidKind::V4, &k), v));
        let v6 = self
            .v6
            .iter()
            .map(|(k, v)| (prefix_from_parts(EidKind::V6, &k), v));
        let mac = self
            .mac
            .iter()
            .map(|(k, v)| (prefix_from_parts(EidKind::Mac, &k), v));
        v4.chain(v6).chain(mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_types::MacAddr;
    use std::net::Ipv4Addr;

    #[test]
    fn families_do_not_alias() {
        let mut m = EidTrie::new();
        // Same leading bytes, different families.
        let v4: EidPrefix = Ipv4Prefix::host(Ipv4Addr::new(2, 0, 0, 1)).into();
        let mac: EidPrefix = MacPrefix::host(MacAddr([2, 0, 0, 1, 0, 0])).into();
        m.insert(v4, "v4");
        m.insert(mac, "mac");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&v4), Some(&"v4"));
        assert_eq!(m.get(&mac), Some(&"mac"));
        assert_eq!(m.len_of(EidKind::V4), 1);
        assert_eq!(m.len_of(EidKind::Mac), 1);
        assert_eq!(m.len_of(EidKind::V6), 0);
    }

    #[test]
    fn lookup_prefers_host_route_over_subnet() {
        let mut m = EidTrie::new();
        let subnet: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16)
            .unwrap()
            .into();
        let host: EidPrefix = Ipv4Prefix::host(Ipv4Addr::new(10, 1, 2, 3)).into();
        m.insert(subnet, "subnet");
        m.insert(host, "host");
        let (p, v) = m.lookup(&Eid::V4(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        assert_eq!(*v, "host");
        assert_eq!(p, host);
        let (p, v) = m.lookup(&Eid::V4(Ipv4Addr::new(10, 1, 9, 9))).unwrap();
        assert_eq!(*v, "subnet");
        assert_eq!(p, subnet);
        assert!(m.lookup(&Eid::V4(Ipv4Addr::new(10, 2, 0, 1))).is_none());
    }

    #[test]
    fn remove_then_lookup_falls_back() {
        let mut m = EidTrie::new();
        let subnet: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16)
            .unwrap()
            .into();
        let host: EidPrefix = Ipv4Prefix::host(Ipv4Addr::new(10, 1, 2, 3)).into();
        m.insert(subnet, "subnet");
        m.insert(host, "host");
        assert_eq!(m.remove(&host), Some("host"));
        let (_, v) = m.lookup(&Eid::V4(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        assert_eq!(*v, "subnet");
    }

    #[test]
    fn iter_reconstructs_prefixes() {
        let mut m = EidTrie::new();
        let entries: Vec<EidPrefix> = vec![
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)
                .unwrap()
                .into(),
            Ipv4Prefix::host(Ipv4Addr::new(10, 1, 2, 3)).into(),
            MacPrefix::host(MacAddr::from_seed(1)).into(),
        ];
        for (i, p) in entries.iter().enumerate() {
            m.insert(*p, i);
        }
        let mut got: Vec<EidPrefix> = m.iter().map(|(p, _)| p).collect();
        got.sort();
        let mut want = entries.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn lookup_mut_each_visits_in_order() {
        let mut m = EidTrie::new();
        let subnet: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16)
            .unwrap()
            .into();
        m.insert(subnet, 0u32);
        let eids = [
            Eid::V4(Ipv4Addr::new(10, 1, 2, 3)),
            Eid::V4(Ipv4Addr::new(192, 0, 2, 1)),
            Eid::V4(Ipv4Addr::new(10, 1, 9, 9)),
        ];
        let mut seen = Vec::new();
        m.lookup_mut_each(&eids, |i, res| {
            if let Some((len, v)) = res {
                *v += 1;
                seen.push((i, Some(covering_prefix(&eids[i], len))));
            } else {
                seen.push((i, None));
            }
        });
        assert_eq!(seen, vec![(0, Some(subnet)), (1, None), (2, Some(subnet))]);
        assert_eq!(m.get(&subnet), Some(&2), "mutations land in place");
    }

    #[test]
    fn compact_preserves_lookups_across_families() {
        let mut m = EidTrie::new();
        let subnet: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16)
            .unwrap()
            .into();
        let host: EidPrefix = Ipv4Prefix::host(Ipv4Addr::new(10, 1, 2, 3)).into();
        let mac: EidPrefix = MacPrefix::host(MacAddr::from_seed(3)).into();
        m.insert(subnet, 1);
        m.insert(host, 2);
        m.insert(mac, 3);
        m.compact();
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.lookup(&Eid::V4(Ipv4Addr::new(10, 1, 2, 3)))
                .map(|(p, v)| (p, *v)),
            Some((host, 2))
        );
        assert_eq!(
            m.lookup(&Eid::V4(Ipv4Addr::new(10, 1, 9, 9)))
                .map(|(p, v)| (p, *v)),
            Some((subnet, 1))
        );
        assert_eq!(
            m.lookup(&Eid::Mac(MacAddr::from_seed(3))).map(|(_, v)| *v),
            Some(3)
        );
        let stats = m.mem_stats();
        assert_eq!(stats.free_list_len, 0);
        // Three family roots + live structural/entry nodes.
        assert!(stats.live_nodes >= 3 + 3);
    }

    #[test]
    fn shared_lookup_filters_dead_entries() {
        let mut m = EidTrie::new();
        let subnet: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16)
            .unwrap()
            .into();
        let host: EidPrefix = Ipv4Prefix::host(Ipv4Addr::new(10, 1, 2, 3)).into();
        m.insert(subnet, 1u32);
        m.insert(host, 2u32);
        let probe = Eid::V4(Ipv4Addr::new(10, 1, 2, 3));
        // Unfiltered: host route wins, length 32.
        assert_eq!(m.lookup_where(&probe, |_| true), Some((32, &2)));
        // Dead host route: the live /16 answers instead.
        assert_eq!(m.lookup_where(&probe, |v| *v != 2), Some((16, &1)));
        assert_eq!(covering_prefix(&probe, 16), subnet);
        assert_eq!(m.lookup_where(&probe, |_| false), None);

        // The batched flavor visits in order and agrees.
        let eids = [
            probe,
            Eid::V4(Ipv4Addr::new(10, 1, 9, 9)),
            Eid::V4(Ipv4Addr::new(192, 0, 2, 1)),
            Eid::Mac(MacAddr::from_seed(5)),
        ];
        let mut got = Vec::new();
        m.lookup_each_where(
            &eids,
            |v| *v != 2,
            |i, res| got.push((i, res.map(|(len, v)| (len, *v)))),
        );
        let want: Vec<_> = eids
            .iter()
            .enumerate()
            .map(|(i, e)| (i, m.lookup_where(e, |v| *v != 2).map(|(len, v)| (len, *v))))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mac_lookup_exact_only_route() {
        let mut m = EidTrie::new();
        let mac = MacAddr::from_seed(77);
        m.insert(MacPrefix::host(mac).into(), 9);
        let (p, v) = m.lookup(&Eid::Mac(mac)).unwrap();
        assert!(p.is_host());
        assert_eq!(*v, 9);
        assert!(m.lookup(&Eid::Mac(MacAddr::from_seed(78))).is_none());
    }
}
