//! Per-VN local endpoint tables (VRFs).
//!
//! Each edge keeps, per VN, the endpoints attached to its own ports.
//! Every entry carries the endpoint's GroupId — the `(Overlay IP,
//! GroupId)` association created during onboarding that the egress
//! pipeline's second stage reads (§3.3.2). Entries are keyed by all the
//! endpoint's EIDs (IPv4 and MAC point at the same record).
//!
//! The per-VN tables are [`EidTrie`]s (host routes), so the data-plane
//! lookup on the egress pipeline's first stage shares the inline-key,
//! allocation-free trie machinery with the map-cache, and gains subnet
//! (covering-prefix) capability for free if the VRF ever needs it.
//!
//! This type moved here from `sda-core` when the batched forwarding
//! engine landed: the [`crate::Switch`] owns a `VrfTable` directly, and
//! the router nodes in `sda-core` re-export it.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, VnId};

/// A locally attached endpoint as the VRF sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LocalEndpoint {
    /// Output port toward the endpoint.
    pub port: PortId,
    /// The endpoint's micro-segmentation group (destination group in
    /// egress ACL checks).
    pub group: GroupId,
    /// The endpoint's MAC (for ARP answers and L2 flows).
    pub mac: MacAddr,
    /// The endpoint's IPv4 (for reverse indexing).
    pub ipv4: Ipv4Addr,
}

/// The per-VN local tables of one edge router.
#[derive(Default, Debug, Clone)]
pub struct VrfTable {
    /// vn → host-route trie. Both the IPv4 and MAC EIDs key the record.
    vns: BTreeMap<VnId, EidTrie<LocalEndpoint>>,
    /// mac → vn reverse index (detach only gives us the MAC).
    by_mac: BTreeMap<MacAddr, VnId>,
}

impl VrfTable {
    /// Empty table.
    pub fn new() -> Self {
        VrfTable::default()
    }

    /// Installs an endpoint into `vn` (onboarding step 4 wrote the
    /// `(Overlay IP, GroupId)` association).
    pub fn attach(&mut self, vn: VnId, ep: LocalEndpoint) {
        let trie = self.vns.entry(vn).or_default();
        trie.insert(EidPrefix::host(Eid::V4(ep.ipv4)), ep);
        trie.insert(EidPrefix::host(Eid::Mac(ep.mac)), ep);
        self.by_mac.insert(ep.mac, vn);
    }

    /// Removes the endpoint with `mac`, returning its record.
    pub fn detach(&mut self, mac: MacAddr) -> Option<(VnId, LocalEndpoint)> {
        let vn = self.by_mac.remove(&mac)?;
        let trie = self.vns.get_mut(&vn)?;
        let ep = trie.remove(&EidPrefix::host(Eid::Mac(mac)))?;
        trie.remove(&EidPrefix::host(Eid::V4(ep.ipv4)));
        Some((vn, ep))
    }

    /// Looks up a destination EID in `vn` (egress stage 1). Exact host
    /// match on the trie — allocation-free.
    pub fn lookup(&self, vn: VnId, eid: Eid) -> Option<&LocalEndpoint> {
        self.vns.get(&vn)?.get(&EidPrefix::host(eid))
    }

    /// Finds the attached endpoint by MAC regardless of VN (ingress
    /// classification: the port/MAC tells us who is sending).
    pub fn classify(&self, mac: MacAddr) -> Option<(VnId, &LocalEndpoint)> {
        let vn = self.by_mac.get(&mac)?;
        self.lookup(*vn, Eid::Mac(mac)).map(|ep| (*vn, ep))
    }

    /// All `(vn, group)` pairs currently attached — the input to SXP
    /// rule-subset computation (deduped).
    pub fn local_bindings(&self) -> Vec<(VnId, GroupId)> {
        let mut v: Vec<(VnId, GroupId)> = self.iter().map(|(vn, ep)| (vn, ep.group)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Re-lays every per-VN trie arena in DFS preorder (see
    /// [`sda_trie::PatriciaTrie::compact`]). Call once onboarding
    /// settles so egress-stage lookups walk nearly-sequential memory.
    pub fn compact(&mut self) {
        sda_trie::compact_each(self.vns.values_mut());
    }

    /// Aggregated trie-arena diagnostics across all VNs.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        sda_trie::merged_mem_stats(self.vns.values())
    }

    /// Number of attached endpoints (not EID keys).
    pub fn endpoint_count(&self) -> usize {
        self.by_mac.len()
    }

    /// True when no endpoints are attached.
    pub fn is_empty(&self) -> bool {
        self.by_mac.is_empty()
    }

    /// Clears everything (edge reboot).
    pub fn clear(&mut self) {
        self.vns.clear();
        self.by_mac.clear();
    }

    /// Iterates attached endpoints as `(vn, endpoint)`.
    pub fn iter(&self) -> impl Iterator<Item = (VnId, &LocalEndpoint)> {
        self.by_mac
            .iter()
            .filter_map(move |(mac, vn)| self.lookup(*vn, Eid::Mac(*mac)).map(|ep| (*vn, ep)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn ep(seed: u32, group: u16) -> LocalEndpoint {
        LocalEndpoint {
            port: PortId(seed as u16),
            group: GroupId(group),
            mac: MacAddr::from_seed(seed),
            ipv4: Ipv4Addr::new(10, 0, (seed >> 8) as u8, seed as u8),
        }
    }

    #[test]
    fn attach_keys_both_eids() {
        let mut t = VrfTable::new();
        let e = ep(1, 5);
        t.attach(vn(1), e);
        assert_eq!(t.lookup(vn(1), Eid::V4(e.ipv4)).unwrap().group, GroupId(5));
        assert_eq!(t.lookup(vn(1), Eid::Mac(e.mac)).unwrap().port, e.port);
        assert_eq!(t.endpoint_count(), 1);
    }

    #[test]
    fn vn_isolation_in_lookup() {
        let mut t = VrfTable::new();
        let e = ep(1, 5);
        t.attach(vn(1), e);
        assert!(t.lookup(vn(2), Eid::V4(e.ipv4)).is_none());
    }

    #[test]
    fn detach_removes_both_keys() {
        let mut t = VrfTable::new();
        let e = ep(1, 5);
        t.attach(vn(1), e);
        let (v, removed) = t.detach(e.mac).unwrap();
        assert_eq!(v, vn(1));
        assert_eq!(removed, e);
        assert!(t.lookup(vn(1), Eid::V4(e.ipv4)).is_none());
        assert!(t.lookup(vn(1), Eid::Mac(e.mac)).is_none());
        assert!(t.detach(e.mac).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn classify_by_mac() {
        let mut t = VrfTable::new();
        t.attach(vn(3), ep(7, 9));
        let (v, e) = t.classify(MacAddr::from_seed(7)).unwrap();
        assert_eq!(v, vn(3));
        assert_eq!(e.group, GroupId(9));
        assert!(t.classify(MacAddr::from_seed(8)).is_none());
    }

    #[test]
    fn local_bindings_dedup() {
        let mut t = VrfTable::new();
        t.attach(vn(1), ep(1, 5));
        t.attach(vn(1), ep(2, 5));
        t.attach(vn(1), ep(3, 6));
        t.attach(vn(2), ep(4, 5));
        assert_eq!(
            t.local_bindings(),
            vec![
                (vn(1), GroupId(5)),
                (vn(1), GroupId(6)),
                (vn(2), GroupId(5))
            ]
        );
    }

    #[test]
    fn reattach_after_move_updates_port() {
        let mut t = VrfTable::new();
        let mut e = ep(1, 5);
        t.attach(vn(1), e);
        e.port = PortId(99);
        t.attach(vn(1), e);
        assert_eq!(t.endpoint_count(), 1);
        assert_eq!(t.lookup(vn(1), Eid::Mac(e.mac)).unwrap().port, PortId(99));
    }
}
