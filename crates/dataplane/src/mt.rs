//! Multi-core deployment of the forwarding engine: RSS-sharded workers
//! over clone-and-swap shared tables.
//!
//! ## The epoch scheme ([`EpochTables`] / [`TableReader`])
//!
//! The engine's tables are read-mostly: per-packet work only *reads*
//! the VRF/FIB/ACL structure (entry metadata refreshes ride the
//! `CacheEntry` atomics). So the concurrency scheme is deliberately
//! coarse:
//!
//! * **Writers clone and swap.** The control plane mutates a private
//!   working copy, then publishes it wholesale: build an
//!   `Arc<SharedTables>`, store it in the slot, bump the epoch counter
//!   (Release). Publication cost is O(tables) — the documented
//!   trade-off for a completely contention-free read side; batch your
//!   control-plane changes and publish once (exactly like
//!   `compact_tables`, the benches and the population paths do).
//! * **Readers are wait-free on the hot path.** A [`TableReader`]
//!   caches its own `Arc` snapshot; per batch it performs one atomic
//!   epoch load (Acquire) and only touches the slot mutex when the
//!   epoch actually moved. A reader mid-descent keeps its old snapshot
//!   alive through the `Arc`, so a swap can never tear a lookup — every
//!   resolution comes entirely from the old or entirely from the new
//!   table (the `mt_swap` stress test hammers this with 1k swaps under
//!   concurrent readers).
//!
//! ## The worker fan-out ([`MtSwitch`])
//!
//! [`MtSwitch`] runs N persistent `std::thread` workers, each owning a
//! [`WorkerCtx`] (scratch, punt queue, stats, source memo — nothing
//! shared, nothing contended) and a [`TableReader`]. The front
//! distributes each burst RSS-style: packets hash on the **inner**
//! IPv4 `(src, dst)` pair (the same `flow_hash` the ECMP source port
//! uses), so all packets of one flow land on the same worker and
//! per-flow order is preserved end to end (each worker's job queue is
//! FIFO). Buffers travel by `mem::swap` into one pre-allocated shuttle
//! per worker per burst — pointer moves, not byte copies — which the
//! worker processes in [`BATCH_SIZE`] chunks (the engine's native batch
//! size, so phases and cache footprint match the single-threaded
//! switch); verdicts return in the caller's original packet order.
//! Punts aggregate in worker order (deterministic for a fixed worker
//! count); stats merge across workers on demand.
//!
//! Per-packet work allocates nothing (the per-worker path is the same
//! [`ingress_batch`]/[`egress_batch`] the single-threaded [`Switch`]
//! runs, proved by `tests/no_alloc.rs`); the transport costs two mpsc
//! messages and at most one cross-thread wakeup per worker per burst —
//! the messaging is deliberately this coarse because on shared cores
//! every wake of a parked thread invites a preemption, and a
//! message-per-32-packets design measurably degenerated into a
//! context-switch ping-pong.
//!
//! [`Switch`]: crate::Switch

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use sda_simnet::{SimDuration, SimTime};
use sda_trie::MemStats;
use sda_types::{Eid, EidPrefix, MacAddr, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

use crate::buffer::{PacketBuf, BATCH_SIZE};
use crate::encap::{self, UNDERLAY_OVERHEAD};
use crate::switch::{
    egress_batch, ingress_batch, DropReason, Punt, SharedTables, SwitchConfig, SwitchStats,
    Verdict, WorkerCtx,
};
use crate::vrf::LocalEndpoint;

/// The publication side of the clone-and-swap scheme: an epoch counter
/// plus the current table snapshot.
pub struct EpochTables {
    /// The current snapshot. The mutex only guards the `Arc` slot (a
    /// pointer swap/clone), never the tables themselves — readers clone
    /// the `Arc` out and descend lock-free.
    slot: Mutex<Arc<SharedTables>>,
    /// Bumped (Release) after every swap; readers poll it (Acquire).
    epoch: AtomicU64,
}

impl EpochTables {
    /// A new publication slot holding `tables` as epoch 0.
    pub fn new(tables: SharedTables) -> Arc<Self> {
        Arc::new(EpochTables {
            slot: Mutex::new(Arc::new(tables)),
            epoch: AtomicU64::new(0),
        })
    }

    /// Publishes a new snapshot: clone-and-swap's swap half. Readers
    /// pick it up at their next epoch check; in-flight descents finish
    /// on their old snapshot.
    pub fn publish(&self, tables: SharedTables) {
        *self.slot.lock().expect("publisher poisoned") = Arc::new(tables);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current snapshot (one mutex-guarded `Arc` clone — the slow
    /// path readers take only when the epoch moved).
    pub fn snapshot(&self) -> Arc<SharedTables> {
        self.slot.lock().expect("publisher poisoned").clone()
    }

    /// Current epoch value.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A wait-free-on-the-hot-path reader handle.
    pub fn reader(self: &Arc<Self>) -> TableReader {
        TableReader {
            snap: self.snapshot(),
            seen: self.epoch(),
            shared: Arc::clone(self),
        }
    }
}

/// One reader's cached view of the published tables.
pub struct TableReader {
    shared: Arc<EpochTables>,
    snap: Arc<SharedTables>,
    seen: u64,
}

impl TableReader {
    /// The current tables: one Relaxed-cost atomic load when nothing
    /// changed (the overwhelmingly common case); a mutex-guarded `Arc`
    /// clone when a publish happened since the last call.
    pub fn current(&mut self) -> &SharedTables {
        self.refresh().0
    }

    /// Like [`TableReader::current`], but also reports whether this
    /// call moved to a newer snapshot — callers caching state *derived*
    /// from the tables (e.g. the [`WorkerCtx`] source-classification
    /// memo) must drop it when this returns true.
    pub fn refresh(&mut self) -> (&SharedTables, bool) {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        let changed = epoch != self.seen;
        if changed {
            self.snap = self.shared.snapshot();
            self.seen = epoch;
        }
        (&self.snap, changed)
    }
}

/// One unit of work shuttled to a worker: a worker's whole share of one
/// burst (buffers swapped in, never copied), the original burst
/// positions, and the result fields the worker fills on the way back.
/// One shuttle per worker per burst keeps the channel at two messages
/// per worker per burst regardless of burst size; the worker still
/// *processes* it in [`BATCH_SIZE`] chunks, so the engine's batch
/// semantics (and cache behavior) match the single-threaded switch.
struct Shuttle {
    /// Placeholder-backed transport slots; grows to the largest share
    /// this shuttle has carried and is recycled via the free list.
    bufs: Vec<PacketBuf>,
    /// Original positions in the caller's burst; `idx.len()` is the
    /// fill level.
    idx: Vec<u32>,
    verdicts: Vec<Verdict>,
    punts: Vec<Punt>,
    /// The worker's cumulative stats as of this batch.
    stats: SwitchStats,
    worker: usize,
    /// Reply payload for [`Job::MemStats`] requests.
    mem: Option<MemStats>,
}

impl Shuttle {
    fn new() -> Self {
        Shuttle {
            bufs: (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect(),
            idx: Vec::with_capacity(BATCH_SIZE),
            verdicts: Vec::with_capacity(BATCH_SIZE),
            punts: Vec::new(),
            stats: SwitchStats::default(),
            worker: 0,
            mem: None,
        }
    }
}

// Batch dominates the traffic on this channel; boxing the shuttle to
// shrink the rare Stop/MemStats variants would add an allocation per
// message for nothing.
#[allow(clippy::large_enum_variant)]
enum Job {
    Batch {
        shuttle: Shuttle,
        now: SimTime,
        ingress: bool,
    },
    MemStats,
    Stop,
}

fn worker_loop(
    cfg: SwitchConfig,
    mut reader: TableReader,
    jobs: Receiver<Job>,
    results: Sender<Shuttle>,
    worker: usize,
) {
    let mut ctx = WorkerCtx::new(&cfg);
    // Finished shuttles are held back until the job queue runs dry,
    // then flushed in one run. Sending each result eagerly would wake
    // the (usually parked) front once per shuttle; on a machine where
    // front and workers share cores, that wakeup preempts the worker
    // and degenerates into one context-switch ping-pong per 32
    // packets. Coalescing keeps it to ~two switches per burst.
    let mut done: Vec<Shuttle> = Vec::new();
    'outer: while let Ok(first) = jobs.recv() {
        let mut job = first;
        loop {
            match job {
                Job::Batch {
                    mut shuttle,
                    now,
                    ingress,
                } => {
                    let fill = shuttle.idx.len();
                    let (tables, swapped) = reader.refresh();
                    if swapped {
                        // The memo binds a MAC to the *old* snapshot's
                        // VRF state; answering from it after a swap
                        // would let a detached endpoint keep forwarding
                        // past the source guard.
                        ctx.invalidate_memo();
                    }
                    // One shuttle is a worker's whole share of a burst;
                    // process it in engine-sized batches so the
                    // pipeline's phases and cache footprint match the
                    // single-threaded switch exactly. Punts accumulate
                    // in the ctx across chunks and drain once at the
                    // end — draining per chunk would reset the
                    // consecutive-duplicate collapse every 32 packets
                    // and emit one redundant Map-Request per chunk
                    // during a miss storm.
                    shuttle.verdicts.clear();
                    for chunk in shuttle.bufs[..fill].chunks_mut(BATCH_SIZE) {
                        if ingress {
                            ingress_batch(&cfg, tables, &mut ctx, chunk, now);
                        } else {
                            egress_batch(&cfg, tables, &mut ctx, chunk, now);
                        }
                        shuttle.verdicts.extend_from_slice(ctx.verdicts());
                    }
                    ctx.drain_punts_into(&mut shuttle.punts);
                    shuttle.stats = ctx.stats();
                    shuttle.worker = worker;
                    done.push(shuttle);
                }
                Job::MemStats => {
                    // Same refresh discipline as Batch: consuming the
                    // epoch-changed signal here without invalidating
                    // the memo would let a stale memo survive the swap
                    // into the next Batch job.
                    let (tables, swapped) = reader.refresh();
                    if swapped {
                        ctx.invalidate_memo();
                    }
                    let mem = Some(tables.mem_stats());
                    done.push(Shuttle {
                        bufs: Vec::new(),
                        idx: Vec::new(),
                        verdicts: Vec::new(),
                        punts: Vec::new(),
                        stats: ctx.stats(),
                        worker,
                        mem,
                    });
                }
                Job::Stop => {
                    for s in done.drain(..) {
                        let _ = results.send(s);
                    }
                    break 'outer;
                }
            }
            match jobs.try_recv() {
                Ok(next) => job = next,
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    for s in done.drain(..) {
                        let _ = results.send(s);
                    }
                    break 'outer;
                }
            }
        }
        for s in done.drain(..) {
            if results.send(s).is_err() {
                break 'outer;
            }
        }
    }
}

/// The multi-core switch front: N RSS-sharded workers behind the same
/// control-plane surface as [`crate::Switch`].
///
/// Mutations apply to a private working copy and are **published
/// lazily**: the next processing call (or an explicit
/// [`MtSwitch::publish`]) clones the working copy and swaps it in.
/// [`MtSwitch::receive_smr`] is the exception — it flips the stale bit
/// through the `CacheEntry` atomics on both the working copy and the
/// live snapshot, so an SMR needs no table clone at all.
pub struct MtSwitch {
    cfg: SwitchConfig,
    /// The writer's working copy of the tables.
    tables: SharedTables,
    /// Unpublished working-copy changes exist.
    dirty: bool,
    epoch: Arc<EpochTables>,
    job_txs: Vec<Sender<Job>>,
    result_rx: Receiver<Shuttle>,
    handles: Vec<JoinHandle<()>>,
    /// Latest cumulative stats snapshot per worker.
    worker_stats: Vec<SwitchStats>,
    /// Per-worker punt staging, concatenated in worker order after each
    /// burst so aggregation is deterministic for a fixed worker count.
    punt_stage: Vec<Vec<Punt>>,
    /// Per-worker shuttle under construction during staging (always
    /// all-`None` between bursts; a field so the hot path does not
    /// allocate a fresh vector per burst).
    staged: Vec<Option<Shuttle>>,
    punts: Vec<Punt>,
    verdicts: Vec<Verdict>,
    free: Vec<Shuttle>,
}

impl MtSwitch {
    /// Spawns `workers` forwarding threads (≥ 1) sharing empty tables.
    pub fn spawn(cfg: SwitchConfig, workers: usize) -> Self {
        assert!(workers >= 1, "MtSwitch needs at least one worker");
        let epoch = EpochTables::new(SharedTables::with_policy_default(cfg.default_action));
        let (result_tx, result_rx) = std::sync::mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = std::sync::mpsc::channel();
            let reader = epoch.reader();
            let results = result_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sda-fwd-{w}"))
                    .spawn(move || worker_loop(cfg, reader, rx, results, w))
                    .expect("spawn forwarding worker"),
            );
            job_txs.push(tx);
        }
        MtSwitch {
            tables: SharedTables::with_policy_default(cfg.default_action),
            cfg,
            dirty: false,
            epoch,
            job_txs,
            result_rx,
            handles,
            worker_stats: vec![SwitchStats::default(); workers],
            punt_stage: (0..workers).map(|_| Vec::new()).collect(),
            staged: (0..workers).map(|_| None).collect(),
            punts: Vec::new(),
            verdicts: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Static configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    // --- control-plane surface (working copy + lazy publish) --------

    /// Attaches a local endpoint.
    pub fn attach(&mut self, vn: VnId, ep: LocalEndpoint) {
        self.tables.attach(vn, ep);
        self.dirty = true;
    }

    /// Detaches the endpoint with `mac`.
    pub fn detach(&mut self, mac: MacAddr) -> Option<(VnId, LocalEndpoint)> {
        self.dirty = true;
        self.tables.detach(mac)
    }

    /// Installs a mapping from a positive Map-Reply.
    pub fn install_mapping(
        &mut self,
        vn: VnId,
        prefix: EidPrefix,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.tables.install_mapping(vn, prefix, rloc, ttl, now);
        self.dirty = true;
    }

    /// Applies a negative Map-Reply (deletes the covered entry).
    pub fn apply_negative(&mut self, vn: VnId, prefix: EidPrefix) -> bool {
        self.dirty = true;
        self.tables.apply_negative(vn, prefix)
    }

    /// Drops every cached mapping through `rloc` (underlay down).
    pub fn purge_rloc(&mut self, rloc: Rloc) -> usize {
        self.dirty = true;
        self.tables.purge_rloc(rloc)
    }

    /// Installs (merges) an SXP rule subset.
    pub fn install_rules(&mut self, subset: &sda_policy::RuleSubset) {
        self.tables.install_rules(subset);
        self.dirty = true;
    }

    /// Installs the full connectivity matrix.
    pub fn install_matrix(&mut self, matrix: &sda_policy::ConnectivityMatrix) {
        self.tables.install_matrix(matrix);
        self.dirty = true;
    }

    /// Handles a received SMR. Structure-free: the stale bit flips
    /// through the `CacheEntry` atomics on the *live* snapshot (workers
    /// see it immediately) and on the working copy (so the mark
    /// survives the next publish). No clone, no epoch bump.
    pub fn receive_smr(&mut self, vn: VnId, eid: Eid, now: SimTime) -> Option<Rloc> {
        let r = self.tables.receive_smr(vn, eid, now);
        self.epoch.snapshot().receive_smr(vn, eid, now);
        r
    }

    /// Owner maintenance sweep: removes map-cache entries TTL-expired
    /// at `now` or idle longer than `idle_timeout` from the working
    /// copy (published on the next processing call, like any other
    /// mutation). Workers already *filter* expired entries during
    /// lookup; this reclaims the memory and keeps
    /// [`MtSwitch::fib_len`] honest. Before comparing idle times, the
    /// `last_used`/`stale` metadata the workers stamped onto the
    /// *published snapshot* is adopted back into the working copy, so
    /// entries hot on the data path are not mistaken for idle.
    /// Returns how many entries were removed.
    pub fn evict_expired(&mut self, now: SimTime, idle_timeout: SimDuration) -> usize {
        let snapshot = self.epoch.snapshot();
        self.tables.adopt_metadata(&snapshot);
        let removed = self.tables.evict_expired(now, idle_timeout);
        if removed > 0 {
            self.dirty = true;
        }
        removed
    }

    /// Compacts the working copy's trie arenas (published on the next
    /// [`MtSwitch::publish`] / processing call).
    pub fn compact_tables(&mut self) {
        self.tables.compact();
        self.dirty = true;
    }

    /// Clone-and-swap: publishes the working copy so workers pick it up
    /// at their next batch. Called automatically by the processing
    /// entry points when control-plane changes are pending; call it
    /// eagerly after bulk population to keep the clone off the first
    /// traffic burst.
    ///
    /// Before the swap, the `last_used`/`stale` stamps the workers
    /// wrote onto the *retiring* snapshot are adopted into the working
    /// copy (same-generation entries only), so publication never
    /// discards data-path heat — without this, an entry hot before an
    /// unrelated publish would look idle to a later
    /// [`MtSwitch::evict_expired`] sweep.
    pub fn publish(&mut self) {
        let retiring = self.epoch.snapshot();
        self.tables.adopt_metadata(&retiring);
        self.epoch.publish(self.tables.clone());
        self.dirty = false;
    }

    /// The writer's working copy (read access: FIB size, mem stats…).
    pub fn tables(&self) -> &SharedTables {
        &self.tables
    }

    /// Current map-cache size of the working copy.
    pub fn fib_len(&self) -> usize {
        self.tables.fib_len()
    }

    // --- aggregated results ----------------------------------------

    /// Merged forwarding counters across all workers (as of each
    /// worker's last returned batch).
    pub fn stats(&self) -> SwitchStats {
        let mut total = SwitchStats::default();
        for s in &self.worker_stats {
            total.merge(s);
        }
        total
    }

    /// Punts aggregated since the last clear/drain, in worker order per
    /// burst.
    pub fn punts(&self) -> &[Punt] {
        &self.punts
    }

    /// Clears the aggregated punt queue (capacity retained).
    pub fn clear_punts(&mut self) {
        self.punts.clear();
    }

    /// Takes the aggregated punts by swap, leaving an empty queue.
    pub fn drain_punts(&mut self) -> Vec<Punt> {
        std::mem::take(&mut self.punts)
    }

    /// Verdicts of the most recent processing call, in burst order.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Per-worker views of the published tables' arena diagnostics
    /// (index = worker id). Workers may briefly hold different epochs;
    /// each reports the snapshot it would forward with right now.
    pub fn worker_mem_stats(&mut self) -> Vec<MemStats> {
        for tx in &self.job_txs {
            tx.send(Job::MemStats).expect("worker alive");
        }
        let mut out: Vec<MemStats> = (0..self.workers()).map(|_| MemStats::default()).collect();
        for _ in 0..self.workers() {
            let mut reply = self.result_rx.recv().expect("worker alive");
            out[reply.worker] = reply.mem.take().expect("MemStats reply carries stats");
            self.worker_stats[reply.worker] = reply.stats;
        }
        out
    }

    // --- data path --------------------------------------------------

    /// Processes a burst of host-side Ethernet frames across the
    /// workers. Packets are distributed by inner-flow hash (RSS), so
    /// per-flow order is preserved; `verdicts()[i]` corresponds to
    /// `bufs[i]` exactly as on [`crate::Switch`].
    pub fn process_ingress(&mut self, bufs: &mut [PacketBuf], now: SimTime) -> &[Verdict] {
        self.process(bufs, now, true)
    }

    /// Processes a burst of underlay packets across the workers
    /// (egress pipeline), RSS on the inner flow like ingress.
    pub fn process_egress(&mut self, bufs: &mut [PacketBuf], now: SimTime) -> &[Verdict] {
        self.process(bufs, now, false)
    }

    fn process(&mut self, bufs: &mut [PacketBuf], now: SimTime, ingress: bool) -> &[Verdict] {
        if self.dirty {
            self.publish();
        }
        let n = self.workers();
        self.verdicts.clear();
        self.verdicts
            .resize(bufs.len(), Verdict::Drop(DropReason::Malformed));

        // Stage the whole burst first: swap each buffer into its
        // worker's (single, growable) shuttle. Nothing is sent yet —
        // dispatching mid-staging would wake a parked worker per
        // message, and on shared cores each wake preempts the front
        // into a context-switch ping-pong. One shuttle per worker per
        // burst bounds the transport at two messages and one wake per
        // worker regardless of burst size; staging is a small fraction
        // of the per-burst work, so deferring dispatch trades a sliver
        // of pipeline overlap for that.
        let staged = &mut self.staged;
        let free = &mut self.free;
        debug_assert!(staged.iter().all(Option::is_none));
        for (i, buf) in bufs.iter_mut().enumerate() {
            let w = if n == 1 {
                0
            } else {
                rss_worker(buf, ingress, n)
            };
            let shuttle = staged[w].get_or_insert_with(|| free.pop().unwrap_or_else(Shuttle::new));
            let k = shuttle.idx.len();
            if shuttle.bufs.len() == k {
                // First burst this large: grow the transport slots
                // (recycled with the shuttle afterwards).
                shuttle.bufs.push(PacketBuf::new());
            }
            std::mem::swap(buf, &mut shuttle.bufs[k]);
            shuttle.idx.push(i as u32);
        }

        // Dispatch one job per participating worker, back to back.
        let mut outstanding = 0usize;
        for (w, slot) in staged.iter_mut().enumerate() {
            if let Some(shuttle) = slot.take() {
                self.job_txs[w]
                    .send(Job::Batch {
                        shuttle,
                        now,
                        ingress,
                    })
                    .expect("worker alive");
                outstanding += 1;
            }
        }

        // Collect: swap buffers back into burst positions, scatter
        // verdicts, stage punts per worker.
        while outstanding > 0 {
            let mut shuttle = self.result_rx.recv().expect("worker alive");
            for (k, &i) in shuttle.idx.iter().enumerate() {
                std::mem::swap(&mut bufs[i as usize], &mut shuttle.bufs[k]);
                self.verdicts[i as usize] = shuttle.verdicts[k];
            }
            self.worker_stats[shuttle.worker] = shuttle.stats;
            self.punt_stage[shuttle.worker].extend_from_slice(&shuttle.punts);
            shuttle.idx.clear();
            shuttle.verdicts.clear();
            shuttle.punts.clear();
            self.free.push(shuttle);
            outstanding -= 1;
        }
        for w in 0..n {
            self.punts.append(&mut self.punt_stage[w]);
        }
        &self.verdicts
    }
}

impl Drop for MtSwitch {
    fn drop(&mut self) {
        for tx in &self.job_txs {
            let _ = tx.send(Job::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// RSS distribution: hash the **inner** IPv4 `(src, dst)` with the same
/// `flow_hash` the ECMP source port uses, so one flow always lands on
/// one worker (per-flow order) and both directions of the fabric use
/// consistent entropy. Frames the hash cannot reach (malformed, non-
/// IPv4) go to worker 0 — they drop in parse anyway.
fn rss_worker(buf: &PacketBuf, ingress: bool, workers: usize) -> usize {
    let bytes = buf.bytes();
    let ip_off = if ingress {
        // Ethernet frame: the inner IPv4 header follows the L2 header.
        match ethernet::Frame::new_checked(bytes) {
            Ok(f) if f.ethertype() == EtherType::Ipv4 => ethernet::HEADER_LEN,
            _ => return 0,
        }
    } else {
        // Underlay packet: outer IPv4 + UDP + VXLAN-GPO, then the inner
        // IPv4 header at a fixed offset.
        UNDERLAY_OVERHEAD
    };
    if bytes.len() < ip_off + ipv4::HEADER_LEN {
        return 0;
    }
    let src = u32::from_be_bytes(bytes[ip_off + 12..ip_off + 16].try_into().expect("4 bytes"));
    let dst = u32::from_be_bytes(bytes[ip_off + 16..ip_off + 20].try_into().expect("4 bytes"));
    (encap::flow_hash(src, dst) as usize) % workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::Switch;
    use sda_policy::Action;
    use sda_types::{GroupId, PortId};
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn ep(seed: u32, group: u16) -> LocalEndpoint {
        LocalEndpoint {
            port: PortId(seed as u16),
            group: GroupId(group),
            mac: MacAddr::from_seed(seed),
            ipv4: Ipv4Addr::new(10, 0, (seed >> 8) as u8, seed as u8),
        }
    }

    fn frame(src: &LocalEndpoint, dst_ip: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let inner = ipv4::Repr {
            src: src.ipv4,
            dst: dst_ip,
            protocol: ipv4::Protocol::Unknown(253),
            payload_len: payload.len(),
            ttl: 64,
        };
        let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
        ethernet::Repr {
            dst: MacAddr::BROADCAST,
            src: src.mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
        {
            let mut ip = ipv4::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
            inner.emit(&mut ip);
            ip.payload_mut().copy_from_slice(payload);
        }
        buf
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);

    fn cfg() -> SwitchConfig {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
        cfg.border = Some(Rloc::for_router_index(99));
        cfg.default_action = Action::Allow;
        cfg
    }

    /// Identical populations, identical bursts: the multi-core switch
    /// must produce exactly the single-threaded switch's verdicts, in
    /// the caller's packet order, for 1..=4 workers.
    #[test]
    fn verdicts_match_single_threaded_switch() {
        let routes = 64u32;
        let remote_ip = |i: u32| Ipv4Addr::from(0x0A09_0000 | i);
        let build_st = || {
            let mut sw = Switch::new(cfg());
            sw.attach(vn(1), ep(1, 10));
            sw.attach(vn(1), ep(2, 10));
            for i in 0..routes {
                sw.install_mapping(
                    vn(1),
                    EidPrefix::host(Eid::V4(remote_ip(i))),
                    Rloc::for_router_index((i % 7 + 2) as u16),
                    TTL,
                    SimTime::ZERO,
                );
            }
            sw
        };
        let frames: Vec<Vec<u8>> = (0..96u32)
            .map(|i| match i % 4 {
                // Remote hits with varied flows, a local delivery, and
                // a miss riding the default route.
                0 | 1 => frame(&ep(1, 10), remote_ip(i * 17 % routes), b"hit"),
                2 => frame(&ep(1, 10), ep(2, 10).ipv4, b"local"),
                _ => frame(&ep(1, 10), Ipv4Addr::new(10, 255, 0, i as u8), b"miss"),
            })
            .collect();

        let mut st = build_st();
        let mut pool = BufferPool::with_capacity(frames.len());
        let mut bufs: Vec<PacketBuf> = frames
            .iter()
            .map(|f| {
                let mut b = pool.alloc();
                assert!(b.load(f));
                b
            })
            .collect();
        let want = st.process_ingress(&mut bufs, SimTime::ZERO).to_vec();

        for workers in 1..=4usize {
            let mut mt = MtSwitch::spawn(cfg(), workers);
            mt.attach(vn(1), ep(1, 10));
            mt.attach(vn(1), ep(2, 10));
            for i in 0..routes {
                mt.install_mapping(
                    vn(1),
                    EidPrefix::host(Eid::V4(remote_ip(i))),
                    Rloc::for_router_index((i % 7 + 2) as u16),
                    TTL,
                    SimTime::ZERO,
                );
            }
            mt.publish();
            let mut bufs: Vec<PacketBuf> = frames
                .iter()
                .map(|f| {
                    let mut b = PacketBuf::new();
                    assert!(b.load(f));
                    b
                })
                .collect();
            let got = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
            assert_eq!(got, want, "worker count {workers}");
            let stats = mt.stats();
            assert_eq!(stats.rx, frames.len() as u64);
            assert_eq!(
                stats.forwarded + stats.forwarded_default + stats.delivered + stats.dropped,
                frames.len() as u64,
                "every packet accounted across workers"
            );
            // The rewritten bytes round-trip like the single-threaded
            // engine's (spot check one forwarded buffer).
            let fwd_idx = got
                .iter()
                .position(|v| matches!(v, Verdict::Forward { .. }))
                .unwrap();
            let d = encap::parse_underlay(bufs[fwd_idx].bytes()).unwrap();
            assert_eq!(d.outer_src, cfg().rloc);
        }
    }

    /// Same-flow packets keep their relative order: a flow's packets
    /// land on one worker (FIFO queue), so their verdict slots come
    /// back in submission order with the rewritten contents intact.
    #[test]
    fn per_flow_order_and_payloads_survive() {
        let mut mt = MtSwitch::spawn(cfg(), 3);
        mt.attach(vn(1), ep(1, 10));
        let dst = Ipv4Addr::new(10, 9, 0, 5);
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            Rloc::for_router_index(7),
            TTL,
            SimTime::ZERO,
        );
        mt.publish();
        let mut bufs: Vec<PacketBuf> = (0..40u8)
            .map(|i| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&ep(1, 10), dst, &[i; 8])));
                b
            })
            .collect();
        let verdicts = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        for (i, (v, b)) in verdicts.iter().zip(&bufs).enumerate() {
            assert_eq!(
                *v,
                Verdict::Forward {
                    to: Rloc::for_router_index(7)
                }
            );
            let d = encap::parse_underlay(b.bytes()).unwrap();
            let inner = ipv4::Packet::new_checked(d.inner).unwrap();
            assert_eq!(
                inner.payload(),
                &[i as u8; 8],
                "buffer {i} came back in its original slot"
            );
        }
    }

    /// SMR through the atomics: no publish, but the very next burst
    /// forwards on the stale entry and punts a refresh.
    #[test]
    fn smr_reaches_live_snapshot_without_publish() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        mt.attach(vn(1), ep(1, 10));
        let dst = Ipv4Addr::new(10, 9, 0, 5);
        let old_rloc = Rloc::for_router_index(7);
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            old_rloc,
            TTL,
            SimTime::ZERO,
        );
        mt.publish();
        let epoch_before = mt.epoch.epoch();
        assert_eq!(
            mt.receive_smr(vn(1), Eid::V4(dst), SimTime::ZERO),
            Some(old_rloc)
        );
        assert_eq!(mt.epoch.epoch(), epoch_before, "no clone-and-swap for SMR");

        let mut bufs = vec![PacketBuf::new()];
        assert!(bufs[0].load(&frame(&ep(1, 10), dst, b"mid-flight")));
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Forward { to: old_rloc });
        assert_eq!(
            mt.punts(),
            &[Punt::MapRequest {
                vn: vn(1),
                eid: Eid::V4(dst),
                refresh: true
            }]
        );
        let drained = mt.drain_punts();
        assert_eq!(drained.len(), 1);
        assert!(mt.punts().is_empty());
    }

    /// Egress across workers: underlay packets decap and deliver like
    /// the single-threaded engine.
    #[test]
    fn egress_burst_delivers() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        let host = ep(2, 20);
        mt.attach(vn(1), host);
        mt.publish();
        let mut bufs: Vec<PacketBuf> = (0..8u32)
            .map(|i| {
                let inner = frame(
                    &LocalEndpoint {
                        ipv4: Ipv4Addr::new(10, 9, 0, i as u8),
                        ..ep(1, 20)
                    },
                    host.ipv4,
                    b"down",
                );
                let inner_ip = &inner[ethernet::HEADER_LEN..];
                let mut w = vec![0u8; UNDERLAY_OVERHEAD + inner_ip.len()];
                w[UNDERLAY_OVERHEAD..].copy_from_slice(inner_ip);
                encap::write_underlay(
                    &mut w,
                    &encap::EncapParams {
                        outer_src: Rloc::for_router_index(5),
                        outer_dst: cfg().rloc,
                        vn: vn(1),
                        group: GroupId(20),
                        policy_applied: false,
                        ttl: 8,
                        src_port: 50_000,
                        udp_checksum: encap::OuterChecksum::Zero,
                        inner_proto: encap::InnerProto::Ipv4,
                    },
                )
                .unwrap();
                let mut b = PacketBuf::new();
                assert!(b.load(&w));
                b
            })
            .collect();
        let v = mt.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(v.iter().all(|v| *v == Verdict::Deliver { port: host.port }));
        assert_eq!(mt.stats().delivered, 8);
    }

    /// Review regression: detaching an endpoint must invalidate the
    /// workers' source-classification memo — the memo binds a MAC to a
    /// snapshot, and the republish carries the detach to every worker.
    #[test]
    fn detach_invalidates_worker_src_memo() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        let a = ep(1, 10);
        mt.attach(vn(1), a);
        let dst = Ipv4Addr::new(10, 9, 0, 5);
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            Rloc::for_router_index(7),
            TTL,
            SimTime::ZERO,
        );
        // Warm every worker's memo with a burst from `a`.
        let mut bufs: Vec<PacketBuf> = (0..8)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, dst, b"warm")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(v.iter().all(|v| matches!(v, Verdict::Forward { .. })));

        // Detach, then send from the same MAC: the source guard must
        // reject it on every worker (no stale memo answers).
        assert!(mt.detach(a.mac).is_some());
        let mut bufs: Vec<PacketBuf> = (0..8)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, dst, b"stale")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(
            v.iter()
                .all(|v| *v == Verdict::Drop(DropReason::UnknownSource)),
            "detached MAC kept forwarding: {v:?}"
        );
    }

    /// Review regression: the owner sweep reclaims TTL-expired entries
    /// (shared lookups only filter them), and idle-based eviction
    /// adopts the `last_used` stamps workers wrote onto the published
    /// snapshot — an entry hot on the data path survives.
    #[test]
    fn evict_expired_reclaims_and_adopts_worker_stamps() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        let a = ep(1, 10);
        mt.attach(vn(1), a);
        let hot_dst = Ipv4Addr::new(10, 9, 0, 1);
        let cold_dst = Ipv4Addr::new(10, 9, 0, 2);
        let long = SimDuration::from_days(365);
        let short = SimDuration::from_secs(10);
        for (ip, ttl) in [(hot_dst, long), (cold_dst, long)] {
            mt.install_mapping(
                vn(1),
                EidPrefix::host(Eid::V4(ip)),
                Rloc::for_router_index(7),
                ttl,
                SimTime::ZERO,
            );
        }
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(Ipv4Addr::new(10, 9, 0, 3))),
            Rloc::for_router_index(8),
            short,
            SimTime::ZERO,
        );
        assert_eq!(mt.fib_len(), 3);

        // Traffic keeps only `hot_dst` warm — on the published
        // snapshot, through the workers.
        let warm = SimTime::ZERO + SimDuration::from_secs(3000);
        let mut bufs: Vec<PacketBuf> = (0..4)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, hot_dst, b"keepalive")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, warm).to_vec();
        assert!(v.iter().all(|v| matches!(v, Verdict::Forward { .. })));

        // Sweep at `warm + idle - ε`: the short-TTL entry is expired,
        // `cold_dst` has idled out, `hot_dst` survives only because the
        // sweep adopted the workers' stamps.
        let idle = SimDuration::from_secs(3600);
        let later = SimTime::from_nanos(warm.as_nanos() + idle.as_nanos() - 1);
        assert_eq!(mt.evict_expired(later, idle), 2);
        assert_eq!(mt.fib_len(), 1);

        // And the post-sweep state republishes to the workers.
        let mut bufs = vec![PacketBuf::new()];
        assert!(bufs[0].load(&frame(&a, cold_dst, b"gone")));
        let v = mt.process_ingress(&mut bufs, later).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: cfg().border.unwrap()
            },
            "evicted entry now misses and rides the border default"
        );
    }

    /// Review regression: a MemStats request between a publish and the
    /// next batch must not swallow the epoch-changed signal — the
    /// detached MAC still has to be rejected afterwards.
    #[test]
    fn mem_stats_request_does_not_mask_memo_invalidation() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        let a = ep(1, 10);
        mt.attach(vn(1), a);
        let dst = Ipv4Addr::new(10, 9, 0, 5);
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            Rloc::for_router_index(7),
            TTL,
            SimTime::ZERO,
        );
        let mut bufs: Vec<PacketBuf> = (0..8)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, dst, b"warm")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(v.iter().all(|v| matches!(v, Verdict::Forward { .. })));

        // Detach + publish, then let every worker consume the epoch
        // change through the MemStats path before any batch arrives.
        assert!(mt.detach(a.mac).is_some());
        mt.publish();
        let _ = mt.worker_mem_stats();

        let mut bufs: Vec<PacketBuf> = (0..8)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, dst, b"stale")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(
            v.iter()
                .all(|v| *v == Verdict::Drop(DropReason::UnknownSource)),
            "MemStats consumed the swap signal and the stale memo leaked: {v:?}"
        );
    }

    /// Review regression: punt dedup must span a worker's whole share
    /// of a burst — a multi-chunk miss storm toward one destination
    /// raises one Map-Request, exactly like the single-threaded switch.
    #[test]
    fn punt_dedup_spans_chunks() {
        let mut mt = MtSwitch::spawn(cfg(), 1);
        let a = ep(1, 10);
        mt.attach(vn(1), a);
        mt.publish();
        let missing = Ipv4Addr::new(10, 99, 0, 1);
        // 96 packets = 3 engine chunks, all one flow, all misses.
        let mut bufs: Vec<PacketBuf> = (0..96)
            .map(|_| {
                let mut b = PacketBuf::new();
                assert!(b.load(&frame(&a, missing, b"storm")));
                b
            })
            .collect();
        let v = mt.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(v.iter().all(|v| matches!(v, Verdict::Forward { .. })));
        assert_eq!(
            mt.punts(),
            &[Punt::MapRequest {
                vn: vn(1),
                eid: Eid::V4(missing),
                refresh: false
            }],
            "one burst toward one unresolved destination = one Map-Request"
        );
    }

    /// Review regression: publishing over a snapshot must carry the
    /// workers' last_used stamps forward — an entry hot before an
    /// unrelated publish must survive a later idle sweep.
    #[test]
    fn publish_carries_worker_stamps_forward() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        let a = ep(1, 10);
        mt.attach(vn(1), a);
        let dst = Ipv4Addr::new(10, 9, 0, 1);
        mt.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            Rloc::for_router_index(7),
            SimDuration::from_days(365),
            SimTime::ZERO,
        );
        // Traffic at `warm` stamps snapshot v1.
        let warm = SimTime::ZERO + SimDuration::from_secs(3000);
        let mut bufs = vec![PacketBuf::new()];
        assert!(bufs[0].load(&frame(&a, dst, b"hot")));
        let v = mt.process_ingress(&mut bufs, warm).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(7)
            }
        );
        // An unrelated control-plane change publishes v2; the entry
        // then goes quiet.
        mt.attach(vn(1), ep(2, 10));
        mt.publish();
        // Idle sweep inside the window measured from `warm`: the stamp
        // must have ridden publish() into v2's lineage.
        let idle = SimDuration::from_secs(3600);
        let later = SimTime::from_nanos(warm.as_nanos() + idle.as_nanos() - 1);
        assert_eq!(
            mt.evict_expired(later, idle),
            0,
            "entry hot at `warm` evicted: publish dropped the stamps"
        );
        assert_eq!(mt.fib_len(), 1);
    }

    /// Worker mem stats report the published snapshot per worker and
    /// merge via `MemStats::merge`.
    #[test]
    fn worker_mem_stats_report_snapshot() {
        let mut mt = MtSwitch::spawn(cfg(), 2);
        mt.attach(vn(1), ep(1, 10));
        for i in 0..100u32 {
            mt.install_mapping(
                vn(1),
                EidPrefix::host(Eid::V4(Ipv4Addr::from(0x0A09_0000 | i))),
                Rloc::for_router_index(2),
                TTL,
                SimTime::ZERO,
            );
        }
        mt.compact_tables();
        mt.publish();
        let per_worker = mt.worker_mem_stats();
        assert_eq!(per_worker.len(), 2);
        let mut merged = MemStats::default();
        for s in &per_worker {
            assert!(s.live_nodes > 100, "snapshot holds the FIB: {s}");
            merged.merge(s);
        }
        assert_eq!(merged.live_nodes, per_worker[0].live_nodes * 2);
        // The published snapshots agree with the working copy.
        assert_eq!(per_worker[0].live_nodes, mt.tables().mem_stats().live_nodes);
    }
}
