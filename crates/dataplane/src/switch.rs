//! The batched edge-switch forwarding engine.
//!
//! The engine is split along the grain multi-core forwarding needs:
//!
//! * [`SharedTables`] — the read-mostly half: the three tables of
//!   Fig. 4 (per-VRF local endpoint tries ([`VrfTable`]), the
//!   on-demand overlay FIB ([`MapCache`]) and the compiled group ACL
//!   ([`CompiledAcl`]: dense group interning + bitset verdict rows,
//!   one shift+mask per check)). The per-packet pipeline touches them
//!   through `&self` only; mutation is the owner's business (`&mut`,
//!   or clone-and-swap behind the [`crate::mt::EpochTables`] epoch
//!   when workers are live — the ACL's rows are `Arc`-shared, so a
//!   publish copies pointers, not rules).
//! * [`WorkerCtx`] — the per-worker half: verdict/meta/run scratch
//!   vectors, the punt queue, forwarding counters and the one-entry
//!   source-classification memo. One per forwarding thread; nothing in
//!   it is shared, so N workers never contend.
//! * [`ingress_batch`] / [`egress_batch`] — the pipeline itself, a free
//!   function over `(&SwitchConfig, &SharedTables, &mut WorkerCtx)`.
//!   [`Switch`] composes one of each for the single-threaded
//!   deployment; [`crate::MtSwitch`] runs the same functions on N
//!   threads.
//!
//! The burst pipeline (unchanged since the engine landed):
//!
//! 1. **Parse & classify** every frame in the batch through `sda-wire`
//!    views (malformed input is a [`DropReason::Malformed`] verdict,
//!    never a panic).
//! 2. **Resolve** remote destinations through
//!    [`MapCache::lookup_batch_shared`]: consecutive packets of the
//!    same VN form a *run* resolved with one cache descent setup over
//!    the interleaved lockstep trie walk. The shared (`&self`) flavor
//!    treats TTL-expired entries as absent (the filtered descent keeps
//!    a dead host route from shadowing a live covering subnet) and
//!    refreshes `last_used`/reads `stale` through the `CacheEntry`
//!    atomics — see that type's memory-ordering contract (everything
//!    Relaxed: per-entry heuristic metadata only; structural
//!    visibility rides the `Arc` publication). Expired entries are
//!    physically removed by the owner's periodic
//!    [`Switch::evict_expired`] / `MtSwitch::evict_expired` sweep,
//!    not by forwarding.
//! 3. **Rewrite in place**: hits are VXLAN-GPO-encapsulated by writing
//!    the 36 underlay header bytes into the buffer's headroom
//!    ([`crate::encap::write_underlay`]); misses encapsulate toward the
//!    border default route (§3.2.2) and punt a Map-Request to the
//!    control plane; SMR'd (stale) entries forward *and* punt a
//!    refresh, exactly the Fig. 6 behavior.
//!
//! Nothing on the steady-state path allocates: buffers are reused, the
//! verdict/meta/punt vectors retain their capacity across batches, and
//! every table lookup is the inline-key, allocation-free machinery from
//! PR 1 (proved by `tests/no_alloc.rs`).

use std::collections::BTreeMap;

use sda_lisp::{CacheOutcome, MapCache};
use sda_policy::{
    AclVnView, Action, CompiledAcl, ConnectivityMatrix, EnforcementPoint, RuleSubset,
};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, Ipv4Prefix, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

use crate::buffer::{PacketBuf, HEADROOM};
use crate::encap::{self, EncapParams, InnerProto, OuterChecksum, UNDERLAY_OVERHEAD};
use crate::vrf::{LocalEndpoint, VrfTable};

/// Static switch parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// This switch's underlay locator (outer source of encapsulations).
    pub rloc: Rloc,
    /// The fabric's default-route target (the border, §3.2.2). Egress
    /// re-forwards for unknown destinations always fall back to it when
    /// set (the §5.2 reboot recovery); ingress-side misses additionally
    /// honour [`SwitchConfig::miss_default_route`]. `None` means this
    /// switch *is* the last resort (a border) — misses then try the
    /// external table and otherwise drop as [`DropReason::NoRoute`].
    pub border: Option<Rloc>,
    /// Forward ingress-side map-cache misses to `border` while the
    /// punted Map-Request resolves (§3.2.2's default route). `false` is
    /// the ablation that loses the first packets of a flow instead.
    pub miss_default_route: bool,
    /// Matrix default for group pairs without an explicit rule.
    pub default_action: Action,
    /// Where group policy is enforced (§5.3). With [`EnforcementPoint::
    /// Ingress`], remote destinations are checked before transit against
    /// the [`SharedTables`] destination-group hints and the `A` bit is
    /// stamped; egress then trusts the bit and never re-checks. Local
    /// (same-switch) delivery always enforces.
    pub enforcement: EnforcementPoint,
    /// Outer TTL on encapsulation — the fabric hop budget (§5.2).
    pub hop_budget: u8,
    /// Outer UDP checksum policy (RFC 6935-style, see
    /// [`OuterChecksum`]). One explicit knob for the engine *and* the
    /// simulator nodes built on it — the checksum divergence the
    /// differential oracle flushed out.
    pub outer_checksum: OuterChecksum,
}

impl SwitchConfig {
    /// SDA defaults: deny-by-default egress enforcement, hop budget 8,
    /// zero outer checksum, default route on miss (once `border` is
    /// set).
    pub fn new(rloc: Rloc) -> Self {
        SwitchConfig {
            rloc,
            border: None,
            miss_default_route: true,
            default_action: Action::Deny,
            enforcement: EnforcementPoint::Egress,
            hop_budget: 8,
            outer_checksum: OuterChecksum::Zero,
        }
    }
}

/// Why a packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// A header failed validation (truncated, bad checksum, bad flags).
    Malformed,
    /// Parsable but not a format this engine forwards (ARP, IPv6, …).
    Unsupported,
    /// The sender is not an onboarded endpoint of this switch (or its
    /// inner source address does not match its binding — spoofing).
    UnknownSource,
    /// Group ACL verdict was deny.
    Policy,
    /// Map-cache miss with no border default route configured.
    NoRoute,
    /// Underlay packet addressed to a different RLOC.
    NotOurs,
    /// Hop budget exhausted while re-forwarding (§5.2 loop protection).
    TtlExpired,
}

/// Per-packet outcome of a processing call. `Forward`/`Deliver` mean the
/// buffer now holds the rewritten packet, ready to transmit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Encapsulated underlay packet toward this fabric router.
    Forward {
        /// Next-hop RLOC (outer destination).
        to: Rloc,
    },
    /// Decapsulated Ethernet frame for the endpoint on this port.
    Deliver {
        /// Output port.
        port: PortId,
    },
    /// Handed off to an external network (Internet/DC) matched in the
    /// [`SharedTables`] external-prefix table — a border's exit path.
    DeliverExternal,
    /// Dropped; the buffer contents are unspecified.
    Drop(DropReason),
}

/// Work punted to the control plane by the data path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Punt {
    /// Send a Map-Request for `eid` in `vn`. `refresh` is true when a
    /// stale (SMR'd) entry is still forwarding and needs re-resolution
    /// (Fig. 6), false on a plain miss.
    MapRequest {
        /// VN scope.
        vn: VnId,
        /// Unresolved destination.
        eid: Eid,
        /// Stale-entry refresh (true) vs. cold miss (false).
        refresh: bool,
    },
    /// Send a data-triggered SMR to the ingress edge `to`: it delivered
    /// traffic for an endpoint that is no longer attached here (Fig. 6
    /// step 2).
    Smr {
        /// The stale ingress edge (outer source of the packet).
        to: Rloc,
        /// VN scope.
        vn: VnId,
        /// The moved endpoint.
        eid: Eid,
    },
}

/// Forwarding counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SwitchStats {
    /// Processing calls.
    pub batches: u64,
    /// Packets handed to the engine.
    pub rx: u64,
    /// Encapsulated toward a resolved RLOC.
    pub forwarded: u64,
    /// Encapsulated toward the border default route.
    pub forwarded_default: u64,
    /// Delivered to a local port.
    pub delivered: u64,
    /// Handed off to an external network (border exit).
    pub delivered_external: u64,
    /// Dropped (all reasons).
    pub dropped: u64,
    /// Punts raised toward the control plane.
    pub punted: u64,
}

impl SwitchStats {
    /// Adds another counter set into this one (the [`crate::MtSwitch`]
    /// aggregation across workers).
    pub fn merge(&mut self, other: &SwitchStats) {
        self.batches += other.batches;
        self.rx += other.rx;
        self.forwarded += other.forwarded;
        self.forwarded_default += other.forwarded_default;
        self.delivered += other.delivered;
        self.delivered_external += other.delivered_external;
        self.dropped += other.dropped;
        self.punted += other.punted;
    }
}

/// Per-packet scratch state between the classify and resolve phases.
#[derive(Clone, Copy)]
enum IngressMeta {
    /// Verdict already final.
    Done,
    /// Needs a map-cache resolution.
    Resolve {
        vn: VnId,
        src_group: GroupId,
        dst: Eid,
        ecmp_port: u16,
        /// The buffer holds a full Ethernet frame to encapsulate whole
        /// (an L2 flow, §3.5) rather than a bare IPv4 packet.
        l2: bool,
    },
}

/// The read-mostly half of the engine: the three tables of Fig. 4 —
/// per-VRF local endpoint tries ([`VrfTable`]), the on-demand overlay
/// FIB ([`MapCache`]) and the compiled group ACL ([`CompiledAcl`]).
///
/// Everything the per-packet pipeline touches goes through `&self`: VRF
/// and ACL lookups are plain shared reads, map-cache resolution rides
/// [`MapCache::lookup_batch_shared`] (entry metadata refreshes through
/// the `CacheEntry` atomics — see that type's memory-ordering contract),
/// and ACL enforcement goes through the counting
/// [`CompiledAcl::enforce`] / per-run [`AclVnView`] — the allow/drop
/// totals live in `Relaxed` shared atomics (the same per-entry-metadata
/// discipline), so enforcing on a published snapshot and reading the
/// counters from the working copy see one coherent Fig. 12 total.
/// Mutation — onboarding, Map-Replies, purges, compaction — takes
/// `&mut self` and belongs to the table owner: the single-threaded
/// [`Switch`] mutates in place, the multi-core [`crate::MtSwitch`]
/// mutates a working copy and publishes clones (clone-and-swap; `Clone`
/// exists for exactly that — and the ACL's `Arc`-shared rows make that
/// clone O(#VNs) pointer copies, not a rule-map deep copy).
#[derive(Default, Clone)]
pub struct SharedTables {
    vrf: VrfTable,
    cache: MapCache,
    acl: CompiledAcl,
    /// External prefixes (Internet/DC) reachable through this switch —
    /// populated on borders only; consulted after a map-cache miss when
    /// no default route applies.
    externals: Vec<Ipv4Prefix>,
    /// Destination-group hints for §5.3 ingress enforcement: `(vn, eid)
    /// → group` as distributed by the controller's oracle. Unused (and
    /// empty) under egress enforcement.
    dst_hints: BTreeMap<(VnId, Eid), GroupId>,
}

impl SharedTables {
    /// Empty tables (ACL compiled around the SDA deny default).
    pub fn new() -> Self {
        SharedTables::default()
    }

    /// Empty tables whose ACL folds `default` into its compiled rows.
    /// Seed this from [`SwitchConfig::default_action`] so steady-state
    /// verdicts stay on the one-load fast path (a mismatched per-call
    /// default stays correct, just slower).
    pub fn with_policy_default(default: Action) -> Self {
        SharedTables {
            acl: CompiledAcl::with_default(default),
            ..SharedTables::default()
        }
    }

    // --- owner (mutating) surface ----------------------------------

    /// Attaches a local endpoint (onboarding step 4).
    pub fn attach(&mut self, vn: VnId, ep: LocalEndpoint) {
        self.vrf.attach(vn, ep);
    }

    /// Detaches the endpoint with `mac`.
    pub fn detach(&mut self, mac: MacAddr) -> Option<(VnId, LocalEndpoint)> {
        self.vrf.detach(mac)
    }

    /// Installs a mapping from a positive Map-Reply.
    pub fn install_mapping(
        &mut self,
        vn: VnId,
        prefix: EidPrefix,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.cache.install(vn, prefix, rloc, ttl, now);
    }

    /// Applies a negative Map-Reply (deletes the covered entry).
    pub fn apply_negative(&mut self, vn: VnId, prefix: EidPrefix) -> bool {
        self.cache.apply_negative(vn, prefix)
    }

    /// Replaces the mapping for `eid` (Map-Notify / refreshed Map-Reply
    /// after SMR — Fig. 5 step 2: the moved endpoint's new location).
    pub fn update_mapping(
        &mut self,
        vn: VnId,
        eid: Eid,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.cache.update_rloc(vn, eid, rloc, ttl, now);
    }

    /// Adds an external route (e.g. `0.0.0.0/0` for the Internet) —
    /// border provisioning.
    pub fn add_external(&mut self, prefix: Ipv4Prefix) {
        self.externals.push(prefix);
    }

    /// Installs a §5.3 destination-group hint for ingress enforcement.
    pub fn install_dst_hint(&mut self, vn: VnId, eid: Eid, group: GroupId) {
        self.dst_hints.insert((vn, eid), group);
    }

    /// Drops every cached mapping through `rloc` (underlay down, §5.1).
    pub fn purge_rloc(&mut self, rloc: Rloc) -> usize {
        self.cache.purge_rloc(rloc)
    }

    /// Drops every cached mapping of `vn` (subscriber resync: the slice
    /// is rebuilt from a fresh snapshot). Returns how many were removed.
    pub fn purge_vn(&mut self, vn: VnId) -> usize {
        self.cache.purge_vn(vn)
    }

    /// Installs (merges) an SXP rule subset.
    pub fn install_rules(&mut self, subset: &RuleSubset) {
        self.acl.install(subset);
    }

    /// Replaces the whole rule table (policy-server rule refresh).
    pub fn replace_rules(&mut self, subset: &RuleSubset) {
        self.acl.replace(subset);
    }

    /// Installs the full connectivity matrix (no SXP subsetting).
    pub fn install_matrix(&mut self, matrix: &ConnectivityMatrix) {
        self.acl.install_matrix(matrix);
    }

    /// Owner maintenance: removes map-cache entries TTL-expired at
    /// `now` or idle longer than `idle_timeout` (see
    /// [`MapCache::evict`]). This is the structural half of expiry
    /// under the shared-read split — the packet path only *filters*
    /// expired entries; removal happens here, on the owner's periodic
    /// sweep. Returns how many entries were removed.
    pub fn evict_expired(&mut self, now: SimTime, idle_timeout: SimDuration) -> usize {
        self.cache.evict(now, idle_timeout)
    }

    /// Pulls newer per-entry metadata (`last_used`, `stale`) from a
    /// published `snapshot` of these tables back into this copy — see
    /// [`MapCache::adopt_metadata`]. The clone-and-swap owner calls
    /// this before an idle-based [`SharedTables::evict_expired`], so
    /// entries kept hot by the workers (who stamp the snapshot, not
    /// the working copy) are not mistaken for idle.
    pub fn adopt_metadata(&mut self, snapshot: &SharedTables) {
        self.cache.adopt_metadata(&snapshot.cache);
    }

    /// Re-lays the forwarding tables' trie arenas (VRF + map-cache) in
    /// DFS preorder so descents walk nearly-sequential memory. Call
    /// once bulk population (onboarding, FIB preload) settles; the
    /// tries also compact themselves under churn via their free-list
    /// threshold.
    pub fn compact(&mut self) {
        self.vrf.compact();
        self.cache.compact();
    }

    // --- shared (read) surface -------------------------------------

    /// Handles a received SMR through the `CacheEntry` atomics: marks
    /// the live covering entry stale *without* mutating the table
    /// structure, so it works on a published snapshot too (an SMR does
    /// not force a clone-and-swap).
    pub fn receive_smr(&self, vn: VnId, eid: Eid, now: SimTime) -> Option<Rloc> {
        self.cache.mark_stale_shared(vn, eid, now)
    }

    /// Aggregated trie-arena diagnostics for the forwarding tables.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        let mut stats = self.vrf.mem_stats();
        stats.merge(&self.cache.mem_stats());
        stats
    }

    /// Current map-cache size (the Fig. 9 FIB metric).
    pub fn fib_len(&self) -> usize {
        self.cache.len()
    }

    /// Whether an external route covers `eid` (IPv4 only — external
    /// networks are L3).
    pub fn external_match(&self, eid: Eid) -> bool {
        match eid {
            Eid::V4(a) => self.externals.iter().any(|p| p.contains(a)),
            _ => false,
        }
    }

    /// The §5.3 destination-group hint for `eid`, if installed.
    pub fn dst_hint(&self, vn: VnId, eid: Eid) -> Option<GroupId> {
        self.dst_hints.get(&(vn, eid)).copied()
    }

    /// The overlay FIB (read access for harnesses).
    pub fn map_cache(&self) -> &MapCache {
        &self.cache
    }

    /// The per-VN local endpoint tables.
    pub fn vrf(&self) -> &VrfTable {
        &self.vrf
    }

    /// The compiled group ACL. Its allow/drop counters are shared
    /// `Relaxed` atomics fed by the packet path; `Policy` drop verdicts
    /// are additionally counted in the per-worker [`SwitchStats`].
    pub fn acl(&self) -> &CompiledAcl {
        &self.acl
    }
}

/// The per-worker half of the engine: everything one forwarding thread
/// mutates per packet, so N workers sharing one [`SharedTables`]
/// snapshot never contend.
///
/// Holds the scratch vectors of the three-phase pipeline (capacities
/// retained across batches — the zero-allocation story), the punt
/// queue, the forwarding counters and the one-entry
/// source-classification memo.
pub struct WorkerCtx {
    /// The switch's own MAC (source of rewritten delivery frames).
    mac: MacAddr,
    /// One-entry source-classification memo: frames arrive in per-host
    /// bursts, so the previous packet's `(mac → vn, endpoint)` binding
    /// usually answers the next one without touching the VRF maps.
    /// Invalidated on any attach/detach.
    src_memo: Option<(MacAddr, VnId, LocalEndpoint)>,
    stats: SwitchStats,
    punts: Vec<Punt>,
    verdicts: Vec<Verdict>,
    meta: Vec<IngressMeta>,
    run_eids: Vec<Eid>,
    run_idx: Vec<usize>,
    run_out: Vec<CacheOutcome>,
}

impl WorkerCtx {
    /// Fresh per-worker state for a switch with `cfg`.
    pub fn new(cfg: &SwitchConfig) -> Self {
        WorkerCtx {
            mac: MacAddr::from_seed(u32::from(cfg.rloc.addr())),
            src_memo: None,
            stats: SwitchStats::default(),
            punts: Vec::new(),
            verdicts: Vec::new(),
            meta: Vec::new(),
            run_eids: Vec::new(),
            run_idx: Vec::new(),
            run_out: Vec::new(),
        }
    }

    /// Forwarding counters accumulated by this worker.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Verdicts of the most recent processing call.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Punts raised and not yet cleared/drained.
    pub fn punts(&self) -> &[Punt] {
        &self.punts
    }

    /// Clears the punt queue (capacity is retained — drain once per
    /// batch and the queue never reallocates).
    pub fn clear_punts(&mut self) {
        self.punts.clear();
    }

    /// Takes the punt queue by swap, leaving an empty one behind.
    pub fn drain_punts(&mut self) -> Vec<Punt> {
        std::mem::take(&mut self.punts)
    }

    /// Drains the punt queue into `out` by swap: `out` is cleared and
    /// receives the queued punts; both vectors keep their capacities,
    /// so a caller cycling one scratch vector never reallocates.
    pub fn drain_punts_into(&mut self, out: &mut Vec<Punt>) {
        out.clear();
        std::mem::swap(&mut self.punts, out);
    }

    /// Takes the last batch's verdicts into `out` by swap (same
    /// capacity-cycling contract as [`WorkerCtx::drain_punts_into`]).
    pub fn drain_verdicts_into(&mut self, out: &mut Vec<Verdict>) {
        out.clear();
        std::mem::swap(&mut self.verdicts, out);
    }

    /// Forgets the source-classification memo (any attach/detach).
    pub fn invalidate_memo(&mut self) {
        self.src_memo = None;
    }

    /// Queues a punt, collapsing consecutive duplicates: a burst of
    /// packets toward one unresolved destination raises one
    /// Map-Request, not one per packet.
    fn punt(&mut self, p: Punt) {
        if self.punts.last() == Some(&p) {
            return;
        }
        self.stats.punted += 1;
        self.punts.push(p);
    }

    /// Folds one verdict into the counters. `default_route` is true only
    /// when the packet actually missed and rode the border default — a
    /// cache *hit* whose RLOC happens to be the border still counts as
    /// `forwarded`.
    fn count(&mut self, v: Verdict, default_route: bool) {
        match v {
            Verdict::Forward { .. } if default_route => self.stats.forwarded_default += 1,
            Verdict::Forward { .. } => self.stats.forwarded += 1,
            Verdict::Deliver { .. } => self.stats.delivered += 1,
            Verdict::DeliverExternal => self.stats.delivered_external += 1,
            Verdict::Drop(_) => self.stats.dropped += 1,
        }
    }
}

/// Processes a burst of host-side Ethernet frames (the ingress
/// pipeline, Fig. 4 left) against shared tables with per-worker state.
/// On return, `ctx.verdicts()[i]` describes what became of `bufs[i]`;
/// `Forward` buffers hold the encapsulated underlay packet, `Deliver`
/// buffers the rewritten local frame.
///
/// Takes the tables by `&` — this is the multi-core hot path: any
/// number of workers may run it concurrently against one snapshot.
pub fn ingress_batch(
    cfg: &SwitchConfig,
    tables: &SharedTables,
    ctx: &mut WorkerCtx,
    bufs: &mut [PacketBuf],
    now: SimTime,
) {
    ctx.stats.batches += 1;
    ctx.stats.rx += bufs.len() as u64;
    ctx.verdicts.clear();
    ctx.meta.clear();

    // Phase 1: parse, classify, local delivery.
    for buf in bufs.iter_mut() {
        let (verdict, meta) = classify_ingress(cfg, tables, ctx, buf);
        if matches!(meta, IngressMeta::Done) {
            ctx.count(verdict, false);
        }
        ctx.verdicts.push(verdict);
        ctx.meta.push(meta);
    }

    // Phase 2 + 3: resolve remote destinations in same-VN runs, then
    // encapsulate in place.
    let mut i = 0;
    while i < ctx.meta.len() {
        let IngressMeta::Resolve { vn: run_vn, .. } = ctx.meta[i] else {
            i += 1;
            continue;
        };
        ctx.run_eids.clear();
        ctx.run_idx.clear();
        let mut j = i;
        while j < ctx.meta.len() {
            match ctx.meta[j] {
                IngressMeta::Done => j += 1,
                IngressMeta::Resolve { vn, dst, .. } if vn == run_vn => {
                    ctx.run_idx.push(j);
                    ctx.run_eids.push(dst);
                    j += 1;
                }
                IngressMeta::Resolve { .. } => break,
            }
        }
        tables
            .cache
            .lookup_batch_shared(run_vn, &ctx.run_eids, now, &mut ctx.run_out);
        // Enforcement is fused into the same per-run pass as the cache
        // resolve: the VN's bitset rows are probed once per run and
        // each packet's verdict is one shift+mask against them.
        let run_acl = tables.acl.vn_view(run_vn);
        for k in 0..ctx.run_idx.len() {
            let idx = ctx.run_idx[k];
            let IngressMeta::Resolve {
                vn,
                src_group,
                dst,
                ecmp_port,
                l2,
            } = ctx.meta[idx]
            else {
                unreachable!("run indices point at Resolve entries");
            };
            ctx.meta[idx] = IngressMeta::Done;
            // A mapping pointing back at this switch is stale sync (the
            // endpoint left but the table hasn't caught up): forwarding
            // to self would loop, so treat it as a miss.
            let outcome = match ctx.run_out[k] {
                CacheOutcome::Hit(r) | CacheOutcome::Stale(r) if r == cfg.rloc => {
                    CacheOutcome::Miss
                }
                o => o,
            };
            // §5.3 ingress enforcement: check before spending transit
            // bandwidth when the destination group is known here. Stale
            // entries defer to egress (the move may have changed the
            // binding) — exactly the simulator's historical rule, now
            // asserted by the differential oracle.
            let mut policy_applied = false;
            if matches!(cfg.enforcement, EnforcementPoint::Ingress)
                && !matches!(outcome, CacheOutcome::Stale(_))
            {
                if let Some(dst_group) = tables.dst_hint(vn, dst) {
                    if run_acl.enforce(src_group, dst_group, cfg.default_action) == Action::Deny {
                        let verdict = Verdict::Drop(DropReason::Policy);
                        ctx.count(verdict, false);
                        ctx.verdicts[idx] = verdict;
                        continue;
                    }
                    policy_applied = true;
                }
            }
            let default_route = matches!(outcome, CacheOutcome::Miss);
            let verdict = match outcome {
                CacheOutcome::Hit(rloc) => {
                    encap_in_place(
                        cfg,
                        &mut bufs[idx],
                        vn,
                        src_group,
                        rloc,
                        ecmp_port,
                        cfg.hop_budget,
                        policy_applied,
                        l2,
                    );
                    Verdict::Forward { to: rloc }
                }
                CacheOutcome::Stale(rloc) => {
                    // Forward on the stale entry (Fig. 6) and ask the
                    // control plane to re-resolve.
                    ctx.punt(Punt::MapRequest {
                        vn,
                        eid: dst,
                        refresh: true,
                    });
                    encap_in_place(
                        cfg,
                        &mut bufs[idx],
                        vn,
                        src_group,
                        rloc,
                        ecmp_port,
                        cfg.hop_budget,
                        policy_applied,
                        l2,
                    );
                    Verdict::Forward { to: rloc }
                }
                CacheOutcome::Miss => {
                    ctx.punt(Punt::MapRequest {
                        vn,
                        eid: dst,
                        refresh: false,
                    });
                    match cfg.border.filter(|_| cfg.miss_default_route) {
                        Some(border) => {
                            encap_in_place(
                                cfg,
                                &mut bufs[idx],
                                vn,
                                src_group,
                                border,
                                ecmp_port,
                                cfg.hop_budget,
                                policy_applied,
                                l2,
                            );
                            Verdict::Forward { to: border }
                        }
                        None if tables.external_match(dst) => Verdict::DeliverExternal,
                        None => Verdict::Drop(DropReason::NoRoute),
                    }
                }
            };
            ctx.count(verdict, default_route);
            ctx.verdicts[idx] = verdict;
        }
        i = j;
    }
}

/// Processes a burst of underlay packets arriving from the fabric (the
/// egress pipeline, Fig. 4 right): validate, enforce, decap in place
/// and deliver — or re-forward toward a moved endpoint's new location.
/// Shared-read like [`ingress_batch`].
pub fn egress_batch(
    cfg: &SwitchConfig,
    tables: &SharedTables,
    ctx: &mut WorkerCtx,
    bufs: &mut [PacketBuf],
    now: SimTime,
) {
    ctx.stats.batches += 1;
    ctx.stats.rx += bufs.len() as u64;
    ctx.verdicts.clear();
    // One-entry ACL memo: fabric bursts arrive in same-VN runs, so the
    // previous packet's per-VN bitset view usually answers the next one
    // without re-probing the VN table — the egress half of the fused
    // lookup+enforce pass.
    let mut acl_memo: Option<(VnId, AclVnView<'_>)> = None;
    for buf in bufs.iter_mut() {
        let (v, default_route) = egress_one(cfg, tables, ctx, buf, now, &mut acl_memo);
        ctx.count(v, default_route);
        ctx.verdicts.push(v);
    }
}

/// Phase-1 work for one ingress frame.
fn classify_ingress(
    cfg: &SwitchConfig,
    tables: &SharedTables,
    ctx: &mut WorkerCtx,
    buf: &mut PacketBuf,
) -> (Verdict, IngressMeta) {
    let done = |v: Verdict| (v, IngressMeta::Done);
    let Ok(frame) = ethernet::Frame::new_checked(buf.bytes()) else {
        return done(Verdict::Drop(DropReason::Malformed));
    };
    let src_mac = frame.src_addr();
    let (vn, src_ep) = match ctx.src_memo {
        Some((mac, vn, ep)) if mac == src_mac => (vn, ep),
        _ => {
            let Some((vn, ep)) = tables.vrf.classify(src_mac).map(|(v, e)| (v, *e)) else {
                return done(Verdict::Drop(DropReason::UnknownSource));
            };
            ctx.src_memo = Some((src_mac, vn, ep));
            (vn, ep)
        }
    };
    if frame.ethertype() != EtherType::Ipv4 {
        // Non-IP traffic is an L2 flow (§3.5): the destination MAC is
        // the EID and the whole frame is the overlay payload. Broadcast
        // destinations are not forwardable — the L2 gateway absorbs
        // broadcasts in the control plane (ARP conversion), so only
        // unicast MACs reach the fabric.
        let dst_mac = frame.dst_addr();
        if dst_mac == MacAddr::BROADCAST {
            return done(Verdict::Drop(DropReason::Unsupported));
        }
        let dst = Eid::Mac(dst_mac);
        if let Some(dst_ep) = tables.vrf.lookup(vn, dst).copied() {
            if tables
                .acl
                .enforce(vn, src_ep.group, dst_ep.group, cfg.default_action)
                == Action::Deny
            {
                return done(Verdict::Drop(DropReason::Policy));
            }
            // Same-switch L2 delivery: the frame already carries the
            // destination MAC; hand it to the owning port as-is.
            return done(Verdict::Deliver { port: dst_ep.port });
        }
        let ecmp_port = encap::ecmp_src_port(encap::flow_hash_mac(src_mac, dst_mac));
        return (
            // Placeholder; phase 2 overwrites it.
            Verdict::Drop(DropReason::NoRoute),
            IngressMeta::Resolve {
                vn,
                src_group: src_ep.group,
                dst,
                ecmp_port,
                l2: true,
            },
        );
    }
    let Ok(ip) = ipv4::Packet::new_checked(frame.payload()) else {
        return done(Verdict::Drop(DropReason::Malformed));
    };
    if ip.src_addr() != src_ep.ipv4 {
        // IP source guard: the inner source must match the onboarded
        // binding (anti-spoofing, §3.2.1's authenticated identity).
        return done(Verdict::Drop(DropReason::UnknownSource));
    }
    let dst = Eid::V4(ip.dst_addr());
    let ecmp_port = encap::ecmp_src_port(encap::flow_hash(
        u32::from(ip.src_addr()),
        u32::from(ip.dst_addr()),
    ));
    let inner_len = usize::from(ip.total_len());

    if let Some(dst_ep) = tables.vrf.lookup(vn, dst).copied() {
        // Same-edge delivery: the egress stages run locally, ACL
        // included (counting enforce — the shared atomics take the
        // allow/deny tally, the stats record the Policy drop verdict).
        if tables
            .acl
            .enforce(vn, src_ep.group, dst_ep.group, cfg.default_action)
            == Action::Deny
        {
            return done(Verdict::Drop(DropReason::Policy));
        }
        // Drop link padding so a locally delivered frame has the
        // same length a fabric-traversing copy would.
        buf.truncate(ethernet::HEADER_LEN + inner_len);
        let mut eth = ethernet::Frame::new_unchecked(buf.bytes_mut());
        eth.set_dst_addr(dst_ep.mac);
        eth.set_src_addr(ctx.mac);
        return done(Verdict::Deliver { port: dst_ep.port });
    }

    // Remote: strip the L2 header and any link padding now so the
    // resolve phase only has to prepend underlay headers.
    buf.shrink_front(ethernet::HEADER_LEN);
    buf.truncate(inner_len);
    (
        // Placeholder; phase 2 overwrites it.
        Verdict::Drop(DropReason::NoRoute),
        IngressMeta::Resolve {
            vn,
            src_group: src_ep.group,
            dst,
            ecmp_port,
            l2: false,
        },
    )
}

/// Prepends the underlay headers around the inner packet already in
/// `buf` (zero-copy encapsulation).
#[allow(clippy::too_many_arguments)]
fn encap_in_place(
    cfg: &SwitchConfig,
    buf: &mut PacketBuf,
    vn: VnId,
    group: GroupId,
    to: Rloc,
    ecmp_port: u16,
    ttl: u8,
    policy_applied: bool,
    l2: bool,
) {
    let grown = buf.grow_front(UNDERLAY_OVERHEAD);
    debug_assert!(grown, "load() guarantees {HEADROOM} bytes of headroom");
    let params = EncapParams {
        outer_src: cfg.rloc,
        outer_dst: to,
        vn,
        group,
        policy_applied,
        ttl,
        src_port: ecmp_port,
        udp_checksum: cfg.outer_checksum,
        inner_proto: if l2 {
            InnerProto::Ethernet
        } else {
            InnerProto::Ipv4
        },
    };
    encap::write_underlay(buf.bytes_mut(), &params).expect("headroom covers the underlay overhead");
}

/// Full egress treatment of one underlay packet. The second return is
/// true when the packet missed the cache and rode the border default
/// route (the caller's `forwarded_default` accounting).
fn egress_one<'t>(
    cfg: &SwitchConfig,
    tables: &'t SharedTables,
    ctx: &mut WorkerCtx,
    buf: &mut PacketBuf,
    now: SimTime,
    acl_memo: &mut Option<(VnId, AclVnView<'t>)>,
) -> (Verdict, bool) {
    let done = |v: Verdict| (v, false);
    let d = match encap::parse_underlay(buf.bytes()) {
        Ok(d) => d,
        Err(_) => return done(Verdict::Drop(DropReason::Malformed)),
    };
    if d.outer_dst != cfg.rloc {
        return done(Verdict::Drop(DropReason::NotOurs));
    }
    let Some(src_group) = d.group else {
        // The fabric always stamps the source group; its absence
        // means a foreign encapsulator.
        return done(Verdict::Drop(DropReason::Malformed));
    };
    // The inner payload names the destination EID: the IPv4 address for
    // L3 flows, the frame's destination MAC for L2 flows (§3.5).
    let (dst, l2, ecmp_port) = match d.inner_proto {
        InnerProto::Ipv4 => {
            let Ok(inner_ip) = ipv4::Packet::new_checked(d.inner) else {
                return done(Verdict::Drop(DropReason::Malformed));
            };
            let ecmp = encap::ecmp_src_port(encap::flow_hash(
                u32::from(inner_ip.src_addr()),
                u32::from(inner_ip.dst_addr()),
            ));
            (Eid::V4(inner_ip.dst_addr()), false, ecmp)
        }
        InnerProto::Ethernet => {
            let Ok(inner_eth) = ethernet::Frame::new_checked(d.inner) else {
                return done(Verdict::Drop(DropReason::Malformed));
            };
            let ecmp = encap::ecmp_src_port(encap::flow_hash_mac(
                inner_eth.src_addr(),
                inner_eth.dst_addr(),
            ));
            (Eid::Mac(inner_eth.dst_addr()), true, ecmp)
        }
    };
    let inner_offset = d.inner_offset;
    let inner_len = d.inner.len();
    let vn = d.vn;
    let policy_applied = d.policy_applied;
    let outer_src = d.outer_src;
    let outer_ttl = d.outer_ttl;

    if let Some(dst_ep) = tables.vrf.lookup(vn, dst).copied() {
        // Egress-point enforcement; under §5.3 ingress enforcement the
        // check happened (or was deliberately skipped) before transit.
        if matches!(cfg.enforcement, EnforcementPoint::Egress) && !policy_applied {
            let view = match acl_memo {
                Some((memo_vn, view)) if *memo_vn == vn => *view,
                _ => {
                    let view = tables.acl.vn_view(vn);
                    *acl_memo = Some((vn, view));
                    view
                }
            };
            if view.enforce(src_group, dst_ep.group, cfg.default_action) == Action::Deny {
                return done(Verdict::Drop(DropReason::Policy));
            }
        }
        // In-place decap: strip the underlay, then (for L3) dress the
        // inner packet in a delivery Ethernet header — an L2 inner
        // already is one.
        buf.shrink_front(inner_offset);
        buf.truncate(inner_len);
        if !l2 {
            buf.grow_front(ethernet::HEADER_LEN);
            let mut eth = ethernet::Frame::new_unchecked(buf.bytes_mut());
            eth.set_dst_addr(dst_ep.mac);
            eth.set_src_addr(ctx.mac);
            eth.set_ethertype(EtherType::Ipv4);
        }
        return done(Verdict::Deliver { port: dst_ep.port });
    }

    // Not attached here (mobility / stale routing): tell the ingress
    // edge via SMR and, when our own cache knows the new location,
    // forward the in-flight packet there (Fig. 6).
    ctx.punt(Punt::Smr {
        to: outer_src,
        vn,
        eid: dst,
    });
    // A mapping pointing at this very switch contradicts the VRF miss
    // (the endpoint left, the table lags): self-forwarding would loop,
    // so treat it as a miss and fall back like a rebooted edge (§5.2).
    let outcome = match tables.cache.lookup_shared(vn, dst, now) {
        CacheOutcome::Hit(r) | CacheOutcome::Stale(r) if r == cfg.rloc => CacheOutcome::Miss,
        o => o,
    };
    let (next_hop, default_route) = match outcome {
        CacheOutcome::Hit(rloc) | CacheOutcome::Stale(rloc) => (rloc, false),
        CacheOutcome::Miss => {
            ctx.punt(Punt::MapRequest {
                vn,
                eid: dst,
                refresh: false,
            });
            match cfg.border {
                // Unknown here entirely (e.g. freshly rebooted, §5.2):
                // fall back to the border default route.
                Some(border) => (border, true),
                None if tables.external_match(dst) => return done(Verdict::DeliverExternal),
                None => return done(Verdict::Drop(DropReason::NoRoute)),
            }
        }
    };
    // Real-router TTL semantics: decrement, and never emit a zero —
    // the hop budget damping transient loops (§5.2).
    let Some(ttl) = outer_ttl.checked_sub(1).filter(|t| *t > 0) else {
        return done(Verdict::Drop(DropReason::TtlExpired));
    };
    buf.shrink_front(inner_offset);
    buf.truncate(inner_len);
    // Keep the A bit: an already-enforced packet must not be
    // re-enforced (and double-counted) at the next edge.
    encap_in_place(
        cfg,
        buf,
        vn,
        src_group,
        next_hop,
        ecmp_port,
        ttl,
        policy_applied,
        l2,
    );
    (Verdict::Forward { to: next_hop }, default_route)
}

/// The batched zero-copy forwarding engine of one edge switch —
/// the single-threaded composition of [`SharedTables`] (which it owns
/// and mutates in place) and one [`WorkerCtx`]. The multi-core
/// deployment of the same pipeline is [`crate::MtSwitch`].
pub struct Switch {
    cfg: SwitchConfig,
    tables: SharedTables,
    ctx: WorkerCtx,
}

impl Switch {
    /// Builds an empty switch.
    pub fn new(cfg: SwitchConfig) -> Self {
        Switch {
            tables: SharedTables::with_policy_default(cfg.default_action),
            ctx: WorkerCtx::new(&cfg),
            cfg,
        }
    }

    // --- control-plane surface -------------------------------------

    /// Attaches a local endpoint (onboarding step 4).
    pub fn attach(&mut self, vn: VnId, ep: LocalEndpoint) {
        self.ctx.invalidate_memo();
        self.tables.attach(vn, ep);
    }

    /// Detaches the endpoint with `mac`.
    pub fn detach(&mut self, mac: MacAddr) -> Option<(VnId, LocalEndpoint)> {
        self.ctx.invalidate_memo();
        self.tables.detach(mac)
    }

    /// Installs a mapping from a positive Map-Reply.
    pub fn install_mapping(
        &mut self,
        vn: VnId,
        prefix: EidPrefix,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.tables.install_mapping(vn, prefix, rloc, ttl, now);
    }

    /// Applies a negative Map-Reply (deletes the covered entry).
    pub fn apply_negative(&mut self, vn: VnId, prefix: EidPrefix) -> bool {
        self.tables.apply_negative(vn, prefix)
    }

    /// Replaces the mapping for `eid` (Map-Notify, Fig. 5 step 2).
    pub fn update_mapping(
        &mut self,
        vn: VnId,
        eid: Eid,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        self.tables.update_mapping(vn, eid, rloc, ttl, now);
    }

    /// Adds an external route (border provisioning).
    pub fn add_external(&mut self, prefix: Ipv4Prefix) {
        self.tables.add_external(prefix);
    }

    /// Installs a §5.3 destination-group hint for ingress enforcement.
    pub fn install_dst_hint(&mut self, vn: VnId, eid: Eid, group: GroupId) {
        self.tables.install_dst_hint(vn, eid, group);
    }

    /// Replaces the whole rule table (policy-server rule refresh).
    pub fn replace_rules(&mut self, subset: &RuleSubset) {
        self.tables.replace_rules(subset);
    }

    /// Handles a received SMR: marks the live covering entry stale *in
    /// place* through the `CacheEntry` atomics; the next packet toward
    /// it forwards and punts a refresh.
    pub fn receive_smr(&mut self, vn: VnId, eid: Eid, now: SimTime) -> Option<Rloc> {
        self.tables.receive_smr(vn, eid, now)
    }

    /// Drops every cached mapping through `rloc` (underlay down, §5.1).
    pub fn purge_rloc(&mut self, rloc: Rloc) -> usize {
        self.tables.purge_rloc(rloc)
    }

    /// Drops every cached mapping of `vn` (subscriber resync).
    pub fn purge_vn(&mut self, vn: VnId) -> usize {
        self.tables.purge_vn(vn)
    }

    /// Installs (merges) an SXP rule subset.
    pub fn install_rules(&mut self, subset: &RuleSubset) {
        self.tables.install_rules(subset);
    }

    /// Installs the full connectivity matrix (no SXP subsetting).
    pub fn install_matrix(&mut self, matrix: &ConnectivityMatrix) {
        self.tables.install_matrix(matrix);
    }

    /// Owner maintenance sweep: removes map-cache entries TTL-expired
    /// at `now` or idle longer than `idle_timeout`. The data path only
    /// *filters* expired entries (shared lookups never mutate the
    /// structure); call this periodically — the §4.2 slow decay — to
    /// actually reclaim them and keep [`Switch::fib_len`] honest.
    /// Returns how many entries were removed.
    pub fn evict_expired(&mut self, now: SimTime, idle_timeout: SimDuration) -> usize {
        self.tables.evict_expired(now, idle_timeout)
    }

    /// Re-lays the forwarding tables' trie arenas (VRF + map-cache) in
    /// DFS preorder so descents walk nearly-sequential memory. Call
    /// once bulk population (onboarding, FIB preload) settles.
    pub fn compact_tables(&mut self) {
        self.tables.compact();
    }

    /// Aggregated trie-arena diagnostics for the forwarding tables.
    pub fn table_mem_stats(&self) -> sda_trie::MemStats {
        self.tables.mem_stats()
    }

    /// Static configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Forwarding counters.
    pub fn stats(&self) -> SwitchStats {
        self.ctx.stats()
    }

    /// Current map-cache size (the Fig. 9 FIB metric).
    pub fn fib_len(&self) -> usize {
        self.tables.fib_len()
    }

    /// The overlay FIB (read access for harnesses).
    pub fn map_cache(&self) -> &MapCache {
        self.tables.map_cache()
    }

    /// The compiled group ACL (its shared counters carry the
    /// allow/deny tally; `Policy` drops also count in
    /// [`Switch::stats`] under `dropped`).
    pub fn acl(&self) -> &CompiledAcl {
        self.tables.acl()
    }

    /// The forwarding tables (read access; e.g. to seed an
    /// [`crate::MtSwitch`] or publish a snapshot).
    pub fn tables(&self) -> &SharedTables {
        &self.tables
    }

    /// Punts raised since the last [`Switch::clear_punts`] /
    /// [`Switch::drain_punts`].
    pub fn punts(&self) -> &[Punt] {
        self.ctx.punts()
    }

    /// Clears the punt queue (capacity is retained — drain once per
    /// batch and the queue never reallocates).
    pub fn clear_punts(&mut self) {
        self.ctx.clear_punts();
    }

    /// Takes the accumulated punts by swap, leaving an empty queue:
    /// the one-call replacement for the `punts()` + `clear_punts()`
    /// pair (no slice clone, no double borrow).
    pub fn drain_punts(&mut self) -> Vec<Punt> {
        self.ctx.drain_punts()
    }

    /// Like [`Switch::drain_punts`], but swaps into a caller-provided
    /// vector so a cycled scratch vector never reallocates.
    pub fn drain_punts_into(&mut self, out: &mut Vec<Punt>) {
        self.ctx.drain_punts_into(out);
    }

    // --- data path -------------------------------------------------

    /// Processes a burst of host-side Ethernet frames (the ingress
    /// pipeline, Fig. 4 left). On return, `verdicts()[i]` describes what
    /// became of `bufs[i]`; `Forward` buffers hold the encapsulated
    /// underlay packet, `Deliver` buffers the rewritten local frame.
    pub fn process_ingress(&mut self, bufs: &mut [PacketBuf], now: SimTime) -> &[Verdict] {
        ingress_batch(&self.cfg, &self.tables, &mut self.ctx, bufs, now);
        self.ctx.verdicts()
    }

    /// Processes a burst of underlay packets arriving from the fabric
    /// (the egress pipeline, Fig. 4 right): validate, enforce, decap in
    /// place and deliver — or re-forward toward a moved endpoint's new
    /// location.
    pub fn process_egress(&mut self, bufs: &mut [PacketBuf], now: SimTime) -> &[Verdict] {
        egress_batch(&self.cfg, &self.tables, &mut self.ctx, bufs, now);
        self.ctx.verdicts()
    }

    /// Verdicts of the most recent processing call.
    pub fn verdicts(&self) -> &[Verdict] {
        self.ctx.verdicts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use sda_wire::udp;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn ep(seed: u32, group: u16) -> LocalEndpoint {
        LocalEndpoint {
            port: PortId(seed as u16),
            group: GroupId(group),
            mac: MacAddr::from_seed(seed),
            ipv4: Ipv4Addr::new(10, 0, (seed >> 8) as u8, seed as u8),
        }
    }

    /// A host-side Ethernet + IPv4 frame from `src` toward `dst_ip`.
    fn frame(src: &LocalEndpoint, dst_ip: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let inner = ipv4::Repr {
            src: src.ipv4,
            dst: dst_ip,
            protocol: ipv4::Protocol::Unknown(253),
            payload_len: payload.len(),
            ttl: 64,
        };
        let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
        ethernet::Repr {
            dst: MacAddr::BROADCAST,
            src: src.mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
        {
            let mut ip = ipv4::Packet::new_unchecked(&mut buf[ethernet::HEADER_LEN..]);
            inner.emit(&mut ip);
            ip.payload_mut().copy_from_slice(payload);
        }
        buf
    }

    fn switch_with_border(idx: u16) -> Switch {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(idx));
        cfg.border = Some(Rloc::for_router_index(99));
        Switch::new(cfg)
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn local_delivery_enforces_policy() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        let b = ep(2, 20);
        sw.attach(vn(1), a);
        sw.attach(vn(1), b);
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(10), GroupId(20), Action::Allow);
        sw.install_matrix(&m);

        let mut pool = BufferPool::with_capacity(2);
        let mut bufs = [pool.alloc(), pool.alloc()];
        bufs[0].load(&frame(&a, b.ipv4, b"allowed"));
        bufs[1].load(&frame(&b, a.ipv4, b"denied back"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Deliver { port: b.port });
        assert_eq!(v[1], Verdict::Drop(DropReason::Policy));
        // The delivered frame was re-addressed to the destination MAC.
        let eth = ethernet::Frame::new_checked(bufs[0].bytes()).unwrap();
        assert_eq!(eth.dst_addr(), b.mac);
        assert_eq!(sw.stats().delivered, 1);
        assert_eq!(sw.stats().dropped, 1);
    }

    #[test]
    fn remote_hit_encapsulates_in_place() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let remote_ip = Ipv4Addr::new(10, 9, 0, 5);
        let remote_rloc = Rloc::for_router_index(7);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(remote_ip)),
            remote_rloc,
            TTL,
            SimTime::ZERO,
        );

        let mut buf = PacketBuf::new();
        buf.load(&frame(&a, remote_ip, b"hello fabric"));
        let mut bufs = [buf];
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Forward { to: remote_rloc });
        assert!(sw.punts().is_empty());

        // The buffer now holds a fully valid underlay packet.
        let d = encap::parse_underlay(bufs[0].bytes()).unwrap();
        assert_eq!(d.outer_src, sw.config().rloc);
        assert_eq!(d.outer_dst, remote_rloc);
        assert_eq!(d.vn, vn(1));
        assert_eq!(d.group, Some(GroupId(10)));
        let inner = ipv4::Packet::new_checked(d.inner).unwrap();
        assert_eq!(inner.dst_addr(), remote_ip);
        assert_eq!(inner.payload(), b"hello fabric");
        // ECMP entropy landed in the VXLAN source-port range.
        let dgram = udp::Packet::new_checked(&bufs[0].bytes()[ipv4::HEADER_LEN..]).unwrap();
        assert!(dgram.src_port() >= 49152);
    }

    #[test]
    fn miss_rides_default_route_and_punts() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let unknown = Ipv4Addr::new(10, 9, 9, 9);
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, unknown, b"where are you"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(99)
            }
        );
        assert_eq!(
            sw.punts(),
            &[Punt::MapRequest {
                vn: vn(1),
                eid: Eid::V4(unknown),
                refresh: false
            }]
        );
        assert_eq!(sw.stats().forwarded_default, 1);

        // Without a border, the miss drops (after punting).
        let mut lone = Switch::new(SwitchConfig::new(Rloc::for_router_index(2)));
        lone.attach(vn(1), a);
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, unknown, b"x"));
        let v = lone.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::NoRoute));
        assert_eq!(lone.punts().len(), 1);
    }

    #[test]
    fn smr_marks_stale_then_forwards_and_punts_refresh() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let remote_ip = Ipv4Addr::new(10, 9, 0, 5);
        let old_rloc = Rloc::for_router_index(7);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(remote_ip)),
            old_rloc,
            TTL,
            SimTime::ZERO,
        );
        assert_eq!(
            sw.receive_smr(vn(1), Eid::V4(remote_ip), SimTime::ZERO),
            Some(old_rloc)
        );

        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, remote_ip, b"mid-flight"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        // Stale entries keep forwarding to the old RLOC (Fig. 6)…
        assert_eq!(v[0], Verdict::Forward { to: old_rloc });
        // …while the control plane is asked to re-resolve.
        assert_eq!(
            sw.punts(),
            &[Punt::MapRequest {
                vn: vn(1),
                eid: Eid::V4(remote_ip),
                refresh: true
            }]
        );
    }

    #[test]
    fn ingress_garbage_and_spoofing_drop() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);

        let mut bufs = [
            PacketBuf::new(),
            PacketBuf::new(),
            PacketBuf::new(),
            PacketBuf::new(),
        ];
        bufs[0].load(b"short");
        // Unknown source MAC.
        bufs[1].load(&frame(&ep(66, 1), a.ipv4, b"who am i"));
        // Spoofed inner source: frame from a's MAC but the wrong IP.
        let mut spoof = a;
        spoof.ipv4 = Ipv4Addr::new(10, 3, 3, 3);
        bufs[2].load(&frame(&spoof, a.ipv4, b"spoof"));
        // Non-IPv4 ethertype.
        let mut arp = frame(&a, a.ipv4, b"");
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        bufs[3].load(&arp);

        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::Malformed));
        assert_eq!(v[1], Verdict::Drop(DropReason::UnknownSource));
        assert_eq!(v[2], Verdict::Drop(DropReason::UnknownSource));
        assert_eq!(v[3], Verdict::Drop(DropReason::Unsupported));
    }

    /// Full fabric round trip: ingress on switch A produces bytes that
    /// egress on switch B delivers to the right port with policy applied.
    #[test]
    fn ingress_to_egress_roundtrip() {
        let mut a_sw = switch_with_border(1);
        let mut b_sw = switch_with_border(2);
        let src = ep(1, 10);
        let dst = ep(2, 20);
        a_sw.attach(vn(1), src);
        b_sw.attach(vn(1), dst);
        a_sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst.ipv4)),
            b_sw.config().rloc,
            TTL,
            SimTime::ZERO,
        );
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(10), GroupId(20), Action::Allow);
        b_sw.install_matrix(&m);

        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&src, dst.ipv4, b"end to end"));
        let v = a_sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: b_sw.config().rloc
            }
        );

        // "Transmit" to B: load the encapsulated bytes into a fresh buf.
        let wire: Vec<u8> = bufs[0].bytes().to_vec();
        let mut rx = [PacketBuf::new()];
        rx[0].load(&wire);
        let v = b_sw.process_egress(&mut rx, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Deliver { port: dst.port });
        let eth = ethernet::Frame::new_checked(rx[0].bytes()).unwrap();
        assert_eq!(eth.dst_addr(), dst.mac);
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.src_addr(), src.ipv4);
        assert_eq!(ip.payload(), b"end to end");
    }

    #[test]
    fn egress_policy_and_ownership_checks() {
        let mut sw = switch_with_border(2);
        let dst = ep(2, 20);
        sw.attach(vn(1), dst);

        // Build a valid underlay packet toward this switch from group 66
        // (no rule → default deny).
        let inner = frame(&ep(1, 66), dst.ipv4, b"denied");
        let inner_ip = &inner[ethernet::HEADER_LEN..];
        let mut wire = vec![0u8; UNDERLAY_OVERHEAD + inner_ip.len()];
        wire[UNDERLAY_OVERHEAD..].copy_from_slice(inner_ip);
        encap::write_underlay(
            &mut wire,
            &EncapParams {
                outer_src: Rloc::for_router_index(1),
                outer_dst: sw.config().rloc,
                vn: vn(1),
                group: GroupId(66),
                policy_applied: false,
                ttl: 8,
                src_port: 50000,
                udp_checksum: OuterChecksum::Zero,
                inner_proto: InnerProto::Ipv4,
            },
        )
        .unwrap();

        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::Policy));

        // Same packet with the policy-applied bit set sails through.
        let mut applied = wire.clone();
        encap::write_underlay(
            &mut applied,
            &EncapParams {
                outer_src: Rloc::for_router_index(1),
                outer_dst: sw.config().rloc,
                vn: vn(1),
                group: GroupId(66),
                policy_applied: true,
                ttl: 8,
                src_port: 50000,
                udp_checksum: OuterChecksum::Zero,
                inner_proto: InnerProto::Ipv4,
            },
        )
        .unwrap();
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&applied);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Deliver { port: dst.port });

        // A packet for another RLOC is not ours.
        let mut foreign = wire.clone();
        encap::write_underlay(
            &mut foreign,
            &EncapParams {
                outer_src: Rloc::for_router_index(1),
                outer_dst: Rloc::for_router_index(55),
                vn: vn(1),
                group: GroupId(66),
                policy_applied: false,
                ttl: 8,
                src_port: 50000,
                udp_checksum: OuterChecksum::Zero,
                inner_proto: InnerProto::Ipv4,
            },
        )
        .unwrap();
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&foreign);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::NotOurs));

        // Garbage never panics.
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&[0xFFu8; 60]);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::Malformed));
    }

    /// Mobility (Fig. 6): traffic arriving for a departed endpoint is
    /// re-forwarded to its new location (when cached) and an SMR is
    /// punted back to the ingress edge.
    #[test]
    fn egress_reforwards_after_move_and_punts_smr() {
        let mut old_edge = switch_with_border(2);
        let moved = ep(3, 20);
        // Not attached here (it left), but the old edge learned the new
        // location from the map-notify.
        let new_rloc = Rloc::for_router_index(5);
        old_edge.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(moved.ipv4)),
            new_rloc,
            TTL,
            SimTime::ZERO,
        );

        let inner = frame(&ep(1, 10), moved.ipv4, b"catch me");
        let inner_ip = &inner[ethernet::HEADER_LEN..];
        let ingress_edge = Rloc::for_router_index(1);
        let mut wire = vec![0u8; UNDERLAY_OVERHEAD + inner_ip.len()];
        wire[UNDERLAY_OVERHEAD..].copy_from_slice(inner_ip);
        encap::write_underlay(
            &mut wire,
            &EncapParams {
                outer_src: ingress_edge,
                outer_dst: old_edge.config().rloc,
                vn: vn(1),
                group: GroupId(10),
                policy_applied: false,
                ttl: 8,
                src_port: 50000,
                udp_checksum: OuterChecksum::Zero,
                inner_proto: InnerProto::Ipv4,
            },
        )
        .unwrap();

        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = old_edge.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Forward { to: new_rloc });
        // Hop budget decremented on the detour.
        let d = encap::parse_underlay(bufs[0].bytes()).unwrap();
        assert_eq!(d.outer_ttl, 7);
        assert_eq!(d.outer_src, old_edge.config().rloc);
        assert_eq!(
            old_edge.punts(),
            &[Punt::Smr {
                to: ingress_edge,
                vn: vn(1),
                eid: Eid::V4(moved.ipv4)
            }]
        );

        // Without a cached location the packet rides the border default
        // route (§5.2 reboot recovery) and a Map-Request joins the SMR.
        old_edge.clear_punts();
        old_edge.purge_rloc(new_rloc);
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = old_edge.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(99)
            }
        );
        assert_eq!(old_edge.stats().forwarded_default, 1);
        assert_eq!(old_edge.punts().len(), 2);

        // A last-resort switch (no border — i.e. the border itself)
        // drops the same packet as unroutable instead.
        let mut lone = Switch::new(SwitchConfig::new(Rloc::for_router_index(2)));
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = lone.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::NoRoute));
    }

    /// The data path only filters expired entries; the owner sweep
    /// reclaims them (review regression for the shared-read split).
    #[test]
    fn evict_expired_reclaims_filtered_entries() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let dst = Ipv4Addr::new(10, 9, 0, 5);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst)),
            Rloc::for_router_index(7),
            SimDuration::from_secs(10),
            SimTime::ZERO,
        );
        let later = SimTime::ZERO + SimDuration::from_secs(60);
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, dst, b"late"));
        let v = sw.process_ingress(&mut bufs, later).to_vec();
        // Expired: rides the border default, but stays in the FIB…
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(99)
            }
        );
        assert_eq!(sw.fib_len(), 1, "shared lookup filters, never removes");
        // …until the owner sweep reclaims it.
        assert_eq!(sw.evict_expired(later, SimDuration::from_days(1)), 1);
        assert_eq!(sw.fib_len(), 0);
    }

    /// Mixed-VN bursts resolve in same-VN runs without cross-talk.
    #[test]
    fn mixed_vn_batch_resolves_correctly() {
        let mut sw = switch_with_border(1);
        let a1 = ep(1, 10);
        let a2 = ep(2, 10);
        sw.attach(vn(1), a1);
        sw.attach(vn(2), a2);
        let r1 = Rloc::for_router_index(11);
        let r2 = Rloc::for_router_index(12);
        let dst_ip = Ipv4Addr::new(10, 9, 0, 1);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(dst_ip)),
            r1,
            TTL,
            SimTime::ZERO,
        );
        sw.install_mapping(
            vn(2),
            EidPrefix::host(Eid::V4(dst_ip)),
            r2,
            TTL,
            SimTime::ZERO,
        );

        let mut bufs: Vec<PacketBuf> = (0..4).map(|_| PacketBuf::new()).collect();
        bufs[0].load(&frame(&a1, dst_ip, b"vn1"));
        bufs[1].load(&frame(&a2, dst_ip, b"vn2"));
        bufs[2].load(&frame(&a1, dst_ip, b"vn1 again"));
        bufs[3].load(&frame(&a2, dst_ip, b"vn2 again"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Forward { to: r1 });
        assert_eq!(v[1], Verdict::Forward { to: r2 });
        assert_eq!(v[2], Verdict::Forward { to: r1 });
        assert_eq!(v[3], Verdict::Forward { to: r2 });
        assert_eq!(sw.stats().forwarded, 4);
    }

    /// A unicast non-IP frame toward a known MAC EID: local delivery,
    /// remote encapsulation with an Ethernet inner, and decapsulated
    /// delivery at the far switch (§3.5 L2 flows, end to end).
    #[test]
    fn l2_flow_encapsulates_and_delivers() {
        let mut a_sw = switch_with_border(1);
        let mut b_sw = switch_with_border(2);
        let src = ep(1, 10);
        let dst = ep(2, 20);
        a_sw.attach(vn(1), src);
        b_sw.attach(vn(1), dst);
        a_sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::Mac(dst.mac)),
            b_sw.config().rloc,
            TTL,
            SimTime::ZERO,
        );
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(10), GroupId(20), Action::Allow);
        b_sw.install_matrix(&m);

        // A unicast "ARP" frame: eth(dst.mac, src.mac, 0x0806) + payload.
        let mut l2 = vec![0u8; ethernet::HEADER_LEN + 28];
        ethernet::Repr {
            dst: dst.mac,
            src: src.mac,
            ethertype: EtherType::Arp,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut l2[..]));
        l2[ethernet::HEADER_LEN..].copy_from_slice(&[0xAA; 28]);

        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&l2);
        let v = a_sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: b_sw.config().rloc
            }
        );
        let d = encap::parse_underlay(bufs[0].bytes()).unwrap();
        assert_eq!(d.inner_proto, InnerProto::Ethernet);
        assert_eq!(d.inner, &l2[..]);

        // The far switch decapsulates and hands the original frame over.
        let wire = bufs[0].bytes().to_vec();
        let mut rx = [PacketBuf::new()];
        rx[0].load(&wire);
        let v = b_sw.process_egress(&mut rx, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Deliver { port: dst.port });
        assert_eq!(rx[0].bytes(), &l2[..]);

        // Broadcast destinations never enter the fabric.
        let mut bcast = l2.clone();
        bcast[..6].copy_from_slice(&MacAddr::BROADCAST.octets());
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&bcast);
        let v = a_sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::Unsupported));
    }

    /// A border-flavored switch (no default route) matches misses
    /// against its external table, ingress and egress.
    #[test]
    fn external_routes_absorb_misses_on_borders() {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(30));
        cfg.default_action = Action::Allow;
        let mut border = Switch::new(cfg);
        border.add_external(Ipv4Prefix::new(Ipv4Addr::new(93, 184, 0, 0), 16).unwrap());
        let sink = ep(9, 20);
        border.attach(vn(1), sink);

        // Ingress from the attached sink toward the Internet.
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&sink, Ipv4Addr::new(93, 184, 216, 34), b"out"));
        let v = border.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::DeliverExternal);
        // An unknown overlay address is unroutable instead.
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&sink, Ipv4Addr::new(10, 200, 0, 1), b"lost"));
        let v = border.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::Drop(DropReason::NoRoute));
        assert_eq!(border.stats().delivered_external, 1);

        // Egress: a fabric packet whose inner destination is external.
        let inner = frame(&ep(1, 10), Ipv4Addr::new(93, 184, 9, 9), b"exit");
        let inner_ip = &inner[ethernet::HEADER_LEN..];
        let mut wire = vec![0u8; UNDERLAY_OVERHEAD + inner_ip.len()];
        wire[UNDERLAY_OVERHEAD..].copy_from_slice(inner_ip);
        encap::write_underlay(
            &mut wire,
            &EncapParams {
                outer_src: Rloc::for_router_index(1),
                outer_dst: border.config().rloc,
                vn: vn(1),
                group: GroupId(10),
                policy_applied: false,
                ttl: 8,
                src_port: 50000,
                udp_checksum: OuterChecksum::Zero,
                inner_proto: InnerProto::Ipv4,
            },
        )
        .unwrap();
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = border.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(v[0], Verdict::DeliverExternal);
    }

    /// §5.3 ingress enforcement: a known destination group is checked
    /// before transit (stamping the A bit), an unknown one defers to
    /// egress, and a deny drops without punting a Map-Request.
    #[test]
    fn ingress_enforcement_checks_before_transit() {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
        cfg.border = Some(Rloc::for_router_index(99));
        cfg.enforcement = EnforcementPoint::Ingress;
        let mut sw = Switch::new(cfg);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let allowed_ip = Ipv4Addr::new(10, 9, 0, 5);
        let denied_ip = Ipv4Addr::new(10, 9, 0, 6);
        let unhinted_ip = Ipv4Addr::new(10, 9, 0, 7);
        for ip in [allowed_ip, denied_ip, unhinted_ip] {
            sw.install_mapping(
                vn(1),
                EidPrefix::host(Eid::V4(ip)),
                Rloc::for_router_index(7),
                TTL,
                SimTime::ZERO,
            );
        }
        sw.install_dst_hint(vn(1), Eid::V4(allowed_ip), GroupId(20));
        sw.install_dst_hint(vn(1), Eid::V4(denied_ip), GroupId(30));
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(10), GroupId(20), Action::Allow);
        sw.install_matrix(&m);

        let mut bufs: Vec<PacketBuf> = (0..3).map(|_| PacketBuf::new()).collect();
        bufs[0].load(&frame(&a, allowed_ip, b"ok"));
        bufs[1].load(&frame(&a, denied_ip, b"no"));
        bufs[2].load(&frame(&a, unhinted_ip, b"later"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(7)
            }
        );
        // The allowed packet carries the A bit.
        let d = encap::parse_underlay(bufs[0].bytes()).unwrap();
        assert!(d.policy_applied);
        assert_eq!(v[1], Verdict::Drop(DropReason::Policy));
        assert!(matches!(v[2], Verdict::Forward { .. }));
        // The unhinted packet went unenforced.
        let d = encap::parse_underlay(bufs[2].bytes()).unwrap();
        assert!(!d.policy_applied);
        // No Map-Requests: all three destinations were cache hits.
        assert!(sw.punts().is_empty());
    }

    /// A cached mapping pointing at this very switch (stale sync after
    /// a departure) must not self-forward — it falls back like a miss.
    #[test]
    fn self_mapping_treated_as_miss() {
        let mut sw = switch_with_border(1);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let ghost = Ipv4Addr::new(10, 9, 0, 8);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(ghost)),
            sw.config().rloc,
            TTL,
            SimTime::ZERO,
        );
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, ghost, b"ghost"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Forward {
                to: Rloc::for_router_index(99)
            }
        );
        assert_eq!(sw.stats().forwarded_default, 1);
        assert_eq!(sw.punts().len(), 1, "miss punts a Map-Request");
    }

    /// Full outer checksums are honoured end to end when configured.
    #[test]
    fn full_outer_checksum_roundtrips() {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
        cfg.border = Some(Rloc::for_router_index(99));
        cfg.outer_checksum = OuterChecksum::Full;
        let mut sw = Switch::new(cfg);
        let a = ep(1, 10);
        sw.attach(vn(1), a);
        let remote_ip = Ipv4Addr::new(10, 9, 0, 5);
        sw.install_mapping(
            vn(1),
            EidPrefix::host(Eid::V4(remote_ip)),
            Rloc::for_router_index(7),
            TTL,
            SimTime::ZERO,
        );
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame(&a, remote_ip, b"checksummed"));
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(matches!(v[0], Verdict::Forward { .. }));
        // The emitted packet verifies, and corruption is now caught.
        assert!(encap::parse_underlay(bufs[0].bytes()).is_ok());
        let mut bent = bufs[0].bytes().to_vec();
        let last = bent.len() - 1;
        bent[last] ^= 0xFF;
        assert_eq!(
            encap::parse_underlay(&bent).unwrap_err(),
            sda_wire::Error::BadChecksum
        );
    }
}
