//! # sda-dataplane
//!
//! The batched, zero-copy VXLAN-GPO forwarding engine — the byte-level
//! data plane the paper's edge nodes run, built from the layers below it:
//! `sda-wire` packet views, the PR 1 inline-key tries (`sda-trie`), the
//! map-cache (`sda-lisp`) and per-packet policy (`sda-policy`).
//!
//! ## The batch model
//!
//! The engine is structured like smoltcp crossed with a DPDK/VPP-style
//! burst pipeline:
//!
//! * **Buffers, not packets** ([`buffer`]): frames live in reusable
//!   [`PacketBuf`]s with [`buffer::HEADROOM`] bytes reserved in front.
//!   Encapsulation *prepends* headers by moving the start pointer;
//!   decapsulation strips them the same way. Payload bytes never move
//!   and nothing is allocated per packet.
//! * **Bursts, not calls** ([`switch`]): a [`Switch`] processes frames
//!   in batches (conventionally [`buffer::BATCH_SIZE`] = 32). A batch
//!   makes three phased passes — parse/classify, resolve, rewrite — so
//!   each phase's tables stay hot in cache, and consecutive same-VN
//!   packets resolve through one [`sda_lisp::MapCache::lookup_batch`]
//!   run instead of per-packet descents.
//! * **One encoding** ([`encap`]): the Fig. 2 header stack (outer IPv4 /
//!   UDP 4789 / VXLAN-GPO / inner packet) is written and parsed in
//!   exactly one place, shared with `sda_core::pipeline`'s structured
//!   simulator path.
//!
//! Misses punt Map-Requests to the control plane while the packet rides
//! the border default route (§3.2.2); SMR'd entries keep forwarding and
//! punt a refresh (Fig. 6); packets for departed endpoints trigger
//! data-driven SMRs back to the ingress edge. The engine's performance
//! contract — zero allocations per steady-state packet, and ≥2x over the
//! per-packet Vec-assembling baseline — is enforced by
//! `tests/no_alloc.rs` and the `dataplane_fwd` bench
//! (`BENCH_dataplane.json`).

pub mod buffer;
pub mod encap;
pub mod switch;
pub mod vrf;

pub use buffer::{BufferPool, PacketBuf, BATCH_SIZE, HEADROOM, MAX_FRAME};
pub use encap::{parse_underlay, write_underlay, Decap, EncapParams, UNDERLAY_OVERHEAD};
pub use switch::{DropReason, Punt, Switch, SwitchConfig, SwitchStats, Verdict};
pub use vrf::{LocalEndpoint, VrfTable};
