//! # sda-dataplane
//!
//! The batched, zero-copy VXLAN-GPO forwarding engine — the byte-level
//! data plane the paper's edge nodes run, built from the layers below it:
//! `sda-wire` packet views, the PR 1 inline-key tries (`sda-trie`), the
//! map-cache (`sda-lisp`) and per-packet policy (`sda-policy`).
//!
//! ## The batch model
//!
//! The engine is structured like smoltcp crossed with a DPDK/VPP-style
//! burst pipeline:
//!
//! * **Buffers, not packets** ([`buffer`]): frames live in reusable
//!   [`PacketBuf`]s with [`buffer::HEADROOM`] bytes reserved in front.
//!   Encapsulation *prepends* headers by moving the start pointer;
//!   decapsulation strips them the same way. Payload bytes never move
//!   and nothing is allocated per packet.
//! * **Bursts, not calls** ([`switch`]): a [`Switch`] processes frames
//!   in batches (conventionally [`buffer::BATCH_SIZE`] = 32). A batch
//!   makes three phased passes — parse/classify, resolve, rewrite — so
//!   each phase's tables stay hot in cache, and consecutive same-VN
//!   packets resolve through one [`sda_lisp::MapCache::lookup_batch`]
//!   run instead of per-packet descents.
//! * **One encoding** ([`encap`]): the Fig. 2 header stack (outer IPv4 /
//!   UDP 4789 / VXLAN-GPO / inner packet) is written and parsed in
//!   exactly one place, shared with `sda_core::pipeline`'s structured
//!   simulator path.
//!
//! * **Cores, not just batches** ([`mt`]): the pipeline is factored
//!   into read-mostly [`SharedTables`] + per-worker [`WorkerCtx`], so
//!   [`MtSwitch`] can fan bursts out to N worker threads by inner-flow
//!   RSS hash over clone-and-swap epoch-published tables ([`Switch`]
//!   is the single-threaded composition of the same parts).
//!
//! Misses punt Map-Requests to the control plane while the packet rides
//! the border default route (§3.2.2); SMR'd entries keep forwarding and
//! punt a refresh (Fig. 6); packets for departed endpoints trigger
//! data-driven SMRs back to the ingress edge. The engine's performance
//! contract — zero allocations per steady-state packet, ≥2x over the
//! per-packet Vec-assembling baseline, and 1-worker multi-core parity
//! within 1.15x of the single-threaded switch — is enforced by
//! `tests/no_alloc.rs` and the `dataplane_fwd`/`mt_fwd` benches
//! (`BENCH_dataplane.json`, `BENCH_mt.json`).

pub mod buffer;
pub mod encap;
pub mod mt;
pub mod switch;
pub mod vrf;

pub use buffer::{BufferPool, PacketBuf, BATCH_SIZE, HEADROOM, MAX_FRAME};
pub use encap::{
    parse_underlay, write_underlay, Decap, EncapParams, InnerProto, OuterChecksum,
    UNDERLAY_OVERHEAD,
};
pub use mt::{EpochTables, MtSwitch, TableReader};
pub use switch::{
    egress_batch, ingress_batch, DropReason, Punt, SharedTables, Switch, SwitchConfig, SwitchStats,
    Verdict, WorkerCtx,
};
pub use vrf::{LocalEndpoint, VrfTable};
