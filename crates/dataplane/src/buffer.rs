//! Reusable packet buffers with encapsulation headroom.
//!
//! The whole zero-copy story rests on one layout decision: a frame is
//! loaded at a fixed [`HEADROOM`] offset inside its buffer, so
//! encapsulation *prepends* the outer IPv4 + UDP + VXLAN-GPO headers by
//! moving the start pointer back ([`PacketBuf::grow_front`]) and
//! decapsulation strips them by moving it forward
//! ([`PacketBuf::shrink_front`]). Payload bytes never move; headers are
//! written in place through `sda-wire` views.
//!
//! [`BufferPool`] recycles buffers so the steady-state forwarding path
//! performs zero heap allocations: buffers are allocated once, then
//! loaded, processed and released round after round.

/// Bytes reserved in front of every loaded frame for in-place
/// encapsulation: outer IPv4 (20) + UDP (8) + VXLAN-GPO (8).
pub const HEADROOM: usize = 20 + 8 + 8;

/// Largest frame a buffer accepts (inner Ethernet MTU + L2 header,
/// rounded up).
pub const MAX_FRAME: usize = 1600;

/// Default burst size: how many packets one [`crate::Switch`] processing
/// call handles. 32 matches the DPDK/VPP sweet spot — big enough to
/// amortize per-batch work, small enough to stay in L1.
pub const BATCH_SIZE: usize = 32;

/// One reusable packet buffer.
///
/// Valid bytes live at `data[start..start + len]`; `start` begins at
/// [`HEADROOM`] after a [`PacketBuf::load`] and moves as headers are
/// pushed or stripped.
#[derive(Debug)]
pub struct PacketBuf {
    data: Box<[u8]>,
    start: usize,
    len: usize,
}

impl Default for PacketBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuf {
    /// Allocates an empty buffer (the only allocating operation here).
    pub fn new() -> Self {
        PacketBuf {
            data: vec![0u8; HEADROOM + MAX_FRAME].into_boxed_slice(),
            start: HEADROOM,
            len: 0,
        }
    }

    /// Copies `frame` in at the headroom offset (the simulated RX DMA).
    /// Fails when the frame exceeds [`MAX_FRAME`].
    pub fn load(&mut self, frame: &[u8]) -> bool {
        if frame.len() > MAX_FRAME {
            return false;
        }
        self.start = HEADROOM;
        self.len = frame.len();
        self.data[HEADROOM..HEADROOM + frame.len()].copy_from_slice(frame);
        true
    }

    /// The valid bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// The valid bytes, mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..self.start + self.len]
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no packet is loaded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining headroom in front of the packet.
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// Extends the packet `n` bytes to the front (encapsulation) and
    /// returns true on success. The new bytes are whatever the buffer
    /// last held there — callers must overwrite them.
    pub fn grow_front(&mut self, n: usize) -> bool {
        if n > self.start {
            return false;
        }
        self.start -= n;
        self.len += n;
        true
    }

    /// Strips `n` bytes from the front (decapsulation); true on success.
    pub fn shrink_front(&mut self, n: usize) -> bool {
        if n > self.len {
            return false;
        }
        self.start += n;
        self.len -= n;
        true
    }

    /// Truncates the packet to `n` bytes (drops trailing padding).
    pub fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }

    /// Empties the buffer and restores full headroom.
    pub fn clear(&mut self) {
        self.start = HEADROOM;
        self.len = 0;
    }
}

/// A free-list of [`PacketBuf`]s.
///
/// `alloc` pops a recycled buffer (or allocates a fresh one the first
/// time); `release` returns it. After warm-up the pool reaches its
/// high-water mark and the data path stops touching the heap.
#[derive(Default, Debug)]
pub struct BufferPool {
    free: Vec<PacketBuf>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// A pool pre-warmed with `n` buffers, so even the first burst
    /// allocates nothing.
    pub fn with_capacity(n: usize) -> Self {
        BufferPool {
            free: (0..n).map(|_| PacketBuf::new()).collect(),
        }
    }

    /// Takes a buffer (recycled when available).
    pub fn alloc(&mut self) -> PacketBuf {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool.
    pub fn release(&mut self, mut buf: PacketBuf) {
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_places_frame_at_headroom() {
        let mut b = PacketBuf::new();
        assert!(b.load(b"hello"));
        assert_eq!(b.bytes(), b"hello");
        assert_eq!(b.headroom(), HEADROOM);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn grow_and_shrink_front_roundtrip() {
        let mut b = PacketBuf::new();
        b.load(b"payload");
        assert!(b.grow_front(8));
        assert_eq!(b.len(), 15);
        b.bytes_mut()[..8].copy_from_slice(b"HDRHDRHD");
        assert_eq!(&b.bytes()[8..], b"payload");
        assert!(b.shrink_front(8));
        assert_eq!(b.bytes(), b"payload");
    }

    #[test]
    fn grow_front_bounded_by_headroom() {
        let mut b = PacketBuf::new();
        b.load(b"x");
        assert!(b.grow_front(HEADROOM));
        assert!(!b.grow_front(1), "no headroom left");
    }

    #[test]
    fn shrink_front_bounded_by_len() {
        let mut b = PacketBuf::new();
        b.load(b"abc");
        assert!(!b.shrink_front(4));
        assert!(b.shrink_front(3));
        assert!(b.is_empty());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut b = PacketBuf::new();
        assert!(!b.load(&vec![0u8; MAX_FRAME + 1]));
        assert!(b.load(&vec![0u8; MAX_FRAME]));
    }

    #[test]
    fn pool_recycles() {
        let mut pool = BufferPool::with_capacity(2);
        assert_eq!(pool.idle(), 2);
        let mut a = pool.alloc();
        a.load(b"dirty");
        pool.release(a);
        assert_eq!(pool.idle(), 2);
        let b = pool.alloc();
        assert!(b.is_empty(), "released buffers come back cleared");
        assert_eq!(b.headroom(), HEADROOM);
    }
}
