//! In-place VXLAN-GPO underlay encapsulation and decapsulation.
//!
//! [`write_underlay`] emits the Fig. 2 header stack — outer IPv4, UDP
//! (port 4789), VXLAN-GPO — into the [`UNDERLAY_OVERHEAD`] bytes *in
//! front of* an inner packet that is already resident in the buffer; no
//! payload byte moves. [`parse_underlay`] validates the same stack and
//! hands back the header fields plus the inner packet as a subslice.
//!
//! Both `sda_core::pipeline` (the structured simulator path) and the
//! batched [`crate::Switch`] delegate here, so there is exactly one
//! encoding of the paper's packet format.
//!
//! The outer UDP checksum policy is an explicit knob
//! ([`OuterChecksum`], RFC 6935-style): encapsulators conventionally
//! send the (legal) zero checksum over IPv4, which is the default for
//! both the engine and the simulator nodes built on it; `parse_underlay`
//! verifies a checksum whenever one is present, so the two policies
//! interoperate. Before this was a config, the simulator's encoder
//! hardcoded the full checksum while the engine wrote zero — the first
//! divergence the differential oracle in `sda_core::pipeline` was built
//! to flush out.

use sda_types::{GroupId, Rloc, VnId};
use sda_wire::{ipv4, udp, vxlan, Error, Result};

pub use sda_wire::vxlan::InnerProto;

/// Bytes of underlay framing in front of the inner packet:
/// outer IPv4 (20) + UDP (8) + VXLAN-GPO (8).
pub const UNDERLAY_OVERHEAD: usize = ipv4::HEADER_LEN + udp::HEADER_LEN + vxlan::HEADER_LEN;

/// Outer UDP checksum policy (RFC 6935: UDP over IPv4 may send a zero
/// checksum; tunnel protocols conventionally do).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OuterChecksum {
    /// Send the zero (disabled) checksum — the conventional VXLAN
    /// encapsulator choice and the zero-allocation hot-path default.
    #[default]
    Zero,
    /// Compute the full checksum over pseudo-header + payload (receivers
    /// then catch any in-flight corruption of the underlay datagram).
    Full,
}

/// Everything [`write_underlay`] needs to frame one packet.
#[derive(Clone, Copy, Debug)]
pub struct EncapParams {
    /// This switch's RLOC (outer source).
    pub outer_src: Rloc,
    /// Destination fabric router (outer destination).
    pub outer_dst: Rloc,
    /// VN, carried in the VNI field.
    pub vn: VnId,
    /// Source GroupId, carried in the GPO group field.
    pub group: GroupId,
    /// The `A` (policy already applied) bit.
    pub policy_applied: bool,
    /// Outer TTL — the fabric hop budget (§5.2 loop protection).
    pub ttl: u8,
    /// UDP source port (ECMP entropy; see [`ecmp_src_port`]).
    pub src_port: u16,
    /// Outer UDP checksum policy.
    pub udp_checksum: OuterChecksum,
    /// What the encapsulated payload is (IPv4 packet or Ethernet frame,
    /// carried in the VXLAN-GPE next-protocol byte).
    pub inner_proto: InnerProto,
}

/// Hashes a flow identifier into the conventional VXLAN ECMP source-port
/// range `49152..65536`.
pub fn ecmp_src_port(flow_hash: u64) -> u16 {
    49152 + (flow_hash % 16384) as u16
}

/// Mixes inner addresses into a flow hash for [`ecmp_src_port`].
pub fn flow_hash(src: u32, dst: u32) -> u64 {
    let h = src.wrapping_mul(0x9E37_79B1) ^ dst.wrapping_mul(0x85EB_CA77);
    u64::from(h)
}

/// [`flow_hash`] over L2 addresses (the inner frame of an L2 flow).
pub fn flow_hash_mac(src: sda_types::MacAddr, dst: sda_types::MacAddr) -> u64 {
    let fold = |m: sda_types::MacAddr| {
        let o = m.octets();
        u32::from_be_bytes([o[0] ^ o[4], o[1] ^ o[5], o[2], o[3]])
    };
    flow_hash(fold(src), fold(dst))
}

/// Emits the underlay headers into `buf[..UNDERLAY_OVERHEAD]`; the inner
/// packet must already occupy `buf[UNDERLAY_OVERHEAD..]`. Nothing beyond
/// the header bytes is written.
pub fn write_underlay(buf: &mut [u8], p: &EncapParams) -> Result<()> {
    if buf.len() < UNDERLAY_OVERHEAD {
        return Err(Error::BufferTooSmall);
    }
    let inner_len = buf.len() - UNDERLAY_OVERHEAD;

    // Flat fixed-offset build of all three headers in one stack array —
    // byte-for-byte what the per-layer `Repr::emit` chain produced, but
    // without its repeated bounds-checked field stores, and with the
    // IPv4 header checksum folded arithmetically from the field words
    // instead of a second byte-by-byte pass. This runs once per
    // forwarded packet; on the batched encap path it is the largest
    // fixed cost after the LPM descent itself.
    let total_len = buf.len() as u16;
    let udp_len = (udp::HEADER_LEN + vxlan::HEADER_LEN + inner_len) as u16;
    let src = p.outer_src.addr().octets();
    let dst = p.outer_dst.addr().octets();

    let mut h = [0u8; UNDERLAY_OVERHEAD];
    // IPv4: version/IHL 0x45, DSCP 0, ident 0, flags DF.
    h[0] = 0x45;
    h[2..4].copy_from_slice(&total_len.to_be_bytes());
    h[6] = 0x40;
    h[8] = p.ttl;
    h[9] = ipv4::Protocol::Udp.into();
    h[12..16].copy_from_slice(&src);
    h[16..20].copy_from_slice(&dst);
    let mut sum = 0x4500u32
        + 0x4000
        + u32::from(total_len)
        + (u32::from(p.ttl) << 8)
        + u32::from(u8::from(ipv4::Protocol::Udp))
        + u32::from(u16::from_be_bytes([src[0], src[1]]))
        + u32::from(u16::from_be_bytes([src[2], src[3]]))
        + u32::from(u16::from_be_bytes([dst[0], dst[1]]))
        + u32::from(u16::from_be_bytes([dst[2], dst[3]]));
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    h[10..12].copy_from_slice(&(!(sum as u16)).to_be_bytes());

    // UDP: checksum 0 here; the Full policy fills it below (it must sum
    // the whole inner payload, so there is no flat shortcut for it).
    h[20..22].copy_from_slice(&p.src_port.to_be_bytes());
    h[22..24].copy_from_slice(&udp::VXLAN_PORT.to_be_bytes());
    h[24..26].copy_from_slice(&udp_len.to_be_bytes());

    // VXLAN-GPO: I + G always (every fabric packet carries a source
    // group), A from policy, D never set on encap.
    let flags = vxlan::FLAG_I | vxlan::FLAG_G | if p.policy_applied { vxlan::FLAG_A } else { 0 };
    h[28..30].copy_from_slice(&flags.to_be_bytes());
    h[30..32].copy_from_slice(&p.group.raw().to_be_bytes());
    let vni = p.vn.raw();
    h[32] = (vni >> 16) as u8;
    h[33] = (vni >> 8) as u8;
    h[34] = vni as u8;
    h[35] = match p.inner_proto {
        InnerProto::Ipv4 => 0,
        InnerProto::Ethernet => vxlan::PROTO_ETHERNET,
    };

    buf[..UNDERLAY_OVERHEAD].copy_from_slice(&h);

    if p.udp_checksum == OuterChecksum::Full {
        let mut u = udp::Packet::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
        u.fill_checksum(p.outer_src.addr(), p.outer_dst.addr());
    }
    Ok(())
}

/// The validated underlay framing of one received packet.
#[derive(Clone, Copy, Debug)]
pub struct Decap<'a> {
    /// Outer source (the ingress edge's RLOC — where SMRs go, Fig. 6).
    pub outer_src: Rloc,
    /// Outer destination.
    pub outer_dst: Rloc,
    /// Outer TTL (remaining hop budget).
    pub outer_ttl: u8,
    /// VN from the VNI field.
    pub vn: VnId,
    /// Source GroupId, when the GPO extension is present.
    pub group: Option<GroupId>,
    /// The `A` (policy already applied) bit.
    pub policy_applied: bool,
    /// The `D` (don't learn) bit.
    pub dont_learn: bool,
    /// What the inner payload is (IPv4 packet or Ethernet frame).
    pub inner_proto: InnerProto,
    /// The inner packet (an overlay IPv4 packet or Ethernet frame).
    pub inner: &'a [u8],
    /// Offset of `inner` within the parsed bytes — what an in-place
    /// decapsulation strips from the front.
    pub inner_offset: usize,
}

/// Validates outer IPv4 → UDP(4789) → VXLAN-GPO and returns the header
/// fields plus the inner packet. Every length, version and checksum is
/// checked; malformed input is an [`Error`], never a panic.
pub fn parse_underlay(bytes: &[u8]) -> Result<Decap<'_>> {
    let outer = ipv4::Packet::new_checked(bytes)?;
    if outer.protocol() != ipv4::Protocol::Udp {
        return Err(Error::Malformed);
    }
    let outer_src = Rloc(outer.src_addr());
    let outer_dst = Rloc(outer.dst_addr());
    let outer_ttl = outer.ttl();
    let total = outer.total_len() as usize;

    let dgram = udp::Packet::new_checked(&bytes[ipv4::HEADER_LEN..total])?;
    if !dgram.verify_checksum(outer_src.addr(), outer_dst.addr()) {
        return Err(Error::BadChecksum);
    }
    if dgram.dst_port() != udp::VXLAN_PORT {
        return Err(Error::Malformed);
    }
    let udp_end = ipv4::HEADER_LEN + dgram.len() as usize;

    let vx = vxlan::Packet::new_checked(&bytes[ipv4::HEADER_LEN + udp::HEADER_LEN..udp_end])?;
    let inner_offset = UNDERLAY_OVERHEAD;

    Ok(Decap {
        outer_src,
        outer_dst,
        outer_ttl,
        vn: vx.vni(),
        group: vx.group(),
        policy_applied: vx.policy_applied(),
        dont_learn: vx.dont_learn(),
        inner_proto: vx.inner_proto(),
        inner: &bytes[inner_offset..udp_end],
        inner_offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EncapParams {
        EncapParams {
            outer_src: Rloc::for_router_index(1),
            outer_dst: Rloc::for_router_index(2),
            vn: VnId::new(4097).unwrap(),
            group: GroupId(17),
            policy_applied: true,
            ttl: 8,
            src_port: ecmp_src_port(42),
            udp_checksum: OuterChecksum::Zero,
            inner_proto: InnerProto::Ipv4,
        }
    }

    fn framed(inner: &[u8], p: &EncapParams) -> Vec<u8> {
        let mut buf = vec![0u8; UNDERLAY_OVERHEAD + inner.len()];
        buf[UNDERLAY_OVERHEAD..].copy_from_slice(inner);
        write_underlay(&mut buf, p).unwrap();
        buf
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let p = params();
        let inner = b"inner ipv4 bytes stand-in";
        let buf = framed(inner, &p);
        let d = parse_underlay(&buf).unwrap();
        assert_eq!(d.outer_src, p.outer_src);
        assert_eq!(d.outer_dst, p.outer_dst);
        assert_eq!(d.outer_ttl, 8);
        assert_eq!(d.vn, p.vn);
        assert_eq!(d.group, Some(p.group));
        assert!(d.policy_applied);
        assert!(!d.dont_learn);
        assert_eq!(d.inner, inner);
        assert_eq!(d.inner_offset, UNDERLAY_OVERHEAD);
    }

    #[test]
    fn optional_udp_checksum_verifies() {
        let mut p = params();
        p.udp_checksum = OuterChecksum::Full;
        let buf = framed(b"payload", &p);
        assert!(parse_underlay(&buf).is_ok());
        // Corrupting the inner payload must now be caught.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert_eq!(parse_underlay(&bad).unwrap_err(), Error::BadChecksum);
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let p = params();
        let buf = framed(b"payload", &p);
        let mut bent = buf.clone();
        let last = bent.len() - 1;
        bent[last] ^= 0xff;
        // No checksum → payload corruption passes (by design; the paper's
        // encap relies on inner integrity checks).
        assert!(parse_underlay(&bent).is_ok());
    }

    #[test]
    fn non_vxlan_port_rejected() {
        let p = params();
        let mut buf = framed(b"x", &p);
        // Overwrite the UDP destination port (bytes 22..24) with 4342.
        buf[22..24].copy_from_slice(&4342u16.to_be_bytes());
        assert_eq!(parse_underlay(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn non_udp_protocol_rejected() {
        let p = params();
        let mut buf = framed(b"x", &p);
        buf[9] = 6; // TCP
        ipv4::Packet::new_unchecked(&mut buf[..]).fill_checksum();
        assert_eq!(parse_underlay(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn every_truncation_errors() {
        let p = params();
        let buf = framed(b"some inner payload", &p);
        for cut in 0..buf.len() {
            assert!(
                parse_underlay(&buf[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
        assert!(parse_underlay(&buf).is_ok());
    }

    #[test]
    fn trailing_padding_ignored() {
        let p = params();
        let mut buf = framed(b"padded", &p);
        buf.extend_from_slice(&[0xEE; 13]); // link-layer padding
        let d = parse_underlay(&buf).unwrap();
        assert_eq!(d.inner, b"padded");
    }

    #[test]
    fn inner_proto_roundtrips() {
        let mut p = params();
        p.inner_proto = InnerProto::Ethernet;
        let buf = framed(b"an l2 frame stand-in", &p);
        let d = parse_underlay(&buf).unwrap();
        assert_eq!(d.inner_proto, InnerProto::Ethernet);
        assert_eq!(d.inner, b"an l2 frame stand-in");
    }

    #[test]
    fn unknown_inner_proto_rejected() {
        let p = params();
        let mut buf = framed(b"x", &p);
        // The VXLAN next-protocol byte is the 8th of the VXLAN header.
        buf[ipv4::HEADER_LEN + udp::HEADER_LEN + 7] = 0x2A;
        assert_eq!(parse_underlay(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn buffer_too_small_on_emit() {
        let mut buf = [0u8; UNDERLAY_OVERHEAD - 1];
        assert_eq!(
            write_underlay(&mut buf, &params()).unwrap_err(),
            Error::BufferTooSmall
        );
    }
}
