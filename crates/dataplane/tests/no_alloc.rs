//! Proof, not promise: the steady-state forwarding path — batched
//! ingress encap (hit, stale and miss→default-route) and egress decap —
//! performs **zero heap allocations per packet** once the engine's
//! scratch vectors and the buffer pool have warmed up, both on the
//! insertion-order trie arena and after `Switch::compact_tables()`
//! re-lays it in DFS order (compaction itself allocates the new arena;
//! it runs between the measured windows, exactly as the bulk-load
//! hooks do in production).
//!
//! Since the multi-core split, `Switch::process_ingress`/`process_egress`
//! *are* the per-worker path: the same `ingress_batch`/`egress_batch`
//! over `&SharedTables` + `&mut WorkerCtx` that every `MtSwitch` worker
//! runs — so these windows prove the shared-read lookup
//! (`MapCache::lookup_batch_shared`, filtered `&self` trie descent,
//! atomic metadata refresh) allocates nothing per packet. A third
//! window below additionally measures the shared map-cache entry point
//! in isolation, and a fourth drives the *fused* lookup+enforce pass —
//! compiled-ACL verdicts (allow, explicit deny, default-action deny)
//! on the §5.3 ingress-hint path, the always-on local-delivery sites
//! and the egress memo path, counters ticking on shared atomics — and
//! proves it allocates nothing either.
//!
//! This file deliberately holds a single `#[test]` — the counter is
//! process-global, and a concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use sda_dataplane::{
    encap, DropReason, LocalEndpoint, PacketBuf, Switch, SwitchConfig, Verdict, BATCH_SIZE,
};
use sda_policy::{Action, ConnectivityMatrix, EnforcementPoint};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn frame(src: &LocalEndpoint, dst_ip: Ipv4Addr, payload_len: usize) -> Vec<u8> {
    let inner = ipv4::Repr {
        src: src.ipv4,
        dst: dst_ip,
        protocol: ipv4::Protocol::Unknown(253),
        payload_len,
        ttl: 64,
    };
    let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
    ethernet::Repr {
        dst: MacAddr::BROADCAST,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut buf[ethernet::HEADER_LEN..],
    ));
    buf
}

#[test]
fn steady_state_forwarding_allocates_nothing() {
    const ROUTES: u32 = 10_000;
    let vn = VnId::new(1).unwrap();
    let remote_ip = |i: u32| Ipv4Addr::from(0x0A09_0000 | (i & 0xFFFF));
    let ttl = SimDuration::from_secs(3600);
    let now = SimTime::ZERO + SimDuration::from_secs(1);

    let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
    cfg.border = Some(Rloc::for_router_index(99));
    let mut sw = Switch::new(cfg);
    let host = LocalEndpoint {
        port: PortId(1),
        group: GroupId(10),
        mac: MacAddr::from_seed(1),
        ipv4: Ipv4Addr::new(10, 0, 0, 1),
    };
    sw.attach(vn, host);
    for i in 0..ROUTES {
        sw.install_mapping(
            vn,
            EidPrefix::host(Eid::V4(remote_ip(i))),
            Rloc::for_router_index(2 + (i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
    }
    // Half the FIB is SMR'd so the stale path is exercised too.
    for i in 0..ROUTES / 2 {
        sw.receive_smr(vn, Eid::V4(remote_ip(i)), SimTime::ZERO);
    }

    // Pre-built wire images: hits/stales, misses, and underlay packets
    // for the egress direction (all built before measurement starts).
    let hit_frames: Vec<Vec<u8>> = (0..BATCH_SIZE as u32)
        .map(|i| frame(&host, remote_ip(i * 97 % ROUTES), 256))
        .collect();
    let miss_frames: Vec<Vec<u8>> = (0..BATCH_SIZE as u32)
        .map(|i| frame(&host, Ipv4Addr::from(0x0AFF_0000 | i), 256))
        .collect();
    let egress_wire: Vec<Vec<u8>> = (0..BATCH_SIZE as u32)
        .map(|i| {
            let f = frame(
                &LocalEndpoint {
                    ipv4: remote_ip(i),
                    ..host
                },
                host.ipv4,
                256,
            );
            let inner = &f[ethernet::HEADER_LEN..];
            let mut w = vec![0u8; encap::UNDERLAY_OVERHEAD + inner.len()];
            w[encap::UNDERLAY_OVERHEAD..].copy_from_slice(inner);
            encap::write_underlay(
                &mut w,
                &encap::EncapParams {
                    outer_src: Rloc::for_router_index(7),
                    outer_dst: Rloc::for_router_index(1),
                    vn,
                    group: GroupId(10),
                    policy_applied: true,
                    ttl: 8,
                    src_port: 50_000,
                    udp_checksum: encap::OuterChecksum::Zero,
                    inner_proto: encap::InnerProto::Ipv4,
                },
            )
            .unwrap();
            w
        })
        .collect();

    let mut bufs: Vec<PacketBuf> = (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect();

    let mut run = |sw: &mut Switch, frames: &[Vec<u8>], ingress: bool| -> (u64, u64, u64) {
        let (mut fwd, mut deliver, mut drop) = (0u64, 0u64, 0u64);
        for (buf, f) in bufs.iter_mut().zip(frames) {
            assert!(buf.load(f));
        }
        let verdicts = if ingress {
            sw.process_ingress(&mut bufs, now)
        } else {
            sw.process_egress(&mut bufs, now)
        };
        for v in verdicts {
            match v {
                Verdict::Forward { .. } => fwd += 1,
                Verdict::Deliver { .. } => deliver += 1,
                Verdict::DeliverExternal => unreachable!("no external routes installed"),
                Verdict::Drop(r) => {
                    assert_eq!(*r, DropReason::Policy, "only policy drops expected");
                    drop += 1;
                }
            }
        }
        sw.clear_punts();
        (fwd, deliver, drop)
    };

    // Warm-up: lets every scratch vector reach its high-water capacity.
    run(&mut sw, &hit_frames, true);
    run(&mut sw, &miss_frames, true);
    run(&mut sw, &egress_wire, false);

    const ROUNDS: u64 = 200;
    let batch = BATCH_SIZE as u64;

    // Window 1: insertion-order arena.
    let before = allocations();
    let (mut fwd, mut deliver) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        let (f, _, _) = run(&mut sw, &hit_frames, true);
        fwd += f;
        let (f, _, _) = run(&mut sw, &miss_frames, true);
        fwd += f;
        let (_, d, _) = run(&mut sw, &egress_wire, false);
        deliver += d;
    }
    let after = allocations();

    assert_eq!(fwd, 2 * ROUNDS * batch, "hits + misses all forwarded");
    assert_eq!(deliver, ROUNDS * batch, "egress all delivered");
    assert_eq!(
        after - before,
        0,
        "steady-state forwarding performed {} heap allocations over {} packets",
        after - before,
        3 * ROUNDS * batch
    );

    // Window 2: DFS-compacted arenas (the production layout once the
    // bulk-load hook runs), with dense upper trie levels promoted to
    // stride fanout tables — so hit, stale and miss encap all descend
    // through the stride layer here. The compaction happens outside the
    // window; forwarding afterwards must still allocate nothing.
    sw.compact_tables();
    assert!(
        sw.map_cache().mem_stats().stride_tables > 0,
        "10k dense routes must promote stride tables, or window 2 no \
         longer exercises the stride descent"
    );
    let before = allocations();
    let (mut fwd, mut deliver) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        let (f, _, _) = run(&mut sw, &hit_frames, true);
        fwd += f;
        let (f, _, _) = run(&mut sw, &miss_frames, true);
        fwd += f;
        let (_, d, _) = run(&mut sw, &egress_wire, false);
        deliver += d;
    }
    let after = allocations();

    assert_eq!(fwd, 2 * ROUNDS * batch, "post-compact forwarding intact");
    assert_eq!(deliver, ROUNDS * batch, "post-compact egress intact");
    assert_eq!(
        after - before,
        0,
        "post-compact forwarding performed {} heap allocations over {} packets",
        after - before,
        3 * ROUNDS * batch
    );

    // Window 3: the shared-read lookup entry point in isolation — the
    // exact call every MtSwitch worker makes per same-VN run. 96 probes
    // (not BATCH_SIZE): one full chunk at the widened 64-lane lockstep
    // default plus a ragged 32-key tail, with misses mixed in, so the
    // wider walk itself is proven allocation-free.
    let probes: Vec<Eid> = (0..96u32)
        .map(|i| {
            if i % 5 == 4 {
                Eid::V4(Ipv4Addr::from(0x0AFF_0000 | i)) // miss
            } else {
                Eid::V4(remote_ip(i * 97 % ROUTES))
            }
        })
        .collect();
    let mut out = Vec::new();
    sw.map_cache()
        .lookup_batch_shared(vn, &probes, now, &mut out); // warm `out`
    let before = allocations();
    for _ in 0..ROUNDS {
        sw.map_cache()
            .lookup_batch_shared(vn, &probes, now, &mut out);
        assert_eq!(out.len(), probes.len());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "shared-read batched lookup performed {} heap allocations",
        after - before
    );

    // Window 4: the fused lookup+enforce pass. Three destination
    // classes — explicit allow, explicit deny, and no-rule (the deny
    // default decides) — hit every compiled-ACL enforcement site:
    //
    //   * local L3 delivery on the egress-enforcement switch (always
    //     enforced, counting),
    //   * the egress decap path with the A bit clear (one-entry per-VN
    //     view memo),
    //   * the §5.3 ingress-hint check inside the same lockstep run as
    //     the map-cache resolve (per-run `vn_view`, hint known/deny/
    //     unknown), on a second ingress-enforcement switch.
    //
    // Exact verdict accounting per class, exact allowed/dropped deltas
    // on the shared atomics, and zero heap allocations.
    let allow_ep = LocalEndpoint {
        port: PortId(2),
        group: GroupId(20),
        mac: MacAddr::from_seed(2),
        ipv4: Ipv4Addr::new(10, 0, 0, 2),
    };
    let deny_ep = LocalEndpoint {
        port: PortId(3),
        group: GroupId(30),
        mac: MacAddr::from_seed(3),
        ipv4: Ipv4Addr::new(10, 0, 0, 3),
    };
    let default_ep = LocalEndpoint {
        port: PortId(4),
        group: GroupId(40),
        mac: MacAddr::from_seed(4),
        ipv4: Ipv4Addr::new(10, 0, 0, 4),
    };
    let mut m = ConnectivityMatrix::new();
    m.set_rule(vn, GroupId(10), GroupId(20), Action::Allow);
    m.set_rule(vn, GroupId(10), GroupId(30), Action::Deny);
    // GroupId(40): no rule — the compiled-in deny default decides.
    sw.attach(vn, allow_ep);
    sw.attach(vn, deny_ep);
    sw.attach(vn, default_ep);
    sw.install_matrix(&m);

    let classes = [allow_ep, deny_ep, default_ep];
    let per_batch_allow = (BATCH_SIZE as u64).div_ceil(3);
    let per_batch_deny = BATCH_SIZE as u64 - per_batch_allow;

    // Local delivery frames (host → same-edge endpoint, all enforced).
    let local_frames: Vec<Vec<u8>> = (0..BATCH_SIZE)
        .map(|i| frame(&host, classes[i % 3].ipv4, 256))
        .collect();
    // Egress wires with the A bit clear: decap must enforce via the
    // per-VN view memo.
    let enforce_wire: Vec<Vec<u8>> = (0..BATCH_SIZE)
        .map(|i| {
            let f = frame(
                &LocalEndpoint {
                    ipv4: remote_ip(i as u32),
                    ..host
                },
                classes[i % 3].ipv4,
                256,
            );
            let inner = &f[ethernet::HEADER_LEN..];
            let mut w = vec![0u8; encap::UNDERLAY_OVERHEAD + inner.len()];
            w[encap::UNDERLAY_OVERHEAD..].copy_from_slice(inner);
            encap::write_underlay(
                &mut w,
                &encap::EncapParams {
                    outer_src: Rloc::for_router_index(7),
                    outer_dst: Rloc::for_router_index(1),
                    vn,
                    group: GroupId(10),
                    policy_applied: false,
                    ttl: 8,
                    src_port: 50_000,
                    udp_checksum: encap::OuterChecksum::Zero,
                    inner_proto: encap::InnerProto::Ipv4,
                },
            )
            .unwrap();
            w
        })
        .collect();

    // A second switch with §5.3 ingress enforcement: remote
    // destinations resolve in the lockstep run and the hint check rides
    // the same pass. Classes cycle known-allow / known-deny / no hint
    // (the signaling gap: travels unenforced).
    let mut hint_cfg = SwitchConfig::new(Rloc::for_router_index(1));
    hint_cfg.border = Some(Rloc::for_router_index(99));
    hint_cfg.enforcement = EnforcementPoint::Ingress;
    let mut sw_hint = Switch::new(hint_cfg);
    sw_hint.attach(vn, host);
    sw_hint.install_matrix(&m);
    for i in 0..BATCH_SIZE as u32 {
        sw_hint.install_mapping(
            vn,
            EidPrefix::host(Eid::V4(remote_ip(i))),
            Rloc::for_router_index(2 + (i % 8) as u16),
            ttl,
            SimTime::ZERO,
        );
        match i as usize % 3 {
            0 => sw_hint.install_dst_hint(vn, Eid::V4(remote_ip(i)), GroupId(20)),
            1 => sw_hint.install_dst_hint(vn, Eid::V4(remote_ip(i)), GroupId(30)),
            _ => {} // unknown destination group
        }
    }
    let hint_frames: Vec<Vec<u8>> = (0..BATCH_SIZE)
        .map(|i| frame(&host, remote_ip(i as u32), 256))
        .collect();
    // Hinted-deny packets drop; known-allow and unknown-hint forward.
    let per_batch_hint_fwd = (BATCH_SIZE as u64).div_ceil(3) + BATCH_SIZE as u64 / 3;
    let per_batch_hint_drop = BATCH_SIZE as u64 - per_batch_hint_fwd;

    // Warm-up, then snapshot the shared counters for the delta check.
    run(&mut sw, &local_frames, true);
    run(&mut sw, &enforce_wire, false);
    run(&mut sw_hint, &hint_frames, true);
    let (base_allow, base_deny) = sw.acl().counters();
    let (hint_base_allow, hint_base_deny) = sw_hint.acl().counters();

    let before = allocations();
    let (mut deliver, mut drop, mut hint_fwd, mut hint_drop) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..ROUNDS {
        let (_, dv, dr) = run(&mut sw, &local_frames, true);
        deliver += dv;
        drop += dr;
        let (_, dv, dr) = run(&mut sw, &enforce_wire, false);
        deliver += dv;
        drop += dr;
        let (f, _, dr) = run(&mut sw_hint, &hint_frames, true);
        hint_fwd += f;
        hint_drop += dr;
    }
    let after = allocations();

    assert_eq!(
        deliver,
        2 * ROUNDS * per_batch_allow,
        "allow class delivered"
    );
    assert_eq!(
        drop,
        2 * ROUNDS * per_batch_deny,
        "deny + default classes dropped"
    );
    assert_eq!(
        hint_fwd,
        ROUNDS * per_batch_hint_fwd,
        "allow + unknown hints forwarded"
    );
    assert_eq!(
        hint_drop,
        ROUNDS * per_batch_hint_drop,
        "hinted denies dropped"
    );
    // Every enforced packet tallied into the shared Relaxed atomics —
    // the counting discipline survives the fused fast path.
    assert_eq!(
        sw.acl().counters(),
        (
            base_allow + ROUNDS * 2 * per_batch_allow,
            base_deny + ROUNDS * 2 * per_batch_deny
        ),
        "egress-enforcement switch: fused pass must count every verdict"
    );
    assert_eq!(
        sw_hint.acl().counters(),
        (
            hint_base_allow + ROUNDS * (BATCH_SIZE as u64).div_ceil(3),
            hint_base_deny + ROUNDS * per_batch_hint_drop
        ),
        "ingress-enforcement switch: only hinted packets count"
    );
    assert_eq!(
        after - before,
        0,
        "fused lookup+enforce performed {} heap allocations over {} packets",
        after - before,
        3 * ROUNDS * batch
    );
}
