//! Adversarial input on the dataplane parse paths: truncations, bit
//! flips and raw garbage must always come back as an `Error` verdict or
//! parse error — never a panic, never a bogus forward.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_dataplane::{encap, DropReason, LocalEndpoint, PacketBuf, Switch, SwitchConfig, Verdict};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn host() -> LocalEndpoint {
    LocalEndpoint {
        port: PortId(1),
        group: GroupId(10),
        mac: MacAddr::from_seed(1),
        ipv4: Ipv4Addr::new(10, 0, 0, 1),
    }
}

/// A switch with one attached endpoint, one remote mapping and an open
/// policy, so only *malformed* input can cause drops.
fn switch() -> Switch {
    let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
    cfg.border = Some(Rloc::for_router_index(99));
    cfg.default_action = sda_policy::Action::Allow;
    let mut sw = Switch::new(cfg);
    sw.attach(vn(), host());
    sw.install_mapping(
        vn(),
        EidPrefix::host(Eid::V4(Ipv4Addr::new(10, 9, 0, 5))),
        Rloc::for_router_index(7),
        SimDuration::from_secs(3600),
        SimTime::ZERO,
    );
    sw
}

/// A fully valid underlay packet addressed to the switch under test.
fn valid_wire() -> Vec<u8> {
    let h = host();
    let inner = ipv4::Repr {
        src: Ipv4Addr::new(10, 9, 0, 5),
        dst: h.ipv4,
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: 32,
        ttl: 64,
    };
    let mut wire = vec![0u8; encap::UNDERLAY_OVERHEAD + inner.buffer_len()];
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut wire[encap::UNDERLAY_OVERHEAD..],
    ));
    encap::write_underlay(
        &mut wire,
        &encap::EncapParams {
            outer_src: Rloc::for_router_index(7),
            outer_dst: Rloc::for_router_index(1),
            vn: vn(),
            group: GroupId(10),
            policy_applied: false,
            ttl: 8,
            src_port: 50_000,
            udp_checksum: encap::OuterChecksum::Full,
            inner_proto: encap::InnerProto::Ipv4,
        },
    )
    .unwrap();
    wire
}

/// A valid host-side Ethernet frame from the attached endpoint.
fn valid_frame() -> Vec<u8> {
    let h = host();
    let inner = ipv4::Repr {
        src: h.ipv4,
        dst: Ipv4Addr::new(10, 9, 0, 5),
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: 32,
        ttl: 64,
    };
    let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
    ethernet::Repr {
        dst: MacAddr::BROADCAST,
        src: h.mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut buf[ethernet::HEADER_LEN..],
    ));
    buf
}

#[test]
fn every_underlay_truncation_is_a_malformed_drop() {
    let mut sw = switch();
    let wire = valid_wire();
    for cut in 1..wire.len() {
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire[..cut]);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        assert_eq!(
            v[0],
            Verdict::Drop(DropReason::Malformed),
            "truncation at {cut} must drop as malformed"
        );
    }
    // Sanity: the untruncated packet is fine.
    let mut bufs = [PacketBuf::new()];
    bufs[0].load(&wire);
    let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
    assert!(matches!(v[0], Verdict::Deliver { .. }));
}

#[test]
fn every_ingress_truncation_drops() {
    let mut sw = switch();
    let frame = valid_frame();
    for cut in 0..frame.len() {
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame[..cut]);
        let v = sw.process_ingress(&mut bufs, SimTime::ZERO).to_vec();
        assert!(
            matches!(v[0], Verdict::Drop(_)),
            "ingress truncation at {cut} must drop, got {:?}",
            v[0]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Raw garbage through both directions: never a panic, and garbage
    /// never earns a Forward out of the egress path (the checksums and
    /// flag checks must catch it).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut sw = switch();
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&bytes);
        let _ = sw.process_ingress(&mut bufs, SimTime::ZERO);
        bufs[0].load(&bytes);
        let _ = sw.process_egress(&mut bufs, SimTime::ZERO);
        prop_assert!(encap::parse_underlay(&bytes).is_err() || bytes.len() >= 36);
    }

    /// Single bit flips over a valid underlay packet: the engine either
    /// still handles it (flips in payload or ECMP port are benign) or
    /// drops it — it must never panic, and a flipped header bit that
    /// breaks a checksum must not deliver.
    #[test]
    fn underlay_bitflips_never_panic(byte in 0usize..100, bit in 0u8..8) {
        let mut sw = switch();
        let mut wire = valid_wire();
        let idx = byte % wire.len();
        wire[idx] ^= 1 << bit;
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&wire);
        let v = sw.process_egress(&mut bufs, SimTime::ZERO).to_vec();
        // Flips inside the outer IPv4 header must be caught by its
        // checksum (except the checksum field itself compensating).
        if idx < 20 {
            prop_assert!(
                matches!(v[0], Verdict::Drop(_)),
                "outer-header flip at byte {idx} bit {bit} was not dropped: {:?}", v[0]
            );
        }
    }

    /// Ingress bit flips: never a panic; flips that keep the frame
    /// valid still classify, everything else drops.
    #[test]
    fn ingress_bitflips_never_panic(byte in 0usize..100, bit in 0u8..8) {
        let mut sw = switch();
        let mut frame = valid_frame();
        let idx = byte % frame.len();
        frame[idx] ^= 1 << bit;
        let mut bufs = [PacketBuf::new()];
        bufs[0].load(&frame);
        let _ = sw.process_ingress(&mut bufs, SimTime::ZERO);
    }
}
