//! Clone-and-swap stress: readers must never observe a torn FIB.
//!
//! The publisher swaps the shared tables 1,000 times between two
//! complete populations (every route → RLOC A, every route → RLOC B)
//! while reader threads resolve continuously through [`TableReader`]
//! handles. Every single lookup must land entirely in the old or
//! entirely in the new table: each burst resolves only to A or only to
//! B, never a mixture within one batch descent snapshot, and never a
//! miss — a torn arena would produce garbage RLOCs, misses or panics.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sda_dataplane::{EpochTables, SharedTables};
use sda_lisp::CacheOutcome;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A09_0000 | i))
}

const ROUTES: u32 = 512;
const SWAPS: u32 = 1_000;

fn population(rloc: Rloc) -> SharedTables {
    let mut t = SharedTables::new();
    for i in 0..ROUTES {
        t.install_mapping(
            vn(),
            EidPrefix::host(eid(i)),
            rloc,
            SimDuration::from_days(365),
            SimTime::ZERO,
        );
    }
    t.compact();
    t
}

#[test]
fn readers_never_observe_a_torn_fib_across_1k_swaps() {
    let old_rloc = Rloc::for_router_index(11);
    let new_rloc = Rloc::for_router_index(22);
    let epoch = EpochTables::new(population(old_rloc));
    let stop = AtomicBool::new(false);
    let lookups = AtomicU64::new(0);
    let now = SimTime::ZERO + SimDuration::from_secs(1);

    std::thread::scope(|s| {
        // Reader threads: batched shared lookups through epoch readers.
        for _ in 0..4 {
            let mut reader = epoch.reader();
            let stop = &stop;
            let lookups = &lookups;
            s.spawn(move || {
                let probes: Vec<Eid> = (0..32u32).map(|i| eid(i * 97 % ROUTES)).collect();
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let tables = reader.current();
                    tables
                        .map_cache()
                        .lookup_batch_shared(vn(), &probes, now, &mut out);
                    // Each lookup resolves against exactly one snapshot:
                    // old or new RLOC, never a miss, never garbage.
                    for o in &out {
                        match o {
                            CacheOutcome::Hit(r) => {
                                assert!(
                                    *r == old_rloc || *r == new_rloc,
                                    "torn FIB: resolved to unknown RLOC {r:?}"
                                );
                            }
                            other => panic!("torn FIB: installed route answered {other:?}"),
                        }
                    }
                    // Within one batch the snapshot is pinned, so the
                    // whole burst agrees on one population.
                    let first = out[0];
                    assert!(
                        out.iter().all(|o| *o == first),
                        "one batch must resolve against one snapshot"
                    );
                    lookups.fetch_add(out.len() as u64, Ordering::Relaxed);
                }
            });
        }

        // Publisher: 1k full-population swaps, alternating A/B.
        for k in 0..SWAPS {
            let rloc = if k % 2 == 0 { new_rloc } else { old_rloc };
            epoch.publish(population(rloc));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        lookups.load(Ordering::Relaxed) > 0,
        "readers actually ran under the swap storm"
    );
    // After the storm settles, a fresh reader sees the final epoch.
    let mut reader = epoch.reader();
    let tables = reader.current();
    let last = if (SWAPS - 1).is_multiple_of(2) {
        new_rloc
    } else {
        old_rloc
    };
    assert_eq!(
        tables.map_cache().lookup_shared(vn(), eid(0), now),
        CacheOutcome::Hit(last)
    );
    assert_eq!(epoch.epoch(), u64::from(SWAPS));
}
