//! # sda-bgp
//!
//! The **proactive baseline** of §4.3: BGP host routes distributed
//! through a centralized route reflector. This is what SDA's reactive
//! control plane is compared against in Fig. 11.
//!
//! Model (faithful to what makes proactive protocols slow under massive
//! mobility, per the paper's own analysis):
//!
//! * Every attach re-advertises the endpoint's host route to the route
//!   reflector; the reflector replicates the update to **all** peers —
//!   "the proactive approach replicates the network update to all 200
//!   edge routers".
//! * Like every production BGP speaker, the reflector **batches**
//!   updates per advertisement interval and walks its peer list on each
//!   flush. A mover's update therefore reaches different edges at
//!   meaningfully different times, and which edge *needs* the update is
//!   uncorrelated with where it sits in the walk — "the proactive
//!   approach updates edge routers randomly, i.e. not by their need for
//!   such update". That is the source of both the higher mean and the
//!   higher variance.
//! * Edges install updates with a per-route processing cost on their
//!   single-server control CPU, so 800 moves/s of churn also queues at
//!   the receivers.
//! * Data plane: senders forward straight to the edge their RIB names;
//!   an edge receiving traffic for an endpoint it no longer hosts
//!   **drops** it (no LISP-style old-edge forwarding exists here).
//!
//! The same auth delay used by the SDA scenario is applied on attach so
//! the comparison isolates the control-plane difference.

pub mod msg;
pub mod peer;
pub mod reflector;
pub mod rib;

pub use msg::{BgpConfig, BgpDirectory, BgpMsg};
pub use peer::BgpEdge;
pub use reflector::RouteReflector;
pub use rib::Rib;
