//! The centralized route reflector.
//!
//! Collects advertisements and, every advertisement interval, walks the
//! peer list sending each peer the pending batch. The per-peer walk plus
//! per-route replication cost is what staggers update arrival across the
//! 200 edges — and the walk order has nothing to do with which edge is
//! actively sending to the moved host.

use std::rc::Rc;

use sda_simnet::{Context, Node, NodeId, SimDuration};
use sda_types::Rloc;

use crate::msg::{BgpDirectory, BgpMsg, RouteUpdate};

const TIMER_FLUSH: u64 = 1;

/// The route-reflector node.
pub struct RouteReflector {
    dir: Rc<BgpDirectory>,
    /// iBGP peers (every edge).
    peers: Vec<Rloc>,
    /// Updates accumulated since the last flush.
    pending: Vec<RouteUpdate>,
    seq: u64,
    /// Total updates replicated (pending × peers, cumulative).
    replicated: u64,
}

impl RouteReflector {
    /// Creates a reflector with its peer list.
    pub fn new(dir: Rc<BgpDirectory>, peers: Vec<Rloc>) -> Self {
        RouteReflector {
            dir,
            peers,
            pending: Vec::new(),
            seq: 0,
            replicated: 0,
        }
    }

    /// Total peer-updates replicated so far (signaling volume).
    pub fn replicated(&self) -> u64 {
        self.replicated
    }
}

impl Node<BgpMsg> for RouteReflector {
    fn on_message(&mut self, ctx: &mut Context<'_, BgpMsg>, _from: NodeId, msg: BgpMsg) {
        match msg {
            BgpMsg::Advertise { eid, rloc } => {
                self.seq += 1;
                self.pending.push(RouteUpdate {
                    eid,
                    rloc,
                    seq: self.seq,
                });
                let _ = ctx;
            }
            other => {
                debug_assert!(false, "reflector received unexpected {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BgpMsg>, token: u64) {
        if token != TIMER_FLUSH && token != 0 {
            return;
        }
        if !self.pending.is_empty() {
            let batch = std::mem::take(&mut self.pending);
            let cost_per_peer = self
                .dir
                .config
                .replicate_cost
                .saturating_mul(batch.len() as u64);
            // Walk the peer list: peer i's batch leaves after i
            // replication slots — the arrival stagger.
            let mut offset = SimDuration::ZERO;
            for peer in &self.peers {
                offset = offset + cost_per_peer;
                self.replicated += batch.len() as u64;
                ctx.send_after(
                    offset,
                    self.dir.node_of(*peer),
                    BgpMsg::Batch(batch.clone()),
                );
            }
            // The reflector CPU was busy for the whole walk.
            ctx.busy(offset);
            ctx.metrics().add(
                "bgp.updates_replicated",
                (batch.len() * self.peers.len()) as u64,
            );
        }
        ctx.set_timer(self.dir.config.flush_interval, TIMER_FLUSH);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
