//! Messages and shared wiring for the BGP baseline simulation.

use std::collections::BTreeMap;

use sda_simnet::{NodeId, SimDuration};
use sda_types::{Eid, MacAddr, Rloc};
use std::net::Ipv4Addr;

/// One host-route update as reflected to peers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteUpdate {
    /// The endpoint's EID.
    pub eid: Eid,
    /// The edge now serving it.
    pub rloc: Rloc,
    /// Reflector-assigned recency.
    pub seq: u64,
}

/// The message enum of the baseline simulation.
#[derive(Clone, PartialEq, Debug)]
pub enum BgpMsg {
    /// Edge → reflector: (re-)advertise a host route.
    Advertise {
        /// The endpoint's EID.
        eid: Eid,
        /// The advertising edge.
        rloc: Rloc,
    },
    /// Reflector → edge: a flushed batch of updates.
    Batch(Vec<RouteUpdate>),
    /// A data packet between fabric routers.
    Data {
        /// Destination endpoint.
        dst: Eid,
        /// Flow id.
        flow: u64,
        /// Record delivery in metrics.
        track: bool,
    },
    /// Workload events.
    Host(BgpHostEvent),
}

/// Host events for the baseline (mirrors `sda-core`'s, minus policy —
/// an identical fixed auth delay is charged instead so the comparison
/// isolates the control planes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BgpHostEvent {
    /// Endpoint attached here.
    Attach {
        /// L2 identity.
        mac: MacAddr,
        /// Overlay IPv4 (the advertised host route).
        ipv4: Ipv4Addr,
    },
    /// Endpoint left.
    Detach {
        /// L2 identity.
        mac: MacAddr,
    },
    /// Endpoint sends a packet.
    Send {
        /// Destination EID.
        dst: Eid,
        /// Flow id.
        flow: u64,
        /// Measurement flag.
        track: bool,
    },
}

/// Timing knobs of the baseline.
#[derive(Clone, Copy, Debug)]
pub struct BgpConfig {
    /// Attach-side AAA delay (matched to the SDA scenario's).
    pub auth_delay: SimDuration,
    /// Reflector advertisement interval (per-peer batch flush cadence).
    pub flush_interval: SimDuration,
    /// Reflector per-route-per-peer replication cost.
    pub replicate_cost: SimDuration,
    /// Edge per-route installation cost.
    pub install_cost: SimDuration,
}

impl Default for BgpConfig {
    fn default() -> Self {
        BgpConfig {
            auth_delay: SimDuration::from_micros(800),
            flush_interval: SimDuration::from_millis(20),
            replicate_cost: SimDuration::from_micros(2),
            install_cost: SimDuration::from_micros(30),
        }
    }
}

/// Immutable wiring shared by the baseline nodes.
#[derive(Debug)]
pub struct BgpDirectory {
    /// RLOC → node.
    pub node_of_rloc: BTreeMap<Rloc, NodeId>,
    /// The route reflector's node.
    pub reflector: NodeId,
    /// Timing knobs.
    pub config: BgpConfig,
}

impl BgpDirectory {
    /// The node serving `rloc`.
    ///
    /// # Panics
    /// Panics on unknown RLOCs (wiring bug).
    pub fn node_of(&self, rloc: Rloc) -> NodeId {
        *self
            .node_of_rloc
            .get(&rloc)
            .unwrap_or_else(|| panic!("no node for rloc {rloc}"))
    }
}
