//! A BGP-fabric edge router: full RIB, proactive updates, no reactive
//! machinery (and no old-edge forwarding — traffic to a moved endpoint
//! blackholes until the sender's RIB converges, which is why Fig. 11's
//! proactive CDF sits an order of magnitude to the right).

use std::collections::BTreeMap;
use std::rc::Rc;

use sda_simnet::{Context, Node, NodeId};
use sda_types::{Eid, MacAddr, Rloc};

use crate::msg::{BgpDirectory, BgpHostEvent, BgpMsg};
use crate::rib::Rib;

/// Update batches at least this large count as route floods (initial
/// full-table sync, mass handover) and trigger a RIB arena compaction
/// after installation; smaller steady-state flushes do not.
const RIB_COMPACT_BATCH: usize = 64;

/// Counters for scenario assertions.
#[derive(Clone, Copy, Default, Debug)]
pub struct BgpEdgeStats {
    /// Packets delivered to locally attached endpoints.
    pub delivered: u64,
    /// Packets dropped: destination not local and RIB empty for it.
    pub no_route: u64,
    /// Packets dropped: RIB pointed here but the endpoint left
    /// (the mobility blackhole).
    pub blackholed: u64,
    /// Advertisements sent.
    pub advertised: u64,
    /// Route updates installed.
    pub installed: u64,
}

/// A proactive-control-plane edge.
pub struct BgpEdge {
    rloc: Rloc,
    dir: Rc<BgpDirectory>,
    rib: Rib,
    /// Locally attached endpoints: EID → present (keyed by IPv4 EID).
    local: BTreeMap<Eid, MacAddr>,
    by_mac: BTreeMap<MacAddr, Eid>,
    stats: BgpEdgeStats,
}

impl BgpEdge {
    /// Creates an edge serving `rloc`.
    pub fn new(rloc: Rloc, dir: Rc<BgpDirectory>) -> Self {
        BgpEdge {
            rloc,
            dir,
            rib: Rib::new(),
            local: BTreeMap::new(),
            by_mac: BTreeMap::new(),
            stats: BgpEdgeStats::default(),
        }
    }

    /// This edge's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Counters.
    pub fn stats(&self) -> BgpEdgeStats {
        self.stats
    }

    /// RIB size — the proactive state cost (every edge holds every
    /// route; compare with the reactive edge's map-cache).
    pub fn rib_len(&self) -> usize {
        self.rib.len()
    }
}

impl Node<BgpMsg> for BgpEdge {
    fn on_message(&mut self, ctx: &mut Context<'_, BgpMsg>, _from: NodeId, msg: BgpMsg) {
        match msg {
            BgpMsg::Host(BgpHostEvent::Attach { mac, ipv4 }) => {
                let eid = Eid::V4(ipv4);
                self.local.insert(eid, mac);
                self.by_mac.insert(mac, eid);
                self.stats.advertised += 1;
                // Matched AAA delay, then advertise to the reflector.
                ctx.send_after(
                    self.dir.config.auth_delay,
                    self.dir.reflector,
                    BgpMsg::Advertise {
                        eid,
                        rloc: self.rloc,
                    },
                );
            }
            BgpMsg::Host(BgpHostEvent::Detach { mac }) => {
                if let Some(eid) = self.by_mac.remove(&mac) {
                    self.local.remove(&eid);
                }
                // No withdraw: the re-advertisement from the new edge
                // supersedes the route, as in the paper's move test.
            }
            BgpMsg::Host(BgpHostEvent::Send { dst, flow, track }) => {
                if self.local.contains_key(&dst) {
                    self.deliver(ctx, dst, flow, track);
                    return;
                }
                match self.rib.lookup(dst) {
                    Some(rloc) if rloc != self.rloc => {
                        ctx.send(self.dir.node_of(rloc), BgpMsg::Data { dst, flow, track });
                    }
                    Some(_) => {
                        // RIB says "here" but the endpoint left.
                        self.stats.blackholed += 1;
                    }
                    None => {
                        self.stats.no_route += 1;
                    }
                }
            }
            BgpMsg::Data { dst, flow, track } => {
                if self.local.contains_key(&dst) {
                    self.deliver(ctx, dst, flow, track);
                } else {
                    // Proactive fabric: no onward forwarding machinery.
                    self.stats.blackholed += 1;
                    ctx.metrics().incr("bgp.blackholed");
                }
            }
            BgpMsg::Batch(updates) => {
                let cost = self
                    .dir
                    .config
                    .install_cost
                    .saturating_mul(updates.len() as u64);
                ctx.busy(cost);
                let large = updates.len() >= RIB_COMPACT_BATCH;
                for u in updates {
                    if self.rib.install(u.eid, u.rloc, u.seq) {
                        self.stats.installed += 1;
                    }
                }
                // A large batch is a route flood (initial full-table
                // sync, mass handover): re-lay the RIB arena in DFS
                // order once it lands so lookups walk sequential
                // memory. Steady single-update flushes skip it.
                if large {
                    self.rib.compact();
                }
            }
            other => {
                debug_assert!(false, "edge received unexpected {other:?}");
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl BgpEdge {
    fn deliver(&mut self, ctx: &mut Context<'_, BgpMsg>, dst: Eid, flow: u64, track: bool) {
        self.stats.delivered += 1;
        ctx.metrics().incr("bgp.delivered");
        if track {
            let name = format!("deliver.{dst}");
            let now = ctx.now();
            ctx.metrics().record(&name, now, flow as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reflector::RouteReflector;
    use sda_simnet::{SimDuration, SimTime, Simulator};
    use std::net::Ipv4Addr;

    /// Builds a reflector + n edges; returns (sim, dir, edge node ids).
    fn build(n: usize, seed: u64) -> (Simulator<BgpMsg>, Rc<BgpDirectory>, Vec<NodeId>) {
        let mut node_of_rloc = BTreeMap::new();
        let reflector_id = NodeId(0);
        for i in 0..n {
            node_of_rloc.insert(Rloc::for_router_index(1 + i as u16), NodeId(1 + i as u32));
        }
        let dir = Rc::new(BgpDirectory {
            node_of_rloc,
            reflector: reflector_id,
            config: crate::msg::BgpConfig::default(),
        });
        let mut sim = Simulator::new(seed);
        let peers: Vec<Rloc> = (0..n)
            .map(|i| Rloc::for_router_index(1 + i as u16))
            .collect();
        let got = sim.add_node(Box::new(RouteReflector::new(dir.clone(), peers)));
        assert_eq!(got, reflector_id);
        let mut edges = Vec::new();
        for i in 0..n {
            let rloc = Rloc::for_router_index(1 + i as u16);
            edges.push(sim.add_node(Box::new(BgpEdge::new(rloc, dir.clone()))));
        }
        // Kick the reflector's flush timer.
        sim.arm_timer_at(SimTime::ZERO, reflector_id, 0);
        (sim, dir, edges)
    }

    fn edge(sim: &Simulator<BgpMsg>, id: NodeId) -> &BgpEdge {
        sim.node(id)
            .as_any()
            .unwrap()
            .downcast_ref::<BgpEdge>()
            .unwrap()
    }

    #[test]
    fn attach_floods_route_to_every_peer() {
        let (mut sim, _dir, edges) = build(4, 1);
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        sim.inject_at(
            SimTime::ZERO,
            edges[0],
            BgpMsg::Host(BgpHostEvent::Attach {
                mac: MacAddr::from_seed(1),
                ipv4: ip,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(edge(&sim, *e).rib_len(), 1, "edge {i} must hold the route");
        }
    }

    #[test]
    fn delivery_follows_rib_and_blackholes_after_move() {
        let (mut sim, _dir, edges) = build(3, 2);
        let mac = MacAddr::from_seed(1);
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Eid::V4(ip);
        // Host on edge 1; converge.
        sim.inject_at(
            SimTime::ZERO,
            edges[1],
            BgpMsg::Host(BgpHostEvent::Attach { mac, ipv4: ip }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(200));
        // Edge 0 sends: delivered at edge 1.
        sim.inject_at(
            SimTime::ZERO + SimDuration::from_millis(210),
            edges[0],
            BgpMsg::Host(BgpHostEvent::Send {
                dst,
                flow: 1,
                track: false,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(300));
        assert_eq!(edge(&sim, edges[1]).stats().delivered, 1);

        // Host moves to edge 2 but we stop before convergence: edge 0
        // still sends to edge 1 → blackhole.
        sim.inject_at(
            SimTime::ZERO + SimDuration::from_millis(310),
            edges[1],
            BgpMsg::Host(BgpHostEvent::Detach { mac }),
        );
        sim.inject_at(
            SimTime::ZERO + SimDuration::from_millis(311),
            edges[2],
            BgpMsg::Host(BgpHostEvent::Attach { mac, ipv4: ip }),
        );
        sim.inject_at(
            SimTime::ZERO + SimDuration::from_millis(312),
            edges[0],
            BgpMsg::Host(BgpHostEvent::Send {
                dst,
                flow: 2,
                track: false,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(313));
        assert_eq!(
            edge(&sim, edges[1]).stats().blackholed,
            1,
            "pre-convergence drop"
        );

        // After convergence the same send reaches edge 2.
        sim.inject_at(
            SimTime::ZERO + SimDuration::from_millis(400),
            edges[0],
            BgpMsg::Host(BgpHostEvent::Send {
                dst,
                flow: 3,
                track: false,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(500));
        assert_eq!(edge(&sim, edges[2]).stats().delivered, 1);
    }

    #[test]
    fn every_edge_carries_full_state() {
        // The proactive state cost: attach 50 hosts across 5 edges;
        // every edge ends with 50 routes.
        let (mut sim, _dir, edges) = build(5, 3);
        for i in 0..50u32 {
            let e = edges[(i % 5) as usize];
            sim.inject_at(
                SimTime::ZERO,
                e,
                BgpMsg::Host(BgpHostEvent::Attach {
                    mac: MacAddr::from_seed(i),
                    ipv4: Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                }),
            );
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        for e in &edges {
            assert_eq!(edge(&sim, *e).rib_len(), 50);
        }
    }

    #[test]
    fn updates_arrive_staggered_across_peers() {
        // One move, many peers: install times must differ (the walk).
        let (mut sim, _dir, edges) = build(16, 4);
        sim.inject_at(
            SimTime::ZERO,
            edges[0],
            BgpMsg::Host(BgpHostEvent::Attach {
                mac: MacAddr::from_seed(1),
                ipv4: Ipv4Addr::new(10, 0, 0, 1),
            }),
        );
        // Run to completion; the point is stagger, checked via the
        // reflector's replication accounting.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("bgp.updates_replicated"), 16);
    }
}
