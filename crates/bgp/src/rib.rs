//! The routing information base each BGP edge holds: every host route
//! in the network (the proactive cost Fig. 9 quantifies against).
//!
//! Stored in the same inline-key [`EidTrie`] as the reactive map-cache,
//! so the proactive-vs-reactive comparison measures the same lookup
//! machinery and differs only in *how much* state each design installs.

use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc};

/// A full host-route table: EID → serving edge.
#[derive(Default, Debug, Clone)]
pub struct Rib {
    routes: EidTrie<(Rloc, u64)>,
}

impl Rib {
    /// Empty RIB.
    pub fn new() -> Self {
        Rib::default()
    }

    /// Installs `eid → rloc` if `seq` is newer than the stored route.
    /// Returns true when the route changed (stale reordered updates are
    /// ignored — BGP's path-selection recency, collapsed to a sequence).
    /// One trie descent: the freshness check mutates in place.
    pub fn install(&mut self, eid: Eid, rloc: Rloc, seq: u64) -> bool {
        if let Some((p, entry)) = self.routes.lookup_mut(&eid) {
            // Only host routes live here; guard against a covering match.
            if p.is_host() {
                if entry.1 >= seq {
                    return false;
                }
                *entry = (rloc, seq);
                return true;
            }
        }
        self.routes.insert(EidPrefix::host(eid), (rloc, seq));
        true
    }

    /// Removes the route for `eid`.
    pub fn withdraw(&mut self, eid: Eid) -> bool {
        self.routes.remove(&EidPrefix::host(eid)).is_some()
    }

    /// Next hop for `eid`.
    pub fn lookup(&self, eid: Eid) -> Option<Rloc> {
        self.routes.get(&EidPrefix::host(eid)).map(|(r, _)| *r)
    }

    /// Re-lays the route trie arena in DFS preorder (see
    /// [`sda_trie::PatriciaTrie::compact`]). Call after bulk route
    /// sync (initial full-table flood) so lookups walk
    /// nearly-sequential memory.
    pub fn compact(&mut self) {
        self.routes.compact();
    }

    /// Trie-arena diagnostics for the route table.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        self.routes.mem_stats()
    }

    /// Number of installed routes — every edge carries all of them,
    /// which is exactly the state the reactive design avoids.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    #[test]
    fn install_lookup_withdraw() {
        let mut rib = Rib::new();
        assert!(rib.install(eid(1), Rloc::for_router_index(1), 1));
        assert_eq!(rib.lookup(eid(1)), Some(Rloc::for_router_index(1)));
        assert!(rib.withdraw(eid(1)));
        assert!(!rib.withdraw(eid(1)));
        assert!(rib.lookup(eid(1)).is_none());
    }

    #[test]
    fn stale_updates_ignored() {
        let mut rib = Rib::new();
        rib.install(eid(1), Rloc::for_router_index(1), 5);
        assert!(
            !rib.install(eid(1), Rloc::for_router_index(2), 4),
            "older seq"
        );
        assert!(
            !rib.install(eid(1), Rloc::for_router_index(2), 5),
            "same seq"
        );
        assert_eq!(rib.lookup(eid(1)), Some(Rloc::for_router_index(1)));
        assert!(rib.install(eid(1), Rloc::for_router_index(2), 6));
        assert_eq!(rib.lookup(eid(1)), Some(Rloc::for_router_index(2)));
    }

    #[test]
    fn len_counts_routes() {
        let mut rib = Rib::new();
        for i in 0..10 {
            rib.install(eid(i), Rloc::for_router_index(1), 1);
        }
        assert_eq!(rib.len(), 10);
    }
}
