//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! benchmark-harness API subset the workspace uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement model: per benchmark, a warm-up phase sizes the per-sample
//! iteration count, then `sample_size` samples are taken, each timing a
//! fixed iteration batch. The reported statistics are the per-iteration
//! median / mean / p95 across samples — the same quantities the real
//! criterion prints, without its bootstrap analysis.
//!
//! Beyond the real API, [`Criterion::results`] and
//! [`Criterion::write_json`] expose the collected numbers so benches can
//! emit machine-readable `BENCH_*.json` baselines (see ROADMAP.md
//! "Benchmarks").

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// 95th-percentile time per iteration, nanoseconds.
    pub p95_ns: f64,
    /// Total iterations measured (excludes warm-up).
    pub iterations: u64,
}

/// Throughput annotation (recorded, not yet reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a single parameter (e.g. a size sweep point).
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// Id from a function name plus parameter.
    pub fn new<S: Into<String>, P: Display>(name: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample_size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// All measurements collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes collected measurements as a JSON array to `path`.
    ///
    /// Schema: `[{group, id, median_ns, mean_ns, p95_ns, iterations}]`,
    /// ordered as measured. Hand-rendered (no serde in the offline build).
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut s = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            s.push_str(&format!(
                "  {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {:.2}, \
                 \"mean_ns\": {:.2}, \"p95_ns\": {:.2}, \"iterations\": {}}}{}\n",
                escape(&r.group),
                escape(&r.id),
                r.median_ns,
                r.mean_ns,
                r.p95_ns,
                r.iterations,
                sep,
            ));
        }
        s.push_str("]\n");
        std::fs::write(path, s)
    }

    /// Prints a closing summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        eprintln!("benchmarks complete: {} measurements", self.results.len());
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
        );
        f(&mut b, input);
        self.record(id, b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
        );
        f(&mut b);
        self.record(id, b);
        self
    }

    fn record(&mut self, id: BenchmarkId, b: Bencher) {
        let r = b.into_result(&self.name, &id.id);
        eprintln!(
            "{}/{:<12} median {:>12} mean {:>12} p95 {:>12} ({} iters)",
            r.group,
            r.id,
            fmt_ns(r.median_ns),
            fmt_ns(r.mean_ns),
            fmt_ns(r.p95_ns),
            r.iterations,
        );
        self.criterion.results.push(r);
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns_per_iter: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            samples_ns_per_iter: Vec::new(),
            total_iters: 0,
        }
    }

    /// Measures `f`, called in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until warm_up_time elapses, measuring speed.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut batch: u64 = 1;
        while warm_start.elapsed() < self.warm_up_time {
            for _ in 0..batch {
                black_box(f());
            }
            warm_iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        let warm_elapsed = warm_start.elapsed().as_nanos().max(1) as f64;
        let ns_per_iter_est = warm_elapsed / warm_iters.max(1) as f64;

        // Size each sample so all samples fit in measurement_time.
        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((per_sample_ns / ns_per_iter_est) as u64).max(1);

        self.samples_ns_per_iter.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter
                .push(elapsed / iters_per_sample as f64);
            self.total_iters += iters_per_sample;
        }
    }

    fn into_result(self, group: &str, id: &str) -> BenchResult {
        let mut v = self.samples_ns_per_iter;
        assert!(!v.is_empty(), "Bencher::iter was never called");
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let median = v[v.len() / 2];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let p95 = v[(v.len() * 95 / 100).min(v.len() - 1)];
        BenchResult {
            group: group.to_string(),
            id: id.to_string(),
            median_ns: median,
            mean_ns: mean,
            p95_ns: p95,
            iterations: self.total_iters,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
