//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the narrow API subset it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`rngs::SmallRng`]. The generator is xoshiro256++ (the same family the
//! real `SmallRng` uses on 64-bit targets), seeded through SplitMix64, so
//! streams are deterministic per seed and of good statistical quality for
//! simulation workloads.
//!
//! This is NOT a cryptographic RNG and intentionally implements nothing
//! beyond what the workspace calls.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `high > low` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, high)
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++: the small, fast, non-crypto generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let x: u8 = r.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_impl_rng_ref() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = SmallRng::seed_from_u64(3);
        assert!(draw(&mut r) < 100);
    }
}
