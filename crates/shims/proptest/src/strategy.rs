//! The [`Strategy`] trait and primitive strategies.
//!
//! A strategy is a pure generator: `generate(rng) -> Value`, plus an
//! optional *halving shrink*: `shrink(&failing_value)` proposes one
//! simpler value (half-way toward the strategy's minimum), or `None`
//! when no simpler value exists. Integer-range and collection-length
//! strategies shrink; combinators that cannot invert their mapping
//! (`prop_map`, `prop_flat_map`, `prop_oneof!`) do not — their failing
//! cases still reproduce via the deterministic case seed.

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes one strictly simpler value (halving toward the
    /// strategy's minimum), or `None` when `value` is already minimal
    /// or the strategy cannot shrink. The runner applies this
    /// repeatedly while the test keeps failing, so failing cases
    /// minimize instead of only reporting a case seed.
    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        let _ = value;
        None
    }

    /// Maps the produced value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from the produced value and draws from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries until the predicate holds (bounded; panics if the filter
    /// rejects everything).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Option<T> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        )
    }
    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        self.inner.shrink(value).filter(|v| (self.f)(v))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`crate::any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`crate::any`].
pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                // Halve the distance to the lower bound.
                (*value > self.start).then(|| self.start + (*value - self.start) / 2)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width u64 range: any value works.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                let lo = *self.start();
                (*value > lo).then(|| lo + (*value - lo) / 2)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                // Halve the distance to the lower bound; stop once the
                // step is too small to matter.
                let dist = *value - self.start;
                (dist > (self.end - self.start) * 1e-3)
                    .then(|| self.start + dist / 2.0)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let frac = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + frac * (hi - lo)
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                let dist = *value - lo;
                (dist > (hi - lo) * 1e-3).then(|| lo + dist / 2.0)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// The runner-facing view of a test's full strategy tuple: generate all
/// inputs at once, and propose shrink candidates (one per shrinkable
/// position, that position halved, the others kept). Implemented for
/// strategy tuples of arity 1–8 — the shapes the [`crate::proptest!`]
/// macro produces.
pub trait TupleStrategy {
    /// The generated input tuple. `Clone` so shrink attempts can re-run
    /// the test body; `Debug` so minimized counterexamples print.
    type Value: Clone + core::fmt::Debug;

    /// Draws one full input tuple.
    fn generate_tuple(&self, rng: &mut TestRng) -> Self::Value;

    /// Pushes up to one candidate per tuple position into `out`.
    fn shrink_candidates(&self, value: &Self::Value, out: &mut Vec<Self::Value>);
}

macro_rules! impl_tuple_runner {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> TupleStrategy for ($($name,)+)
        where
            $($name::Value: Clone + core::fmt::Debug,)+
        {
            type Value = ($($name::Value,)+);
            fn generate_tuple(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink_candidates(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
                $(
                    if let Some(s) = self.$idx.shrink(&value.$idx) {
                        let mut c = value.clone();
                        c.$idx = s;
                        out.push(c);
                    }
                )+
            }
        }
    };
}
impl_tuple_runner!(A: 0);
impl_tuple_runner!(A: 0, B: 1);
impl_tuple_runner!(A: 0, B: 1, C: 2);
impl_tuple_runner!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_runner!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_runner!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_runner!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_runner!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
