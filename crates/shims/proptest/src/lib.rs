//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate vendors the
//! API subset the workspace's property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! [`any`], integer-range strategies, tuple strategies, [`collection::vec`],
//! [`collection::hash_set`], [`option::of`], [`prop_oneof!`] and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Halving shrink only.** When a case fails, the runner repeatedly
//!   re-runs the body with each input halved toward its strategy's
//!   minimum (integer ranges and collection lengths shrink; `prop_map`
//!   and friends cannot invert their mapping and do not), reporting the
//!   minimized counterexample. Real proptest explores a richer shrink
//!   tree; halving already turns "failed with `Vec` of 97 ops" into a
//!   handful.
//! * **Determinism.** Case seeds derive from the test name and case index,
//!   so every run explores the same inputs. `PROPTEST_CASES` (env) scales
//!   the case count.

pub mod runner;
pub mod strategy;

pub mod test_runner {
    //! Test configuration and the per-case RNG.

    /// Mirror of `proptest::test_runner::Config` (the subset used).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Applies the `PROPTEST_CASES` env override, if set.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// SplitMix64-based case RNG (deterministic per seed).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case, derived from the test-name hash and index.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash of a test name, for stable per-test seeds.
    pub fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::HashSet;
    use std::hash::Hash;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification: `n`, `a..b` or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
            // Halve the length toward the size range's lower bound —
            // the "length strategy" shrink: a failing 97-op sequence
            // minimizes to the shortest prefix that still fails.
            let lo = self.size.lo;
            (value.len() > lo).then(|| value[..lo + (value.len() - lo) / 2].to_vec())
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates are retried a bounded
    /// number of times, so the set may come up slightly short of the drawn
    /// size when the element domain is small.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = HashSet::with_capacity(want);
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` about 1 in 4 draws, `Some(inner)` otherwise (proptest's
    /// default weighting is 3:1 toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Strategy producing any value of `T` (via [`strategy::Arbitrary`]).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    /// Re-export so `proptest::collection::vec` also resolves via prelude
    /// paths used in some files.
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The property-test entry macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic random cases via
/// [`runner::run`], which minimizes failing inputs by halving shrink.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                config,
                ($($strat,)+),
                // Proptest bodies may `return Ok(())` early; run them in
                // a Result-returning closure to accept that form.
                |__vals| {
                    let ($($pat,)+) = __vals;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}
