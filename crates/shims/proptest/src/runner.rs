//! The case runner behind [`crate::proptest!`]: deterministic case
//! generation, failure capture, and greedy halving minimization.

use std::panic::{self, AssertUnwindSafe};

use crate::strategy::TupleStrategy;
use crate::test_runner::{name_seed, ProptestConfig, TestRng};

/// Upper bound on accepted shrink steps — halving converges in ≤ 64
/// steps per input, so this is generosity, not a tuning knob.
const MAX_SHRINK_STEPS: usize = 512;

/// Runs one property: `config.cases` deterministic cases of `strats`,
/// each fed to `body`. On failure, greedily minimizes the inputs via
/// each strategy's halving [`crate::strategy::Strategy::shrink`] while
/// the body keeps failing, then panics with the minimized
/// counterexample (and the original case seed, which still reproduces
/// the pre-shrink input).
pub fn run<TS: TupleStrategy>(
    test_name: &'static str,
    config: ProptestConfig,
    strats: TS,
    body: impl Fn(TS::Value) -> Result<(), String>,
) {
    let base = name_seed(test_name);
    for case in 0..config.effective_cases() {
        let case_seed = base ^ (u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut rng = TestRng::from_seed(case_seed);
        let vals = strats.generate_tuple(&mut rng);
        let Some(failure) = run_catching(&body, vals.clone()) else {
            continue;
        };
        let (min_vals, min_failure, steps) = minimize(&strats, &body, vals, failure);
        panic!(
            "proptest: {test_name} failed at case {case} (seed {case_seed:#x}; seeds are \
             deterministic, rerun reproduces it)\nminimized after {steps} shrink step(s) \
             to:\n{min_vals:#?}\nfailure: {min_failure}"
        );
    }
}

/// Runs the body once, converting a panic or an `Err` into the failure
/// message. `None` means the case passed.
fn run_catching<V, F: Fn(V) -> Result<(), String>>(body: &F, vals: V) -> Option<String> {
    match panic::catch_unwind(AssertUnwindSafe(|| body(vals))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        ),
    }
}

/// Greedy minimization: while some position's halved input still fails,
/// adopt it and restart the position scan.
///
/// The default panic hook is silenced for the duration so the dozens of
/// intermediate failing runs do not spam stderr (the hook is global: a
/// test failing *concurrently* in another thread would also be muted
/// during this window — an accepted shim trade-off).
fn minimize<TS: TupleStrategy>(
    strats: &TS,
    body: &impl Fn(TS::Value) -> Result<(), String>,
    mut cur: TS::Value,
    mut failure: String,
    // Returns (minimized inputs, their failure message, accepted steps).
) -> (TS::Value, String, usize) {
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut steps = 0usize;
    let mut candidates = Vec::new();
    'outer: while steps < MAX_SHRINK_STEPS {
        candidates.clear();
        strats.shrink_candidates(&cur, &mut candidates);
        for cand in candidates.drain(..) {
            if let Some(f) = run_catching(body, cand.clone()) {
                cur = cand;
                failure = f;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    panic::set_hook(prev_hook);
    (cur, failure, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn range_shrink_halves_toward_lo() {
        let s = 10u32..1000;
        assert_eq!(s.shrink(&810), Some(10 + 400));
        assert_eq!(s.shrink(&11), Some(10));
        assert_eq!(s.shrink(&10), None);
        let inc = 0u8..=8;
        assert_eq!(inc.shrink(&8), Some(4));
        assert_eq!(inc.shrink(&0), None);
    }

    #[test]
    fn vec_shrink_halves_length() {
        let s = crate::collection::vec(0u32..100, 2..10);
        let v = vec![50u32; 9];
        let shrunk = s.shrink(&v).unwrap();
        assert_eq!(shrunk.len(), 2 + (9 - 2) / 2);
        assert_eq!(s.shrink(&vec![50u32; 2]), None, "at the lower bound");
    }

    #[test]
    fn failing_property_minimizes_under_halving() {
        // Fails for v >= 10: the minimizer must land on a value that
        // still fails but whose next halving would pass — i.e. in
        // [10, 19] rather than wherever generation started.
        let result = panic::catch_unwind(|| {
            run(
                "shrink_demo",
                ProptestConfig::with_cases(64),
                (0u32..1000,),
                |(v,)| {
                    if v >= 10 {
                        return Err(format!("{v} too big"));
                    }
                    Ok(())
                },
            );
        });
        let payload = result.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("minimized"), "{msg}");
        let v: u32 = msg
            .lines()
            .find_map(|l| l.trim().trim_end_matches(',').parse().ok())
            .expect("minimized value printed");
        assert!((10..20).contains(&v), "not halving-minimal: {v} ({msg})");
        assert!(msg.contains("too big"), "{msg}");
    }

    #[test]
    fn multi_position_shrink_minimizes_each_input() {
        // Fails when a + b >= 30; minimal failing pair under halving
        // from any start converges with both inputs shrunk as far as
        // the predicate allows.
        let result = panic::catch_unwind(|| {
            run(
                "shrink_pair",
                ProptestConfig::with_cases(64),
                (0u32..1000, 0u32..1000),
                |(a, b)| {
                    if a + b >= 30 {
                        return Err("sum too big".into());
                    }
                    Ok(())
                },
            );
        });
        let payload = result.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        // Parse the two minimized numbers back out of the Debug tuple.
        let nums: Vec<u32> = msg
            .lines()
            .filter_map(|l| l.trim().trim_end_matches(',').parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "two inputs expected in {msg}");
        let (a, b) = (nums[0], nums[1]);
        assert!(a + b >= 30, "minimized pair must still fail: {msg}");
        // Halving cannot overshoot: one more halving of either input
        // would make the property pass.
        for (x, y) in [(a / 2, b), (a, b / 2)] {
            assert!(x + y < 30 || (a, b) == (x, y), "not minimal: {msg}");
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        run(
            "always_passes",
            ProptestConfig::with_cases(16),
            (0u32..100,),
            |(_v,)| Ok(()),
        );
    }
}
