//! The differential oracle harness: generated packet populations are
//! replayed through **both** data-plane implementations — the byte
//! engine (`sda_dataplane::Switch`) and the structured decision model
//! (`sda_core::pipeline::oracle`, built on the historical pure
//! `ingress`/`egress` functions) — and every packet's verdict and punt
//! list must agree exactly.
//!
//! The two sides share state (the oracle reads the switch's own
//! `SharedTables`) but no decision code, so any divergence in
//! forwarding semantics fails loudly here. The populations cover every
//! class the fabric sees: local delivery (allowed/denied), remote
//! hit/stale/expired, self-pointing mappings, misses with and without
//! the default route, external prefixes, L2 (MAC-EID) flows, both
//! outer-checksum policies, both §5.3 enforcement points, TTL expiry,
//! spoofed and unknown sources, truncations and raw garbage.
//!
//! This harness is what flushed out (and now pins) the historical
//! simulator/engine divergences: the hardcoded full-vs-zero outer UDP
//! checksum and the off-by-one outer-TTL conventions.

use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::pipeline::oracle;
use sda_dataplane::{
    encap, InnerProto, LocalEndpoint, OuterChecksum, PacketBuf, Punt, Switch, SwitchConfig, Verdict,
};
use sda_policy::{Action, ConnectivityMatrix, EnforcementPoint};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, Ipv4Prefix, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

const USERS: GroupId = GroupId(10);
const INFRA: GroupId = GroupId(20);
const DENIED: GroupId = GroupId(66);

fn vn(n: u32) -> VnId {
    VnId::new(n).unwrap()
}

fn ep(seed: u32, group: GroupId) -> LocalEndpoint {
    LocalEndpoint {
        port: PortId(seed as u16),
        group,
        mac: MacAddr::from_seed(seed),
        ipv4: Ipv4Addr::new(10, 0, (seed >> 8) as u8, seed as u8),
    }
}

/// The fixture: one switch plus the addresses its population spans.
struct World {
    switch: Switch,
    now: SimTime,
    locals: Vec<LocalEndpoint>,
    /// (ip, rloc) remote L3 endpoints with a live mapping.
    remote_hit: Vec<Ipv4Addr>,
    remote_stale: Vec<Ipv4Addr>,
    remote_expired: Vec<Ipv4Addr>,
    remote_self: Ipv4Addr,
    remote_mac: MacAddr,
    unknown_ip: Ipv4Addr,
    external_ip: Ipv4Addr,
}

fn build_world(cfg: SwitchConfig, externals: bool) -> World {
    let mut switch = Switch::new(cfg);
    if externals {
        switch.add_external(Ipv4Prefix::new(Ipv4Addr::new(93, 184, 0, 0), 16).unwrap());
    }

    let ttl = SimDuration::from_secs(3600);
    let t0 = SimTime::ZERO;
    let now = t0 + SimDuration::from_secs(60);

    let mut locals = Vec::new();
    for i in 0..6u32 {
        let group = match i % 3 {
            0 => USERS,
            1 => INFRA,
            _ => DENIED,
        };
        let e = ep(1 + i, group);
        switch.attach(vn(1 + (i & 1)), e);
        switch.install_dst_hint(vn(1 + (i & 1)), Eid::V4(e.ipv4), group);
        switch.install_dst_hint(vn(1 + (i & 1)), Eid::Mac(e.mac), group);
        locals.push(e);
    }

    let mut remote_hit = Vec::new();
    let mut remote_stale = Vec::new();
    let mut remote_expired = Vec::new();
    for i in 0..4u32 {
        for v in [vn(1), vn(2)] {
            let hit = Ipv4Addr::new(10, 9, 1, i as u8);
            let stale = Ipv4Addr::new(10, 9, 2, i as u8);
            let expired = Ipv4Addr::new(10, 9, 3, i as u8);
            let rloc = Rloc::for_router_index(7 + i as u16);
            switch.install_mapping(v, EidPrefix::host(Eid::V4(hit)), rloc, ttl, t0);
            switch.install_mapping(v, EidPrefix::host(Eid::V4(stale)), rloc, ttl, t0);
            switch.receive_smr(v, Eid::V4(stale), t0);
            // Expires at t0+10s — dead by `now`.
            switch.install_mapping(
                v,
                EidPrefix::host(Eid::V4(expired)),
                rloc,
                SimDuration::from_secs(10),
                t0,
            );
            switch.install_dst_hint(v, Eid::V4(hit), if i % 2 == 0 { INFRA } else { DENIED });
            switch.install_dst_hint(v, Eid::V4(stale), INFRA);
            if v == vn(1) {
                remote_hit.push(hit);
                remote_stale.push(stale);
                remote_expired.push(expired);
            }
        }
    }
    // A mapping pointing back at this switch (stale sync).
    let remote_self = Ipv4Addr::new(10, 9, 4, 1);
    let self_rloc = switch.config().rloc;
    switch.install_mapping(
        vn(1),
        EidPrefix::host(Eid::V4(remote_self)),
        self_rloc,
        ttl,
        t0,
    );
    // A remote L2 endpoint.
    let remote_mac = MacAddr::from_seed(900);
    switch.install_mapping(
        vn(1),
        EidPrefix::host(Eid::Mac(remote_mac)),
        Rloc::for_router_index(11),
        ttl,
        t0,
    );
    switch.install_dst_hint(vn(1), Eid::Mac(remote_mac), INFRA);

    let mut m = ConnectivityMatrix::new();
    for v in [vn(1), vn(2)] {
        for src in [USERS, INFRA] {
            for dst in [USERS, INFRA] {
                m.set_rule(v, src, dst, Action::Allow);
            }
        }
        // DENIED group: no allow rules in either direction.
        m.set_rule(v, USERS, DENIED, Action::Deny);
    }
    switch.install_matrix(&m);

    World {
        switch,
        now,
        locals,
        remote_hit,
        remote_stale,
        remote_expired,
        remote_self,
        remote_mac,
        unknown_ip: Ipv4Addr::new(10, 200, 0, 1),
        external_ip: Ipv4Addr::new(93, 184, 216, 34),
    }
}

/// An Ethernet/IPv4 frame from `src` toward `dst_ip` (optionally
/// spoofing the inner source address).
fn l3_frame(src: &LocalEndpoint, spoof: Option<Ipv4Addr>, dst_ip: Ipv4Addr) -> Vec<u8> {
    let inner = ipv4::Repr {
        src: spoof.unwrap_or(src.ipv4),
        dst: dst_ip,
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: 32,
        ttl: 64,
    };
    let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
    ethernet::Repr {
        dst: MacAddr::BROADCAST,
        src: src.mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut buf[ethernet::HEADER_LEN..],
    ));
    buf
}

/// A unicast L2 frame from `src` toward `dst_mac`.
fn l2_frame(src_mac: MacAddr, dst_mac: MacAddr) -> Vec<u8> {
    let mut buf = vec![0u8; ethernet::HEADER_LEN + 28];
    ethernet::Repr {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Arp,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    buf
}

/// One generated ingress frame (biased toward the interesting classes).
fn gen_ingress_frame(w: &World, rng: &mut SmallRng) -> Vec<u8> {
    let src = w.locals[rng.gen_range(0..w.locals.len())];
    match rng.gen_range(0..14) {
        // Local deliveries (allowed and denied pairs both occur because
        // sources and destinations span USERS/INFRA/DENIED).
        0 | 1 => l3_frame(&src, None, w.locals[rng.gen_range(0..w.locals.len())].ipv4),
        2 | 3 => l3_frame(
            &src,
            None,
            w.remote_hit[rng.gen_range(0..w.remote_hit.len())],
        ),
        4 => l3_frame(
            &src,
            None,
            w.remote_stale[rng.gen_range(0..w.remote_stale.len())],
        ),
        5 => l3_frame(
            &src,
            None,
            w.remote_expired[rng.gen_range(0..w.remote_expired.len())],
        ),
        6 => l3_frame(&src, None, w.remote_self),
        7 => l3_frame(&src, None, w.unknown_ip),
        8 => l3_frame(&src, None, w.external_ip),
        // Spoofed inner source.
        9 => l3_frame(&src, Some(Ipv4Addr::new(10, 3, 3, 3)), w.unknown_ip),
        // Unknown source MAC.
        10 => l3_frame(&ep(777, USERS), None, w.unknown_ip),
        // L2: local, remote, broadcast.
        11 => {
            let dst = if rng.gen() {
                w.locals[rng.gen_range(0..w.locals.len())].mac
            } else {
                w.remote_mac
            };
            l2_frame(src.mac, dst)
        }
        12 => l2_frame(src.mac, MacAddr::BROADCAST),
        // Truncations and garbage.
        _ => {
            if rng.gen() {
                let f = l3_frame(&src, None, w.unknown_ip);
                let cut = rng.gen_range(0..f.len());
                f[..cut].to_vec()
            } else {
                (0..rng.gen_range(0..64)).map(|_| rng.gen::<u8>()).collect()
            }
        }
    }
}

/// One generated underlay packet for the egress direction.
fn gen_egress_wire(w: &World, cfg: &SwitchConfig, rng: &mut SmallRng) -> Vec<u8> {
    let to_self = rng.gen_range(0..10) != 0;
    let outer_dst = if to_self {
        cfg.rloc
    } else {
        Rloc::for_router_index(555)
    };
    let checksum = if rng.gen() {
        OuterChecksum::Full
    } else {
        OuterChecksum::Zero
    };
    let ttl = *[1u8, 2, 8].get(rng.gen_range(0..3)).unwrap();
    let policy_applied = rng.gen_range(0..4) == 0;
    let group = *[USERS, INFRA, DENIED].get(rng.gen_range(0..3)).unwrap();

    // Inner payload: an IPv4 packet toward one of the world's
    // destination classes, or an Ethernet frame (L2), or garbage.
    let (inner, proto): (Vec<u8>, InnerProto) = match rng.gen_range(0..8) {
        7 => (
            l2_frame(MacAddr::from_seed(1), w.remote_mac),
            InnerProto::Ethernet,
        ),
        6 => (
            l2_frame(
                MacAddr::from_seed(1),
                w.locals[rng.gen_range(0..w.locals.len())].mac,
            ),
            InnerProto::Ethernet,
        ),
        5 => ((0..10).map(|_| rng.gen::<u8>()).collect(), InnerProto::Ipv4),
        k => {
            let dst_ip = match k {
                0 => w.locals[rng.gen_range(0..w.locals.len())].ipv4,
                1 => w.remote_hit[rng.gen_range(0..w.remote_hit.len())],
                2 => w.remote_stale[rng.gen_range(0..w.remote_stale.len())],
                3 => w.external_ip,
                _ => w.unknown_ip,
            };
            let inner_repr = ipv4::Repr {
                src: Ipv4Addr::new(10, 77, 0, 1),
                dst: dst_ip,
                protocol: ipv4::Protocol::Unknown(253),
                payload_len: 24,
                ttl: 64,
            };
            let mut b = vec![0u8; inner_repr.buffer_len()];
            inner_repr.emit(&mut ipv4::Packet::new_unchecked(&mut b[..]));
            (b, InnerProto::Ipv4)
        }
    };
    let mut wire = vec![0u8; encap::UNDERLAY_OVERHEAD + inner.len()];
    wire[encap::UNDERLAY_OVERHEAD..].copy_from_slice(&inner);
    encap::write_underlay(
        &mut wire,
        &encap::EncapParams {
            outer_src: Rloc::for_router_index(3),
            outer_dst,
            vn: vn(1 + (rng.gen::<u32>() & 1)),
            group,
            policy_applied,
            ttl,
            src_port: 50_000,
            udp_checksum: checksum,
            inner_proto: proto,
        },
    )
    .unwrap();
    if rng.gen_range(0..8) == 0 {
        let cut = rng.gen_range(0..wire.len());
        wire.truncate(cut);
    }
    wire
}

/// The config matrix: every combination that changes decision logic.
fn configs() -> Vec<(&'static str, SwitchConfig, bool)> {
    let rloc = Rloc::for_router_index(1);
    let border = Some(Rloc::for_router_index(99));
    let mut edge = SwitchConfig::new(rloc);
    edge.border = border;

    let mut edge_full = edge;
    edge_full.outer_checksum = OuterChecksum::Full;

    let mut edge_ablation = edge;
    edge_ablation.miss_default_route = false;

    let mut edge_ingress_enf = edge;
    edge_ingress_enf.enforcement = EnforcementPoint::Ingress;

    let mut border_cfg = SwitchConfig::new(Rloc::for_router_index(1));
    border_cfg.border = None;
    border_cfg.default_action = Action::Allow;

    vec![
        ("edge/zero-checksum", edge, false),
        ("edge/full-checksum", edge_full, false),
        ("edge/no-default-route", edge_ablation, false),
        ("edge/ingress-enforcement", edge_ingress_enf, false),
        ("border/externals", border_cfg, true),
    ]
}

/// Drives `n` packets one at a time through predictor + engine,
/// asserting agreement packet for packet and punt for punt.
fn run_direction(name: &str, cfg: SwitchConfig, externals: bool, seed: u64, ingress: bool, n: u32) {
    let mut w = build_world(cfg, externals);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buf = PacketBuf::new();
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..n {
        let bytes = if ingress {
            gen_ingress_frame(&w, &mut rng)
        } else {
            gen_egress_wire(&w, w.switch.config(), &mut rng)
        };
        let cfg = *w.switch.config();
        let (pred_v, pred_p) = if ingress {
            oracle::predict_ingress(&cfg, w.switch.tables(), &bytes, w.now)
        } else {
            oracle::predict_egress(&cfg, w.switch.tables(), &bytes, w.now)
        };
        assert!(buf.load(&bytes));
        let got_v = if ingress {
            w.switch
                .process_ingress(std::slice::from_mut(&mut buf), w.now)[0]
        } else {
            w.switch
                .process_egress(std::slice::from_mut(&mut buf), w.now)[0]
        };
        let got_p = w.switch.drain_punts();
        assert_eq!(
            got_v, pred_v,
            "[{name}] packet {i}: engine verdict {got_v:?} != oracle {pred_v:?} ({bytes:02x?})"
        );
        assert_eq!(
            got_p, pred_p,
            "[{name}] packet {i}: engine punts {got_p:?} != oracle {pred_p:?}"
        );
        seen.insert(match got_v {
            Verdict::Forward { .. } => 0u8,
            Verdict::Deliver { .. } => 1,
            Verdict::DeliverExternal => 2,
            Verdict::Drop(_) => 3,
        });
    }
    // Guard against the population degenerating (e.g. everything
    // malformed): each run must exercise several verdict classes.
    assert!(
        seen.len() >= 3,
        "[{name}] population too narrow: only {} verdict classes",
        seen.len()
    );
}

#[test]
fn ingress_verdicts_agree_across_configs() {
    for (i, (name, cfg, externals)) in configs().into_iter().enumerate() {
        run_direction(name, cfg, externals, 0xD1F + i as u64, true, 600);
    }
}

#[test]
fn egress_verdicts_agree_across_configs() {
    for (i, (name, cfg, externals)) in configs().into_iter().enumerate() {
        run_direction(name, cfg, externals, 0xE6E + i as u64, false, 600);
    }
}

/// Batched processing decides exactly like packet-at-a-time: per-packet
/// oracle predictions must match the batch's verdict vector, and the
/// batch punt queue must equal the concatenated predictions with the
/// engine's consecutive-duplicate collapse applied.
#[test]
fn batched_ingress_agrees_with_per_packet_oracle() {
    let (_, cfg, _) = configs().remove(0);
    let mut w = build_world(cfg, false);
    let mut rng = SmallRng::seed_from_u64(0xBA7C);
    for round in 0..40 {
        let frames: Vec<Vec<u8>> = (0..16).map(|_| gen_ingress_frame(&w, &mut rng)).collect();
        let cfg = *w.switch.config();
        let mut pred_vs = Vec::new();
        let mut pred_ps: Vec<Punt> = Vec::new();
        for f in &frames {
            let (v, ps) = oracle::predict_ingress(&cfg, w.switch.tables(), f, w.now);
            pred_vs.push(v);
            for p in ps {
                // The engine collapses consecutive duplicate punts.
                if pred_ps.last() != Some(&p) {
                    pred_ps.push(p);
                }
            }
        }
        let mut bufs: Vec<PacketBuf> = frames
            .iter()
            .map(|f| {
                let mut b = PacketBuf::new();
                assert!(b.load(f));
                b
            })
            .collect();
        let got_vs = w.switch.process_ingress(&mut bufs, w.now).to_vec();
        let got_ps = w.switch.drain_punts();
        assert_eq!(got_vs, pred_vs, "round {round}: batch verdicts diverged");
        assert_eq!(got_ps, pred_ps, "round {round}: batch punts diverged");
    }
}

/// Enforcement replay against the batched bitset path: one persistent
/// reference [`sda_policy::GroupAcl`] (decompiled from the engine's
/// compiled table before any traffic) shadows every counting decision
/// the engine makes — across batched ingress and egress populations,
/// under both §5.3 enforcement points — and the engine's shared
/// allowed/dropped atomics must equal the model's counters after every
/// batch, not just at the end. This is the counting twin of the verdict
/// tests above: a verdict can agree while the counter discipline
/// (which sites tally, how often) silently diverges; this pins both.
#[test]
fn enforcement_counters_agree_with_model_replay() {
    for (name, cfg, externals) in configs()
        .into_iter()
        .filter(|(n, ..)| *n == "edge/zero-checksum" || *n == "edge/ingress-enforcement")
    {
        let mut w = build_world(cfg, externals);
        let mut rng = SmallRng::seed_from_u64(0xC0C7);
        let mut model_acl = w.switch.tables().acl().to_group_acl();
        assert_eq!(
            w.switch.tables().acl().counters(),
            (0, 0),
            "[{name}] fresh world must start with zeroed enforcement counters"
        );
        for round in 0..40u32 {
            let ingress = round % 2 == 0;
            let frames: Vec<Vec<u8>> = (0..32)
                .map(|_| {
                    if ingress {
                        gen_ingress_frame(&w, &mut rng)
                    } else {
                        gen_egress_wire(&w, w.switch.config(), &mut rng)
                    }
                })
                .collect();
            let cfg = *w.switch.config();
            let pred: Vec<Verdict> = frames
                .iter()
                .map(|f| {
                    let (v, _) = if ingress {
                        oracle::predict_ingress_with_acl(
                            &cfg,
                            w.switch.tables(),
                            &mut model_acl,
                            f,
                            w.now,
                        )
                    } else {
                        oracle::predict_egress_with_acl(
                            &cfg,
                            w.switch.tables(),
                            &mut model_acl,
                            f,
                            w.now,
                        )
                    };
                    v
                })
                .collect();
            let mut bufs: Vec<PacketBuf> = frames
                .iter()
                .map(|f| {
                    let mut b = PacketBuf::new();
                    assert!(b.load(f));
                    b
                })
                .collect();
            let got = if ingress {
                w.switch.process_ingress(&mut bufs, w.now).to_vec()
            } else {
                w.switch.process_egress(&mut bufs, w.now).to_vec()
            };
            w.switch.drain_punts();
            assert_eq!(got, pred, "[{name}] round {round}: batch verdicts diverged");
            assert_eq!(
                w.switch.tables().acl().counters(),
                model_acl.counters(),
                "[{name}] round {round}: engine counters != model replay"
            );
            assert_eq!(
                w.switch.tables().acl().drop_permille(),
                model_acl.drop_permille(),
                "[{name}] round {round}: Fig. 12 drop-permille diverged"
            );
        }
        let (allowed, dropped) = w.switch.tables().acl().counters();
        assert!(
            allowed > 0 && dropped > 0,
            "[{name}] population too narrow: allowed {allowed}, dropped {dropped}"
        );
    }
}

/// The two checksum policies interoperate: a zero-checksum encap
/// parses, a full-checksum encap parses and catches corruption —
/// whichever policy the emitting switch ran (the fixed divergence).
#[test]
fn checksum_policies_interoperate_end_to_end() {
    for checksum in [OuterChecksum::Zero, OuterChecksum::Full] {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
        cfg.border = Some(Rloc::for_router_index(99));
        cfg.outer_checksum = checksum;
        let mut w = build_world(cfg, false);
        let src = w.locals[0];
        let frame = l3_frame(&src, None, w.remote_hit[0]);
        let mut buf = PacketBuf::new();
        assert!(buf.load(&frame));
        let v = w
            .switch
            .process_ingress(std::slice::from_mut(&mut buf), w.now)[0];
        assert!(matches!(v, Verdict::Forward { .. }));
        let d = encap::parse_underlay(buf.bytes()).expect("either policy must parse");
        assert_eq!(d.outer_src, Rloc::for_router_index(1));
        let mut bent = buf.bytes().to_vec();
        let last = bent.len() - 1;
        bent[last] ^= 0xFF;
        match checksum {
            OuterChecksum::Full => assert!(encap::parse_underlay(&bent).is_err()),
            OuterChecksum::Zero => assert!(encap::parse_underlay(&bent).is_ok()),
        }
    }
}
