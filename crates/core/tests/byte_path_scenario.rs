//! End-to-end byte-path scenario on the simulator: the mobility/SMR
//! refresh loop and the border default-route miss, exercised through
//! the **per-node `sda_dataplane::Switch` instances** the folded data
//! plane runs on — with the node-level stats cross-checked against the
//! engines' own counters and the differential oracle's predictions.

use sda_core::controller::FabricBuilder;
use sda_core::pipeline::{self, oracle};
use sda_dataplane::{Punt, Verdict};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

const USERS: GroupId = GroupId(10);

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

#[test]
fn mobility_and_default_route_through_per_node_switches() {
    scenario(1);
}

/// The same byte path against a 4-shard partitioned control plane:
/// resolution, registration, pub/sub and SMR must be oblivious to the
/// map-server's internal sharding.
#[test]
fn mobility_and_default_route_with_four_ctrl_shards() {
    scenario(4);
}

fn scenario(ctrl_shards: usize) {
    let mut b = FabricBuilder::new(1234);
    b.config_mut().ctrl_shards = ctrl_shards;
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    b.allow(vn, USERS, USERS);
    let e0 = b.add_edge("e0");
    let e1 = b.add_edge("e1");
    let e2 = b.add_edge("e2");
    let border = b.add_border(
        "border",
        vec![Ipv4Prefix::new(Ipv4Addr::new(93, 184, 0, 0), 16).unwrap()],
    );
    let alice = b.mint_endpoint(vn, USERS);
    let bob = b.mint_endpoint(vn, USERS);
    let mut f = b.build();

    f.attach_at(ms(0), e0, alice, PortId(1));
    f.attach_at(ms(0), e1, bob, PortId(1));
    f.run_until(ms(100));

    // ── Border default-route miss ────────────────────────────────────
    // Cold cache: the first packet rides the default route through the
    // border, which relays it off its pub/sub-synced table.
    f.send_at(ms(200), e0, alice.mac, Eid::V4(bob.ipv4), 128, 1, true);
    f.run_until(ms(300));
    assert_eq!(f.edge(e0).stats().default_routed, 1);
    assert_eq!(f.border(border).stats().relayed, 1);
    assert_eq!(f.edge(e1).stats().delivered, 1);
    // The resolution warmed e0's cache; the next packet goes direct.
    f.send_at(ms(400), e0, alice.mac, Eid::V4(bob.ipv4), 128, 2, true);
    f.run_until(ms(500));
    assert_eq!(f.edge(e0).stats().default_routed, 1, "second packet direct");
    assert_eq!(f.edge(e1).stats().delivered, 2);

    // ── Mobility / SMR refresh loop (Figs. 5–6) ──────────────────────
    f.detach_at(ms(600), e1, bob.mac);
    f.attach_at(ms(601), e2, bob, PortId(7));
    f.run_until(ms(700));
    // Stale-cache packet: e1's switch re-forwards to e2 and punts the
    // Fig. 6 SMR back to e0, which re-resolves.
    f.send_at(ms(710), e0, alice.mac, Eid::V4(bob.ipv4), 128, 3, true);
    f.run_until(ms(900));
    assert_eq!(f.edge(e1).stats().mobility_forwards, 1);
    assert_eq!(f.edge(e1).stats().smrs_sent, 1);
    assert_eq!(f.edge(e2).stats().delivered, 1);
    // Healed: direct to e2, no second detour.
    f.send_at(ms(1000), e0, alice.mac, Eid::V4(bob.ipv4), 128, 4, true);
    f.run_until(ms(1200));
    assert_eq!(f.edge(e2).stats().delivered, 2);
    assert_eq!(f.edge(e1).stats().mobility_forwards, 1);

    // ── External + unroutable at the border ──────────────────────────
    f.send_at(
        ms(1300),
        e0,
        alice.mac,
        Eid::V4(Ipv4Addr::new(93, 184, 216, 34)),
        128,
        5,
        false,
    );
    f.send_at(
        ms(1310),
        e0,
        alice.mac,
        Eid::V4(Ipv4Addr::new(10, 100, 99, 99)),
        128,
        6,
        false,
    );
    f.run_until(ms(1600));
    assert_eq!(f.border(border).stats().external, 1);
    assert_eq!(f.border(border).stats().unroutable, 1);

    // ── Node stats agree with the per-node engines ───────────────────
    for (h, stats) in [(e0, f.edge(e0).stats()), (e1, f.edge(e1).stats())] {
        let sw = f.edge(h).switch().stats();
        assert_eq!(sw.delivered, stats.delivered, "edge {h:?} delivered");
        assert_eq!(
            sw.forwarded_default,
            stats.default_routed + stats.first_packet_drops,
            "edge {h:?} default-route accounting"
        );
        assert_eq!(
            sw.dropped,
            stats.policy_drops + stats.hop_exhausted,
            "edge {h:?} drops"
        );
    }
    let bsw = f.border(border).switch().stats();
    let bstats = f.border(border).stats();
    assert_eq!(bsw.forwarded, bstats.relayed);
    assert_eq!(bsw.delivered_external, bstats.external);

    // ── Oracle cross-check against the live per-node tables ──────────
    // A fresh alice→bob frame must, per the oracle, forward straight to
    // e2 (the healed location) out of e0's switch…
    let now = f.now();
    let e2_rloc = f.edge(e2).rloc();
    let mut frame = Vec::new();
    assert!(pipeline::compose_host_frame(
        &mut frame,
        alice.mac,
        alice.ipv4,
        Eid::V4(bob.ipv4),
        64,
        7,
        false,
    ));
    let e0_sw = f.edge(e0).switch();
    let (verdict, punts) = oracle::predict_ingress(e0_sw.config(), e0_sw.tables(), &frame, now);
    assert_eq!(verdict, Verdict::Forward { to: e2_rloc });
    assert!(punts.is_empty(), "healed mapping needs no resolution");
    // …and a packet for bob arriving at his *old* edge still re-forwards
    // to e2 with an SMR punt, exactly the Fig. 6 prediction.
    let mut bufs = [sda_dataplane::PacketBuf::new()];
    assert!(bufs[0].load(&frame));
    let mut tx = sda_dataplane::Switch::new(*e0_sw.config());
    tx.attach(
        vn,
        sda_dataplane::LocalEndpoint {
            port: PortId(1),
            group: USERS,
            mac: alice.mac,
            ipv4: alice.ipv4,
        },
    );
    tx.install_mapping(
        vn,
        sda_types::EidPrefix::host(Eid::V4(bob.ipv4)),
        f.edge(e1).rloc(),
        SimDuration::from_secs(3600),
        now,
    );
    let v = tx.process_ingress(&mut bufs, now)[0];
    assert_eq!(
        v,
        Verdict::Forward {
            to: f.edge(e1).rloc()
        }
    );
    let wire = bufs[0].bytes().to_vec();
    let e1_sw = f.edge(e1).switch();
    let (verdict, punts) = oracle::predict_egress(e1_sw.config(), e1_sw.tables(), &wire, now);
    assert_eq!(verdict, Verdict::Forward { to: e2_rloc });
    assert_eq!(
        punts,
        vec![Punt::Smr {
            to: e0_sw.config().rloc,
            vn,
            eid: Eid::V4(bob.ipv4),
        }]
    );
}
