//! Pipeline invariants under random state and packets:
//!
//! 1. Denied traffic is never delivered (unless the packet carries the
//!    ingress-applied bit — trust between fabric nodes).
//! 2. The encapsulation the ingress stage emits preserves VN, group and
//!    inner packet exactly.
//! 3. Ingress and egress agree: what ingress would deliver locally,
//!    egress on the same state also delivers.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_core::acl::GroupAcl;
use sda_core::msg::InnerPacket;
use sda_core::pipeline::{self, EgressAction, EnforcementPoint, IngressAction};
use sda_core::vrf::{LocalEndpoint, VrfTable};
use sda_core::OverlayPacket;
use sda_policy::{Action, GroupRule, RuleSubset};
use sda_types::{Eid, GroupId, MacAddr, PortId, Rloc, VnId};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

#[derive(Clone, Debug)]
struct State {
    attached: Vec<(u8, u16)>, // (host octet, group)
    rules: Vec<(u16, u16, bool)>,
}

fn arb_state() -> impl Strategy<Value = State> {
    (
        proptest::collection::vec((0u8..16, 0u16..6), 0..10),
        proptest::collection::vec((0u16..6, 0u16..6, any::<bool>()), 0..12),
    )
        .prop_map(|(attached, rules)| State { attached, rules })
}

fn build(state: &State) -> (VrfTable, GroupAcl) {
    let mut vrf = VrfTable::new();
    for (host, group) in &state.attached {
        vrf.attach(
            vn(),
            LocalEndpoint {
                port: PortId(*host as u16),
                group: GroupId(*group),
                mac: MacAddr::from_seed(u32::from(*host)),
                ipv4: Ipv4Addr::new(10, 0, 0, *host),
            },
        );
    }
    let mut acl = GroupAcl::new();
    acl.install(&RuleSubset {
        version: 1,
        rules: state
            .rules
            .iter()
            .map(|(s, d, allow)| {
                (
                    vn(),
                    GroupRule {
                        src: GroupId(*s),
                        dst: GroupId(*d),
                        action: if *allow { Action::Allow } else { Action::Deny },
                    },
                )
            })
            .collect(),
    });
    (vrf, acl)
}

fn effective_action(state: &State, src: u16, dst: u16) -> Action {
    state
        .rules
        .iter()
        .rev()
        .find(|(s, d, _)| *s == src && *d == dst)
        .map(|(_, _, allow)| if *allow { Action::Allow } else { Action::Deny })
        .unwrap_or(Action::Deny)
}

fn packet(src_group: u16, dst_host: u8, applied: bool) -> OverlayPacket {
    OverlayPacket {
        vn: vn(),
        src_group: GroupId(src_group),
        policy_applied: applied,
        hops_left: 8,
        origin: Rloc::for_router_index(1),
        inner: InnerPacket {
            src: Eid::V4(Ipv4Addr::new(10, 0, 9, 9)),
            dst: Eid::V4(Ipv4Addr::new(10, 0, 0, dst_host)),
            payload_len: 64,
            flow: 7,
            track: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Egress never delivers traffic the matrix denies.
    #[test]
    fn egress_enforces_the_matrix(state in arb_state(), src_group in 0u16..6, dst in 0u8..16) {
        let (vrf, mut acl) = build(&state);
        let pkt = packet(src_group, dst, false);
        let action = pipeline::egress(&vrf, &mut acl, &pkt, EnforcementPoint::Egress, Action::Deny);
        match action {
            EgressAction::Deliver { dst_group, .. } => {
                // Destination must be attached and the pair allowed.
                let local = vrf.lookup(vn(), pkt.inner.dst).expect("delivered ⇒ local");
                prop_assert_eq!(local.group, dst_group);
                prop_assert_eq!(
                    effective_action(&state, src_group, dst_group.raw()),
                    Action::Allow
                );
            }
            EgressAction::DropPolicy => {
                let local = vrf.lookup(vn(), pkt.inner.dst).expect("policy drop ⇒ local");
                prop_assert_eq!(
                    effective_action(&state, src_group, local.group.raw()),
                    Action::Deny
                );
            }
            EgressAction::NotLocal => {
                prop_assert!(vrf.lookup(vn(), pkt.inner.dst).is_none());
            }
        }
    }

    /// The policy-applied bit bypasses the egress ACL but never
    /// manufactures a delivery for a non-local destination.
    #[test]
    fn applied_bit_bypasses_acl_only(state in arb_state(), src_group in 0u16..6, dst in 0u8..16) {
        let (vrf, mut acl) = build(&state);
        let pkt = packet(src_group, dst, true);
        let action = pipeline::egress(&vrf, &mut acl, &pkt, EnforcementPoint::Egress, Action::Deny);
        if vrf.lookup(vn(), pkt.inner.dst).is_some() {
            let delivered = matches!(action, EgressAction::Deliver { .. });
            prop_assert!(delivered);
        } else {
            prop_assert_eq!(action, EgressAction::NotLocal);
        }
        // ACL counters untouched: the stage was skipped.
        prop_assert_eq!(acl.counters(), (0, 0));
    }

    /// Ingress encapsulation preserves the packet identity, and the
    /// choice of Encap vs EncapToBorder follows the resolution input.
    #[test]
    fn ingress_encap_preserves_identity(
        state in arb_state(),
        src_group in 0u16..6,
        dst in 16u8..32, // never locally attached
        resolved in proptest::option::of(0u16..8),
    ) {
        let (vrf, mut acl) = build(&state);
        let inner = InnerPacket {
            src: Eid::V4(Ipv4Addr::new(10, 0, 9, 9)),
            dst: Eid::V4(Ipv4Addr::new(10, 0, 0, dst)),
            payload_len: 512,
            flow: 3,
            track: true,
        };
        let self_rloc = Rloc::for_router_index(42);
        let action = pipeline::ingress(
            &vrf, &mut acl, vn(), GroupId(src_group), inner,
            resolved.map(Rloc::for_router_index),
            EnforcementPoint::Egress, None, Action::Deny, 8, self_rloc,
        );
        match (resolved, action) {
            (Some(r), IngressAction::Encap { to, packet }) => {
                prop_assert_eq!(to, Rloc::for_router_index(r));
                prop_assert_eq!(packet.inner, inner);
                prop_assert_eq!(packet.src_group, GroupId(src_group));
                prop_assert_eq!(packet.origin, self_rloc);
                prop_assert!(!packet.policy_applied);
            }
            (None, IngressAction::EncapToBorder { packet }) => {
                prop_assert_eq!(packet.inner, inner);
                prop_assert_eq!(packet.origin, self_rloc);
            }
            (r, a) => prop_assert!(false, "unexpected pair {r:?} {a:?}"),
        }
    }

    /// Byte round-trip never changes a decision (differential fuzzing of
    /// encode/decode against the structured path).
    #[test]
    fn byte_roundtrip_decision_equivalence(
        state in arb_state(),
        src_group in 0u16..6,
        dst in 0u8..16,
        hops in 1u8..16,
    ) {
        let (vrf, mut acl_a) = build(&state);
        let (_, mut acl_b) = build(&state);
        let mut pkt = packet(src_group, dst, false);
        pkt.hops_left = hops;
        let bytes = pipeline::encode_packet(
            Rloc::for_router_index(1),
            Rloc::for_router_index(2),
            &pkt,
            sda_dataplane::OuterChecksum::Full,
        ).expect("ipv4 inner always encodes");
        let (_, _, decoded) = pipeline::decode_packet(&bytes).expect("decode");
        prop_assert_eq!(decoded, pkt);
        let a = pipeline::egress(&vrf, &mut acl_a, &pkt, EnforcementPoint::Egress, Action::Deny);
        let b = pipeline::egress(&vrf, &mut acl_b, &decoded, EnforcementPoint::Egress, Action::Deny);
        prop_assert_eq!(a, b);
    }
}
