//! Regression for the lockstep-retry storm: 100 edges rebooted at the
//! same instant re-register against a tightly admission-guarded server.
//! With deterministic backoff every shed sender retries on the same
//! grid, so each round re-arrives as one synchronized wave; with
//! decorrelated jitter the herd spreads out, the server queue peak
//! collapses, and the backlog drains through the token bucket at its
//! sustained rate instead of one burst per wave.

use std::net::Ipv4Addr;

use sda_core::controller::{Fabric, FabricBuilder};
use sda_core::{check_convergence, AdmissionConfig, ClassBudget, ExpectedPlacement};
use sda_simnet::{FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

const EDGES: usize = 100;

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

fn millis(ms: u64) -> SimTime {
    SimTime::from_nanos(ms * 1_000_000)
}

struct StormRun {
    /// Server ingress high-water mark over the retry phase only (the
    /// identical reboot wave itself is excluded by a peak reset).
    retry_phase_peak: u32,
    report_converged: bool,
    wedged: usize,
}

/// Builds the fabric, reboots every edge at the same instant, and
/// measures the server queue peak over the shed→retry drain.
fn reboot_storm(jitter: bool) -> StormRun {
    let mut b = FabricBuilder::new(4242);
    let vn: VnId = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    let users = GroupId(10);
    b.allow(vn, users, users);
    let edges: Vec<_> = (0..EDGES)
        .map(|i| b.add_edge(Box::leak(format!("edge{i}").into_boxed_str())))
        .collect();
    b.add_border("border", vec![]);
    let endpoints: Vec<_> = (0..EDGES).map(|_| b.mint_endpoint(vn, users)).collect();
    let cfg = b.config_mut();
    cfg.rtx_jitter = jitter;
    // Tight register budget: the 200-register reboot wave is mostly
    // shed, so recovery runs through the retry machinery under test.
    cfg.admission = Some(AdmissionConfig {
        requests: ClassBudget::new(200.0, 32.0),
        registers: ClassBudget::new(100.0, 8.0),
        subscribes: ClassBudget::new(10.0, 4.0),
        retry_after: SimDuration::from_millis(300),
    });
    let mut fabric: Fabric = b.build();

    // Staggered attach: initial registration stays under the sustained
    // rate, so the fabric starts converged.
    for (i, (&e, ep)) in edges.iter().zip(&endpoints).enumerate() {
        fabric.attach_at(millis(i as u64 * 40), e, *ep, PortId(1));
    }
    fabric.run_until(secs(8));

    // Every edge reboots and comes back at the same instant — the
    // correlated failure that used to synchronize the retry waves.
    let mut plan = FaultPlan::new();
    for &e in &edges {
        plan = plan.reboot(fabric.edge_node(e), secs(10), millis(10_500));
    }
    fabric.schedule_faults(&plan);

    // Let the (identical-in-both-runs) reboot wave and its shed replies
    // drain, then reset the high-water mark so the peak measures only
    // the retry phase, where jitter is the sole difference.
    fabric.run_until(secs(11));
    fabric.sim_mut().reset_ingress_peaks();
    fabric.run_until(secs(40));

    let routing = fabric.routing_node();
    let retry_phase_peak = fabric.sim_mut().ingress_peak(routing);
    let mut want = ExpectedPlacement::new();
    for (&e, ep) in edges.iter().zip(&endpoints) {
        let rloc = fabric.edge(e).rloc();
        want.insert((vn, Eid::V4(ep.ipv4)), rloc);
        want.insert((vn, Eid::Mac(ep.mac)), rloc);
    }
    let report = check_convergence(&fabric, &want);
    let wedged = edges
        .iter()
        .map(|&e| fabric.edge(e).pending_register_len() + fabric.edge(e).resolving_len())
        .sum();
    StormRun {
        retry_phase_peak,
        report_converged: report.converged(),
        wedged,
    }
}

#[test]
fn decorrelated_jitter_flattens_reboot_retry_waves() {
    let lockstep = reboot_storm(false);
    let jittered = reboot_storm(true);

    // Both eventually recover — admission sheds are retried to success.
    assert!(lockstep.report_converged, "lockstep run must still recover");
    assert!(jittered.report_converged, "jittered run must recover");
    assert_eq!(lockstep.wedged, 0);
    assert_eq!(jittered.wedged, 0);

    // The regression itself: deterministic backoff re-arrives as
    // synchronized waves (peak near the full herd size), decorrelated
    // jitter spreads the same load thin.
    assert!(
        lockstep.retry_phase_peak > 50,
        "lockstep retries should collide in waves, peak {}",
        lockstep.retry_phase_peak
    );
    assert!(
        jittered.retry_phase_peak * 2 < lockstep.retry_phase_peak,
        "jitter must at least halve the retry-phase queue peak: \
         jittered {} vs lockstep {}",
        jittered.retry_phase_peak,
        lockstep.retry_phase_peak
    );
}
