//! Focused fault-recovery tests: each exercises one piece of the
//! control plane's retry/timeout/self-healing machinery against a
//! targeted fault, with exact assertions on the recovery path.

use std::net::Ipv4Addr;

use sda_core::controller::{BorderHandle, EdgeHandle, Fabric, FabricBuilder};
use sda_core::msg::EndpointIdentity;
use sda_core::{check_convergence, ExpectedPlacement};
use sda_simnet::{FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

struct Setup {
    fabric: Fabric,
    e1: EdgeHandle,
    e2: EdgeHandle,
    border: BorderHandle,
    vn: VnId,
    alice: EndpointIdentity,
    bob: EndpointIdentity,
}

/// Two edges, one border, two endpoints; fast control-plane intervals
/// so recovery fits a short horizon.
fn chaos_fabric(seed: u64) -> Setup {
    let mut b = FabricBuilder::new(seed);
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    let users = GroupId(10);
    b.allow(vn, users, users);
    let e1 = b.add_edge("edge1");
    let e2 = b.add_edge("edge2");
    let border = b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, users);
    let bob = b.mint_endpoint(vn, users);
    let cfg = b.config_mut();
    cfg.refresh_interval = Some(SimDuration::from_secs(5));
    cfg.subscribe_refresh_interval = Some(SimDuration::from_secs(5));
    cfg.purge_interval = Some(SimDuration::from_secs(5));
    Setup {
        fabric: b.build(),
        e1,
        e2,
        border,
        vn,
        alice,
        bob,
    }
}

fn expected_two_endpoints(s: &Setup) -> ExpectedPlacement {
    let mut want = ExpectedPlacement::new();
    let r1 = s.fabric.edge(s.e1).rloc();
    let r2 = s.fabric.edge(s.e2).rloc();
    want.insert((s.vn, Eid::V4(s.alice.ipv4)), r1);
    want.insert((s.vn, Eid::Mac(s.alice.mac)), r1);
    want.insert((s.vn, Eid::V4(s.bob.ipv4)), r2);
    want.insert((s.vn, Eid::Mac(s.bob.mac)), r2);
    want
}

/// Regression for the resolving-set leak: a Map-Request lost on a
/// fully lossy edge↔server link used to wedge `(vn, eid)` in the
/// resolving set forever — after the link healed, no packet could ever
/// trigger a new resolution. Now the attempt budget evicts the entry,
/// and a later packet resolves normally.
#[test]
fn resolution_recovers_after_total_loss_window() {
    let mut s = chaos_fabric(7);
    let e1_node = s.fabric.edge_node(s.e1);
    let rs_node = s.fabric.routing_node();

    s.fabric.attach_at(SimTime::ZERO, s.e1, s.alice, PortId(1));
    s.fabric.attach_at(SimTime::ZERO, s.e2, s.bob, PortId(1));

    // Both endpoints register cleanly, then the edge1↔server link goes
    // fully dark for 55 s — longer than the whole retry budget
    // (500 ms, 1 s, 2 s, 4 s, 8 s ≈ 15.5 s of backoff).
    let plan = FaultPlan::new().loss_window(e1_node, rs_node, 1.0, secs(5), secs(60));
    s.fabric.schedule_faults(&plan);

    // A send during the window: delivered via the border default route,
    // but the Map-Request it punts is lost — every retransmit too.
    s.fabric.send_at(
        secs(6),
        s.e1,
        s.alice.mac,
        Eid::V4(s.bob.ipv4),
        64,
        1,
        false,
    );
    s.fabric.run_until(secs(40));

    let m = s.fabric.metrics();
    assert!(
        m.counter("fabric.map_request_retries") >= 4,
        "retransmits fired during the loss window"
    );
    assert_eq!(
        m.counter("fabric.resolve_timeouts"),
        1,
        "the attempt budget evicted the wedged resolution"
    );
    assert_eq!(
        s.fabric.edge(s.e1).resolving_len(),
        0,
        "no stuck resolving entry"
    );
    assert_eq!(
        s.fabric.edge(s.e2).stats().delivered,
        1,
        "default route carried it"
    );

    // After the heal a fresh packet resolves from scratch.
    s.fabric.send_at(
        secs(65),
        s.e1,
        s.alice.mac,
        Eid::V4(s.bob.ipv4),
        64,
        2,
        false,
    );
    s.fabric.run_until(secs(72));
    assert_eq!(s.fabric.edge(s.e1).fib_len(), 1, "resolution healed");
    assert_eq!(s.fabric.edge(s.e1).resolving_len(), 0);
    assert_eq!(s.fabric.edge(s.e2).stats().delivered, 2);

    let report = check_convergence(&s.fabric, &expected_two_endpoints(&s));
    assert!(report.converged(), "fabric converged: {report:?}");
}

/// A publish gap (deltas lost on the server↔border link) must trigger
/// a resync round-trip: Subscribe → SubscribeAck → purge → snapshot.
#[test]
fn border_gap_detection_resyncs_by_snapshot() {
    let mut b = FabricBuilder::new(11);
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    let users = GroupId(10);
    b.allow(vn, users, users);
    let e1 = b.add_edge("edge1");
    let e2 = b.add_edge("edge2");
    let bh = b.add_border("border", vec![]);
    let alice = b.mint_endpoint(vn, users);
    let bob = b.mint_endpoint(vn, users);
    let carol = b.mint_endpoint(vn, users);
    let mut f = b.build();
    let border_node = f.border_node(bh);
    let rs_node = f.routing_node();

    // alice registers cleanly; the border's stream is live.
    f.attach_at(SimTime::ZERO, e1, alice, PortId(1));

    // bob's publishes fall into a dark window on server↔border; carol's
    // arrive after the heal with a jumped sequence number.
    let plan = FaultPlan::new().loss_window(border_node, rs_node, 1.0, secs(5), secs(20));
    f.schedule_faults(&plan);
    f.attach_at(secs(10), e2, bob, PortId(1));
    f.attach_at(secs(25), e2, carol, PortId(2));
    f.run_until(secs(40));

    let stats = f.border(bh).stats();
    assert!(stats.publish_gaps >= 1, "gap detected: {stats:?}");
    assert!(stats.resyncs_requested >= 1, "resync requested: {stats:?}");
    assert!(stats.resyncs_completed >= 1, "resync completed: {stats:?}");
    assert_eq!(
        f.metrics().counter("border.resyncs_completed"),
        stats.resyncs_completed
    );
    assert_eq!(
        f.border(bh).fib_len(),
        6,
        "snapshot restored all 3 endpoints × 2 EIDs, bob's lost deltas included"
    );
    assert_eq!(f.border(bh).pending_subscribe_len(), 0);
}

/// An edge reboot (volatile state loss) heals itself: the endpoint
/// inventory survives, so the edge re-attaches, re-registers and
/// re-fetches its group rules without any operator intervention.
#[test]
fn edge_restart_reregisters_from_inventory() {
    let mut s = chaos_fabric(13);
    let e1_node = s.fabric.edge_node(s.e1);

    s.fabric.attach_at(SimTime::ZERO, s.e1, s.alice, PortId(1));
    s.fabric.attach_at(SimTime::ZERO, s.e2, s.bob, PortId(1));

    let plan = FaultPlan::new().reboot(e1_node, secs(10), secs(15));
    s.fabric.schedule_faults(&plan);
    s.fabric.run_until(secs(20));

    assert_eq!(s.fabric.metrics().counter("fabric.edge_restarts"), 1);
    assert_eq!(
        s.fabric.edge(s.e1).attached(),
        1,
        "alice re-attached from the inventory"
    );

    // Traffic through the rebooted edge works in both directions: the
    // re-fetched rules allow it, the re-registration routes it.
    s.fabric.send_at(
        secs(21),
        s.e1,
        s.alice.mac,
        Eid::V4(s.bob.ipv4),
        64,
        1,
        false,
    );
    s.fabric.send_at(
        secs(23),
        s.e2,
        s.bob.mac,
        Eid::V4(s.alice.ipv4),
        64,
        2,
        false,
    );
    s.fabric.run_until(secs(32));
    assert_eq!(s.fabric.edge(s.e2).stats().delivered, 1);
    assert_eq!(s.fabric.edge(s.e1).stats().delivered, 1);

    let report = check_convergence(&s.fabric, &expected_two_endpoints(&s));
    assert!(report.converged(), "fabric converged: {report:?}");
}

/// A routing-server restart wipes its database, subscriber list and
/// ARP table. Edges repopulate the database through registration
/// refreshes; borders notice (periodic resubscribe and/or sequence
/// regression) and rebuild their synced slice by snapshot.
#[test]
fn server_restart_rebuilds_db_and_resyncs_borders() {
    let mut s = chaos_fabric(17);
    let rs_node = s.fabric.routing_node();

    s.fabric.attach_at(SimTime::ZERO, s.e1, s.alice, PortId(1));
    s.fabric.attach_at(SimTime::ZERO, s.e2, s.bob, PortId(1));

    let plan = FaultPlan::new().reboot(rs_node, secs(8), secs(12));
    s.fabric.schedule_faults(&plan);
    s.fabric.run_until(secs(32));

    assert_eq!(s.fabric.metrics().counter("ctrl.server_restarts"), 1);
    assert_eq!(
        s.fabric.routing_server().server().db_len(),
        4,
        "registration refreshes rebuilt the database"
    );
    assert!(
        s.fabric.border(s.border).stats().resyncs_completed >= 1,
        "border resynced after the restart"
    );
    assert_eq!(
        s.fabric.border(s.border).fib_len(),
        4,
        "border slice rebuilt by snapshot"
    );

    let report = check_convergence(&s.fabric, &expected_two_endpoints(&s));
    assert!(report.converged(), "fabric converged: {report:?}");
}

/// Same seed, same fault plan ⇒ byte-identical chaos run: the fault
/// layer rides the one event queue and the one RNG.
#[test]
fn chaos_runs_are_replay_identical() {
    let run = |seed: u64| {
        let mut s = chaos_fabric(seed);
        let e1_node = s.fabric.edge_node(s.e1);
        let rs_node = s.fabric.routing_node();
        s.fabric.attach_at(SimTime::ZERO, s.e1, s.alice, PortId(1));
        s.fabric.attach_at(SimTime::ZERO, s.e2, s.bob, PortId(1));
        let plan = FaultPlan::new()
            .reboot(e1_node, secs(10), secs(14))
            .default_loss_window(0.05, secs(5), secs(25))
            .loss_window(e1_node, rs_node, 0.3, secs(16), secs(20));
        s.fabric.schedule_faults(&plan);
        for i in 0..20u64 {
            s.fabric.send_at(
                secs(6 + i),
                s.e1,
                s.alice.mac,
                Eid::V4(s.bob.ipv4),
                64,
                i,
                false,
            );
        }
        s.fabric.run_until(secs(40));
        let m = s.fabric.metrics();
        [
            "fabric.delivered",
            "fabric.map_requests",
            "fabric.map_request_retries",
            "fabric.register_retries",
            "fabric.resolve_timeouts",
            "fabric.edge_restarts",
            "border.publishes",
            "border.resyncs_completed",
            "simnet.fault_msg_drops",
            "simnet.link_drops",
            "simnet.faults_injected",
        ]
        .map(|name| m.counter(name))
    };
    assert_eq!(run(99), run(99), "same seed, same fault plan, same trace");
    assert_ne!(
        run(99)[0],
        0,
        "the chaos run still delivered traffic somewhere"
    );
}
