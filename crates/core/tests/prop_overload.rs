//! Random fault schedules against the *overload-hardened* control
//! plane: every run gets a multi-shard map-server with tight admission
//! budgets, a bounded server ingress queue and tight per-edge retry-map
//! caps, plus a generated mix of loss windows, server/shard outages and
//! shard partitions. Two invariants must hold for every schedule:
//!
//! 1. **Bounded** — no capped structure ever exceeds its cap: the
//!    server ingress queue, each edge's resolving and pending-register
//!    maps, and the pub/sub delta queues all stay within their limits
//!    for the whole run (high-water marks, not end-state samples).
//! 2. **Convergent** — sheds, tail-drops and oldest-evictions are all
//!    recoverable: after quiescence the fabric still reaches the
//!    fault-free fixed point with nothing left wedged.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_core::controller::{EdgeHandle, Fabric, FabricBuilder};
use sda_core::msg::EndpointIdentity;
use sda_core::{check_convergence, AdmissionConfig, ClassBudget, ExpectedPlacement};
use sda_simnet::{FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

const EDGES: usize = 3;
const ENDPOINTS: usize = 4;

fn secs_f(s: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(s)
}

/// One randomly generated fault. Loss and reboot shapes mirror
/// `prop_chaos`; the shard variants are new here and only bite when
/// the generated index lands inside the generated shard count (the
/// server ignores out-of-range shard faults).
#[derive(Clone, Copy, Debug)]
enum OverloadFault {
    EdgeLoss {
        edge: usize,
        loss: f64,
        from: f64,
        dur: f64,
    },
    FabricLoss {
        loss: f64,
        from: f64,
        dur: f64,
    },
    ServerReboot {
        from: f64,
        dur: f64,
    },
    /// One control shard crashes (its database slice is lost) and
    /// restarts; the other shards keep serving.
    ShardOutage {
        shard: usize,
        from: f64,
        dur: f64,
    },
    /// One control shard is partitioned (state frozen, unreachable)
    /// and heals.
    ShardPartition {
        shard: usize,
        from: f64,
        dur: f64,
    },
}

fn arb_fault() -> impl Strategy<Value = OverloadFault> {
    prop_oneof![
        (0..EDGES, 0.3f64..=1.0, 5.0f64..25.0, 2.0f64..8.0).prop_map(|(edge, loss, from, dur)| {
            OverloadFault::EdgeLoss {
                edge,
                loss,
                from,
                dur,
            }
        }),
        (0.02f64..0.15, 5.0f64..25.0, 2.0f64..8.0)
            .prop_map(|(loss, from, dur)| OverloadFault::FabricLoss { loss, from, dur }),
        (5.0f64..25.0, 1.0f64..4.0)
            .prop_map(|(from, dur)| OverloadFault::ServerReboot { from, dur }),
        (0..4usize, 5.0f64..25.0, 1.0f64..6.0)
            .prop_map(|(shard, from, dur)| { OverloadFault::ShardOutage { shard, from, dur } }),
        (0..4usize, 5.0f64..25.0, 1.0f64..6.0)
            .prop_map(|(shard, from, dur)| { OverloadFault::ShardPartition { shard, from, dur } }),
    ]
}

/// The overload knobs under test, generated per run.
#[derive(Clone, Copy, Debug)]
struct Limits {
    ctrl_shards: usize,
    /// Server ingress queue bound.
    ingress_cap: usize,
    /// Per-edge retry-map caps (resolving and pending registers).
    retry_cap: usize,
    register_rate: f64,
    register_burst: f64,
    request_rate: f64,
}

fn arb_limits() -> impl Strategy<Value = Limits> {
    (
        2..=4usize,
        16..=48usize,
        4..=16usize,
        20.0f64..100.0,
        4.0f64..12.0,
        50.0f64..200.0,
    )
        .prop_map(
            |(ctrl_shards, ingress_cap, retry_cap, register_rate, register_burst, request_rate)| {
                Limits {
                    ctrl_shards,
                    ingress_cap,
                    retry_cap,
                    register_rate,
                    register_burst,
                    request_rate,
                }
            },
        )
}

#[derive(Clone, Debug)]
struct Schedule {
    seed: u64,
    limits: Limits,
    faults: Vec<OverloadFault>,
    /// Background sends (from, to, at) between static endpoints.
    sends: Vec<(usize, usize, f64)>,
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        any::<u64>(),
        arb_limits(),
        proptest::collection::vec(arb_fault(), 0..5),
        proptest::collection::vec((0..ENDPOINTS, 0..ENDPOINTS, 6.0f64..30.0), 0..5),
    )
        .prop_map(|(seed, limits, faults, sends)| Schedule {
            seed,
            limits,
            faults,
            sends,
        })
}

struct Built {
    fabric: Fabric,
    edges: Vec<EdgeHandle>,
    roster: Vec<EndpointIdentity>,
    vn: VnId,
}

fn build(sched: &Schedule) -> Built {
    let mut b = FabricBuilder::new(sched.seed);
    {
        let cfg = b.config_mut();
        cfg.refresh_interval = Some(SimDuration::from_secs(5));
        cfg.subscribe_refresh_interval = Some(SimDuration::from_secs(5));
        cfg.purge_interval = Some(SimDuration::from_secs(5));
        cfg.register_ttl_secs = 30;
        cfg.idle_timeout = SimDuration::from_secs(10);
        cfg.eviction_interval = SimDuration::from_secs(2);
        cfg.ctrl_shards = sched.limits.ctrl_shards;
        cfg.max_resolving = sched.limits.retry_cap;
        cfg.max_pending_registers = sched.limits.retry_cap;
        cfg.admission = Some(AdmissionConfig {
            requests: ClassBudget::new(sched.limits.request_rate, 16.0),
            registers: ClassBudget::new(sched.limits.register_rate, sched.limits.register_burst),
            subscribes: ClassBudget::new(10.0, 4.0),
            retry_after: SimDuration::from_millis(300),
        });
    }
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    let users = GroupId(10);
    b.allow(vn, users, users);
    let edges: Vec<EdgeHandle> = (0..EDGES).map(|i| b.add_edge(format!("oe{i}"))).collect();
    b.add_border("ob", vec![]);
    let roster: Vec<EndpointIdentity> =
        (0..ENDPOINTS).map(|_| b.mint_endpoint(vn, users)).collect();
    let mut fabric = b.build();

    // Bound only the routing server's ingress queue: it is the overload
    // target, and every message class aimed at it has a retransmit
    // path. (Edge↔policy auth has none, so edge queues stay unbounded
    // here — the chaos campaign covers fabric-wide caps.)
    let rs = fabric.routing_node();
    fabric
        .sim_mut()
        .set_ingress_cap(rs, sched.limits.ingress_cap);

    for (i, id) in roster.iter().enumerate() {
        fabric.attach_at(SimTime::ZERO, edges[i % EDGES], *id, PortId(i as u16));
    }

    let mut plan = FaultPlan::new();
    for f in &sched.faults {
        plan = match *f {
            OverloadFault::EdgeLoss {
                edge,
                loss,
                from,
                dur,
            } => plan.loss_window(
                fabric.edge_node(edges[edge]),
                rs,
                loss,
                secs_f(from),
                secs_f(from + dur),
            ),
            OverloadFault::FabricLoss { loss, from, dur } => {
                // Pinning edge↔policy lossless (see prop_chaos) is
                // replaced here by simply excluding fabric-wide loss
                // from the attach window: attaches happen at t=0 and
                // fabric loss starts at ≥5 s.
                plan.default_loss_window(loss, secs_f(from), secs_f(from + dur))
            }
            OverloadFault::ServerReboot { from, dur } => {
                plan.reboot(rs, secs_f(from), secs_f(from + dur))
            }
            OverloadFault::ShardOutage { shard, from, dur } => {
                plan.shard_outage(rs, shard, secs_f(from), secs_f(from + dur))
            }
            OverloadFault::ShardPartition { shard, from, dur } => {
                plan.shard_partition_window(rs, shard, secs_f(from), secs_f(from + dur))
            }
        };
    }
    fabric.schedule_faults(&plan);

    for &(from, to, at) in &sched.sends {
        fabric.send_at(
            secs_f(at),
            edges[from % EDGES],
            roster[from].mac,
            Eid::V4(roster[to].ipv4),
            128,
            (from * 16 + to) as u64,
            false,
        );
    }

    Built {
        fabric,
        edges,
        roster,
        vn,
    }
}

fn expected(built: &Built) -> ExpectedPlacement {
    let mut want = ExpectedPlacement::new();
    for (i, id) in built.roster.iter().enumerate() {
        let rloc = built.fabric.edge(built.edges[i % EDGES]).rloc();
        want.insert((built.vn, Eid::V4(id.ipv4)), rloc);
        want.insert((built.vn, Eid::Mac(id.mac)), rloc);
    }
    want
}

/// Faults end by 31 s; quiesce far off the 5-second timer grid, past
/// several refresh rounds (which re-register anything the caps evicted
/// or admission shed) and two idle-eviction horizons.
const QUIESCE: f64 = 58.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any schedule: caps hold for the whole run, and the fabric still
    /// converges — sheds, drops and evictions are never fatal.
    #[test]
    fn overload_caps_hold_and_fabric_converges(sched in arb_schedule()) {
        let mut built = build(&sched);
        built.fabric.run_until(secs_f(QUIESCE));

        // Bounded: high-water marks, so a mid-run excursion cannot hide.
        let rs = built.fabric.routing_node();
        let server_peak = built.fabric.sim_mut().ingress_peak(rs);
        prop_assert!(
            (server_peak as usize) <= sched.limits.ingress_cap,
            "server ingress peak {server_peak} > cap {}",
            sched.limits.ingress_cap
        );
        for &e in &built.edges {
            let edge = built.fabric.edge(e);
            prop_assert!(edge.resolving_peak() <= sched.limits.retry_cap);
            prop_assert!(edge.pending_registers_peak() <= sched.limits.retry_cap);
        }
        prop_assert!(
            built.fabric.routing_server().server().pubsub_peak_depth()
                <= sda_ctrl::DEFAULT_QUEUE_CAP
        );

        // Convergent: the guarded fixed point equals the unguarded one.
        let report = check_convergence(&built.fabric, &expected(&built));
        prop_assert!(report.converged(), "schedule {sched:?} left {report:?}");
        for &e in &built.edges {
            prop_assert_eq!(built.fabric.edge(e).pending_register_len(), 0);
        }
    }
}
