//! Random fault schedules against the retry/self-healing control plane:
//!
//! 1. **Convergence** — after any generated mix of loss windows, server
//!    and border reboots and endpoint roams, the quiesced fabric reaches
//!    the fault-free fixed point: the expected placement is registered,
//!    borders mirror the database, nothing is stuck resolving.
//! 2. **Replay** — the same schedule under the same seed reproduces the
//!    exact counter trace, drop for drop.
//!
//! Schedules deliberately exclude edge↔policy loss (authentication has
//! no retransmit path; chaos scenarios model that pair as an
//! out-of-band management network) and edge reboots overlapping roams
//! (a detach aimed at a powered-off switch is lost with it — edge
//! reboot recovery has its own focused tests in `chaos_recovery.rs`).

use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_core::controller::{EdgeHandle, Fabric, FabricBuilder};
use sda_core::msg::EndpointIdentity;
use sda_core::{check_convergence, ExpectedPlacement};
use sda_simnet::{FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

const EDGES: usize = 3;
const ENDPOINTS: usize = 4;
/// Endpoints below this index may roam; the rest send traffic (a sender
/// never leaves its edge, so its scheduled sends stay valid).
const ROAMERS: usize = 2;

fn secs_f(s: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(s)
}

/// One randomly generated fault.
#[derive(Clone, Copy, Debug)]
enum ChaosFault {
    /// Loss spike on edge↔routing-server.
    EdgeLoss {
        edge: usize,
        loss: f64,
        from: f64,
        dur: f64,
    },
    /// Loss spike on border↔routing-server.
    BorderLoss { loss: f64, from: f64, dur: f64 },
    /// Fabric-wide default loss window.
    FabricLoss { loss: f64, from: f64, dur: f64 },
    /// Routing-server reboot (database, subscribers, ARP all lost).
    ServerReboot { from: f64, dur: f64 },
    /// Border reboot (synced slice lost).
    BorderReboot { from: f64, dur: f64 },
}

fn arb_fault() -> impl Strategy<Value = ChaosFault> {
    prop_oneof![
        (0..EDGES, 0.3f64..=1.0, 5.0f64..25.0, 2.0f64..10.0).prop_map(|(edge, loss, from, dur)| {
            ChaosFault::EdgeLoss {
                edge,
                loss,
                from,
                dur,
            }
        }),
        (0.3f64..=1.0, 5.0f64..25.0, 2.0f64..10.0)
            .prop_map(|(loss, from, dur)| ChaosFault::BorderLoss { loss, from, dur }),
        (0.02f64..0.15, 5.0f64..25.0, 2.0f64..10.0)
            .prop_map(|(loss, from, dur)| ChaosFault::FabricLoss { loss, from, dur }),
        (5.0f64..25.0, 1.0f64..4.0).prop_map(|(from, dur)| ChaosFault::ServerReboot { from, dur }),
        (5.0f64..25.0, 1.0f64..4.0).prop_map(|(from, dur)| ChaosFault::BorderReboot { from, dur }),
    ]
}

/// One roam: endpoint `who` moves to `to_edge` at `at`.
#[derive(Clone, Copy, Debug)]
struct Roam {
    who: usize,
    to_edge: usize,
    at: f64,
}

fn arb_roam() -> impl Strategy<Value = Roam> {
    (0..ROAMERS, 0..EDGES, 6.0f64..30.0).prop_map(|(who, to_edge, at)| Roam { who, to_edge, at })
}

/// One background send from a static endpoint.
#[derive(Clone, Copy, Debug)]
struct Send {
    from: usize,
    to: usize,
    at: f64,
}

fn arb_send() -> impl Strategy<Value = Send> {
    (ROAMERS..ENDPOINTS, 0..ENDPOINTS, 6.0f64..30.0).prop_map(|(from, to, at)| Send {
        from,
        to,
        at,
    })
}

#[derive(Clone, Debug)]
struct Schedule {
    seed: u64,
    faults: Vec<ChaosFault>,
    roams: Vec<Roam>,
    sends: Vec<Send>,
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        any::<u64>(),
        proptest::collection::vec(arb_fault(), 0..5),
        proptest::collection::vec(arb_roam(), 0..4),
        proptest::collection::vec(arb_send(), 0..5),
    )
        .prop_map(|(seed, faults, roams, sends)| Schedule {
            seed,
            faults,
            roams,
            sends,
        })
}

struct Built {
    fabric: Fabric,
    edges: Vec<EdgeHandle>,
    roster: Vec<EndpointIdentity>,
    vn: VnId,
    /// Final edge index per endpoint after the roams apply in order.
    placement: Vec<usize>,
}

/// Builds a small fabric and schedules everything in `sched`.
fn build(sched: &Schedule) -> Built {
    let mut b = FabricBuilder::new(sched.seed);
    {
        let cfg = b.config_mut();
        cfg.refresh_interval = Some(SimDuration::from_secs(5));
        cfg.subscribe_refresh_interval = Some(SimDuration::from_secs(5));
        cfg.purge_interval = Some(SimDuration::from_secs(5));
        cfg.register_ttl_secs = 30;
        cfg.idle_timeout = SimDuration::from_secs(10);
        cfg.eviction_interval = SimDuration::from_secs(2);
    }
    let vn = b.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );
    let users = GroupId(10);
    b.allow(vn, users, users);
    let edges: Vec<EdgeHandle> = (0..EDGES).map(|i| b.add_edge(format!("pe{i}"))).collect();
    let border = b.add_border("pb", vec![]);
    let _ = border;
    let roster: Vec<EndpointIdentity> =
        (0..ENDPOINTS).map(|_| b.mint_endpoint(vn, users)).collect();
    let mut fabric = b.build();

    // Everyone starts on edge (index % EDGES).
    let mut placement: Vec<usize> = (0..ENDPOINTS).map(|i| i % EDGES).collect();
    for (i, id) in roster.iter().enumerate() {
        fabric.attach_at(SimTime::ZERO, edges[placement[i]], *id, PortId(i as u16));
    }

    let rs = fabric.routing_node();
    let border_node = fabric.border_node(sda_core::controller::BorderHandle(0));
    // Pin edge↔policy lossless (the out-of-band management network —
    // see module docs): a fabric-wide loss window must not eat an
    // auth round-trip, which has no retransmit path.
    let policy = fabric.policy_node();
    let mut plan = FaultPlan::new();
    for &e in &edges {
        plan = plan.at(
            SimTime::ZERO,
            sda_simnet::Fault::Loss {
                a: fabric.edge_node(e),
                b: policy,
                loss: 0.0,
            },
        );
    }
    for f in &sched.faults {
        plan = match *f {
            ChaosFault::EdgeLoss {
                edge,
                loss,
                from,
                dur,
            } => plan.loss_window(
                fabric.edge_node(edges[edge]),
                rs,
                loss,
                secs_f(from),
                secs_f(from + dur),
            ),
            ChaosFault::BorderLoss { loss, from, dur } => {
                plan.loss_window(border_node, rs, loss, secs_f(from), secs_f(from + dur))
            }
            ChaosFault::FabricLoss { loss, from, dur } => {
                plan.default_loss_window(loss, secs_f(from), secs_f(from + dur))
            }
            ChaosFault::ServerReboot { from, dur } => {
                plan.reboot(rs, secs_f(from), secs_f(from + dur))
            }
            ChaosFault::BorderReboot { from, dur } => {
                plan.reboot(border_node, secs_f(from), secs_f(from + dur))
            }
        };
    }
    fabric.schedule_faults(&plan);

    // Roams in time order so detaches aim at the edge the endpoint is
    // actually on when each one fires.
    let mut roams = sched.roams.clone();
    roams.sort_by(|a, b| a.at.total_cmp(&b.at));
    for r in &roams {
        let from_edge = placement[r.who];
        if r.to_edge == from_edge {
            continue;
        }
        fabric.detach_at(secs_f(r.at), edges[from_edge], roster[r.who].mac);
        fabric.attach_at(
            secs_f(r.at + 0.5),
            edges[r.to_edge],
            roster[r.who],
            PortId(r.who as u16),
        );
        placement[r.who] = r.to_edge;
    }

    for s in &sched.sends {
        fabric.send_at(
            secs_f(s.at),
            edges[placement[s.from]],
            roster[s.from].mac,
            Eid::V4(roster[s.to].ipv4),
            128,
            (s.from * 16 + s.to) as u64,
            false,
        );
    }

    Built {
        fabric,
        edges,
        roster,
        vn,
        placement,
    }
}

fn expected(built: &Built) -> ExpectedPlacement {
    let mut want = ExpectedPlacement::new();
    for (i, id) in built.roster.iter().enumerate() {
        let rloc = built.fabric.edge(built.edges[built.placement[i]]).rloc();
        want.insert((built.vn, Eid::V4(id.ipv4)), rloc);
        want.insert((built.vn, Eid::Mac(id.mac)), rloc);
    }
    want
}

/// Quiesce off the 5-second control-plane timer grid: faults end by
/// 35 s; 23 s of calm covers the retry budget, several refresh rounds
/// and two idle-eviction horizons.
const QUIESCE: f64 = 58.0;

fn counter_trace(fabric: &Fabric) -> Vec<u64> {
    [
        "fabric.delivered",
        "fabric.map_requests",
        "fabric.map_request_retries",
        "fabric.register_retries",
        "fabric.register_timeouts",
        "fabric.resolve_timeouts",
        "ctrl.server_restarts",
        "border.publish_gaps",
        "border.publish_regressions",
        "border.resyncs_completed",
        "simnet.faults_injected",
        "simnet.fault_msg_drops",
        "simnet.link_drops",
    ]
    .iter()
    .map(|n| fabric.metrics().counter(n))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated schedule converges to the fault-free fixed point.
    #[test]
    fn random_chaos_converges(sched in arb_schedule()) {
        let mut built = build(&sched);
        built.fabric.run_until(secs_f(QUIESCE));
        let report = check_convergence(&built.fabric, &expected(&built));
        prop_assert!(report.converged(), "schedule {sched:?} left {report:?}");
    }

    /// Same schedule, same seed: the counter trace replays exactly.
    #[test]
    fn random_chaos_replays_identically(sched in arb_schedule()) {
        let run = |sched: &Schedule| {
            let mut built = build(sched);
            built.fabric.run_until(secs_f(QUIESCE));
            counter_trace(&built.fabric)
        };
        prop_assert_eq!(run(&sched), run(&sched));
    }
}
