//! The fabric controller: the declarative operator interface of §3.1
//! ("define (i) an endpoint's group and VN, (ii) the endpoint
//! authentication data, (iii) the connectivity matrix") plus the
//! scenario builder that instantiates the whole system on the simulator.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use sda_policy::{Action, AuthMethod, PolicyServer};
use sda_simnet::{Metrics, NodeId, SimDuration, SimTime, Simulator};
use sda_types::{Eid, GroupId, Ipv4Prefix, MacAddr, PortId, Rloc, VnId};
use sda_underlay::LinkStateRouter;

use crate::border::BorderRouter;
use crate::dhcp::DhcpPool;
use crate::edge::{underlay_id, EdgeRouter};
use crate::msg::{EndpointIdentity, FabricMsg, HostEvent};
use crate::pipeline::EnforcementPoint;
use crate::servers::{Directory, PolicyServerNode, RoutingServerNode};
use crate::vrf::LocalEndpoint;

/// Fabric-wide behavior knobs, shared read-only by every node.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Matrix default for unmatched group pairs.
    pub default_action: Action,
    /// Where group policy is enforced (§5.3).
    pub enforcement: EnforcementPoint,
    /// Fabric hop budget per packet (§5.2 loop damping).
    pub hop_budget: u8,
    /// Registration TTL sent in Map-Registers.
    pub register_ttl_secs: u32,
    /// Register the MAC EID alongside IPv4 (L2 services). Large mobility
    /// scenarios that only exercise L3 can disable it to halve
    /// registration load.
    pub register_mac: bool,
    /// Forward cache misses to the border (§3.2.2's default route).
    /// `false` drops the first packets of a flow instead — the ablation
    /// showing why the border sync exists.
    pub border_default_route: bool,
    /// Edge re-registration period (None = never refresh).
    pub refresh_interval: Option<SimDuration>,
    /// Map-cache eviction sweep period.
    pub eviction_interval: SimDuration,
    /// Map-cache idle decay: entries unused this long are dropped.
    pub idle_timeout: SimDuration,
    /// FIB-size sampling period (None = no sampling). Fig. 9's "hourly
    /// from the router CLI" collection.
    pub fib_sample_interval: Option<SimDuration>,
    /// Routing-server expiry sweep period (None = never purge).
    pub purge_interval: Option<SimDuration>,
    /// Map-server shards the routing server partitions EID space over
    /// (1 = the paper's single routing server).
    pub ctrl_shards: usize,
    /// Underlay protocol tick (only with dynamics enabled).
    pub underlay_tick: SimDuration,
    /// Edge data-plane per-packet control cost (tiny: ASIC path).
    pub data_service: SimDuration,
    /// Edge control-plane per-message cost.
    pub edge_control_service: SimDuration,
    /// Border data-plane per-packet cost (more powerful box).
    pub border_data_service: SimDuration,
    /// VNs the border subscribes to.
    pub vns: Vec<VnId>,
    /// Ingress-enforcement destination-group oracle (§5.3 ablation).
    pub dst_groups: BTreeMap<(VnId, Eid), GroupId>,
    /// Control-plane retransmit: first retry delay for unacknowledged
    /// Map-Requests, Map-Registers and Subscribes. Doubles per attempt.
    pub rtx_initial: SimDuration,
    /// Cap on the retransmit backoff.
    pub rtx_max_backoff: SimDuration,
    /// Send budget per Map-Request/Register (initial send included).
    /// Exhausting it evicts the pending entry — no stuck `resolving`
    /// state. Border Subscribes retry without bound: a border without a
    /// synced table is useless, so it keeps trying.
    pub rtx_max_attempts: u32,
    /// Border re-subscribe period (None = subscribe once at start and
    /// only resync on detected gaps). A periodic resubscribe bounds how
    /// long a border can stay silently divergent after arbitrary loss.
    pub subscribe_refresh_interval: Option<SimDuration>,
    /// Decorrelated jitter on retransmit backoff (per-node deterministic
    /// stream). `false` restores the synchronized exponential schedule —
    /// the ablation showing why jitter exists.
    pub rtx_jitter: bool,
    /// Cap on concurrently-resolving EIDs per edge (the punt funnel's
    /// control-plane side). Overflow evicts the oldest-deadline entry.
    pub max_resolving: usize,
    /// Cap on unacked Map-Registers per edge. Overflow evicts the
    /// oldest-deadline entry; the periodic refresh re-registers it.
    pub max_pending_registers: usize,
    /// Negative-cache hold after a resolution exhausts its attempt
    /// budget: fresh punts for that EID are ignored this long.
    pub punt_negative_hold: SimDuration,
    /// Per-node ingress queue bound (None = unbounded). Arrivals beyond
    /// the cap while the node's CPU is busy are tail-dropped.
    pub node_ingress_cap: Option<usize>,
    /// Routing-server admission control (None = serve everything).
    pub admission: Option<sda_ctrl::AdmissionConfig>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            default_action: Action::Deny,
            enforcement: EnforcementPoint::Egress,
            hop_budget: crate::msg::DEFAULT_HOPS,
            register_ttl_secs: 2 * 3600,
            register_mac: true,
            border_default_route: true,
            refresh_interval: Some(SimDuration::from_mins(30)),
            eviction_interval: SimDuration::from_mins(10),
            idle_timeout: SimDuration::from_hours(20),
            fib_sample_interval: None,
            purge_interval: Some(SimDuration::from_mins(10)),
            ctrl_shards: 1,
            underlay_tick: SimDuration::from_secs(1),
            data_service: SimDuration::from_nanos(500),
            edge_control_service: SimDuration::from_micros(50),
            border_data_service: SimDuration::from_nanos(200),
            vns: Vec::new(),
            dst_groups: BTreeMap::new(),
            rtx_initial: SimDuration::from_millis(500),
            rtx_max_backoff: SimDuration::from_secs(8),
            rtx_max_attempts: 6,
            subscribe_refresh_interval: None,
            rtx_jitter: true,
            max_resolving: 4096,
            max_pending_registers: 4096,
            punt_negative_hold: SimDuration::from_secs(2),
            node_ingress_cap: None,
            admission: None,
        }
    }
}

impl FabricConfig {
    /// The destination-group hint available to ingress enforcement.
    pub fn dst_group_hint(&self, vn: VnId, dst: Eid) -> Option<GroupId> {
        if matches!(self.enforcement, EnforcementPoint::Ingress) {
            self.dst_groups.get(&(vn, dst)).copied()
        } else {
            None
        }
    }

    /// The enforcement point the egress stage should honour.
    pub fn enforcement_for_egress(&self) -> EnforcementPoint {
        self.enforcement
    }
}

/// Handle to an edge added to the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeHandle(pub usize);

/// Handle to a border added to the builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BorderHandle(pub usize);

/// A border-attached infrastructure endpoint (traffic sink / server).
struct BorderSink {
    border: BorderHandle,
    vn: VnId,
    endpoint: EndpointIdentity,
    group: GroupId,
    port: PortId,
}

/// Builds a runnable [`Fabric`].
pub struct FabricBuilder {
    seed: u64,
    config: FabricConfig,
    policy: PolicyServer,
    dhcp: DhcpPool,
    edge_names: Vec<String>,
    border_names: Vec<String>,
    border_external: Vec<Vec<Ipv4Prefix>>,
    border_sinks: Vec<BorderSink>,
    next_mac_seed: u32,
    link_latency: SimDuration,
    underlay_dynamics: bool,
}

impl FabricBuilder {
    /// Starts a build with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FabricBuilder {
            seed,
            config: FabricConfig::default(),
            policy: PolicyServer::new(),
            dhcp: DhcpPool::new(),
            edge_names: Vec::new(),
            border_names: Vec::new(),
            border_external: Vec::new(),
            border_sinks: Vec::new(),
            next_mac_seed: 1,
            link_latency: SimDuration::from_micros(50),
            underlay_dynamics: false,
        }
    }

    /// Mutable access to the behavior knobs.
    pub fn config_mut(&mut self) -> &mut FabricConfig {
        &mut self.config
    }

    /// Mutable access to the policy server being configured.
    pub fn policy_mut(&mut self) -> &mut PolicyServer {
        &mut self.policy
    }

    /// Sets the uniform fabric link latency.
    pub fn link_latency(&mut self, d: SimDuration) -> &mut Self {
        self.link_latency = d;
        self
    }

    /// Enables the live link-state underlay on every edge (hellos, LSAs,
    /// reachability fallback). Off by default: long campus runs don't
    /// need per-second protocol chatter.
    pub fn enable_underlay_dynamics(&mut self) -> &mut Self {
        self.underlay_dynamics = true;
        self
    }

    /// Declares a VN with its overlay subnet.
    pub fn add_vn(&mut self, raw: u32, subnet: Ipv4Prefix) -> VnId {
        let vn = VnId::new(raw).expect("VN id fits 24 bits");
        self.dhcp.add_pool(vn, subnet);
        self.config.vns.push(vn);
        vn
    }

    /// Allows `src → dst` (one direction) in `vn`.
    pub fn allow(&mut self, vn: VnId, src: GroupId, dst: GroupId) -> &mut Self {
        self.policy
            .matrix_mut()
            .set_rule(vn, src, dst, Action::Allow);
        self
    }

    /// Denies `src → dst` explicitly in `vn`.
    pub fn deny(&mut self, vn: VnId, src: GroupId, dst: GroupId) -> &mut Self {
        self.policy
            .matrix_mut()
            .set_rule(vn, src, dst, Action::Deny);
        self
    }

    /// Adds an edge router.
    pub fn add_edge(&mut self, name: impl Into<String>) -> EdgeHandle {
        self.edge_names.push(name.into());
        EdgeHandle(self.edge_names.len() - 1)
    }

    /// Adds a border router with its external prefixes.
    pub fn add_border(
        &mut self,
        name: impl Into<String>,
        external: Vec<Ipv4Prefix>,
    ) -> BorderHandle {
        self.border_names.push(name.into());
        self.border_external.push(external);
        BorderHandle(self.border_names.len() - 1)
    }

    /// Mints a new endpoint in `vn`/`group`: allocates its overlay IP,
    /// enrolls its credential, returns its identity for attach events.
    pub fn mint_endpoint(&mut self, vn: VnId, group: GroupId) -> EndpointIdentity {
        self.mint_endpoint_with_method(vn, group, AuthMethod::Simple)
    }

    /// Like [`Self::mint_endpoint`] with an explicit auth method.
    pub fn mint_endpoint_with_method(
        &mut self,
        vn: VnId,
        group: GroupId,
        method: AuthMethod,
    ) -> EndpointIdentity {
        let seed = self.next_mac_seed;
        self.next_mac_seed += 1;
        let mac = MacAddr::from_seed(seed);
        let ipv4 = self
            .dhcp
            .allocate(vn)
            .expect("overlay pool exhausted or VN undeclared");
        let secret = u64::from(seed) * 7919;
        self.policy.enroll(mac, secret, vn, group, method);
        // Keep the §5.3 oracle in sync for ingress-mode ablations.
        self.config.dst_groups.insert((vn, Eid::V4(ipv4)), group);
        self.config.dst_groups.insert((vn, Eid::Mac(mac)), group);
        EndpointIdentity { mac, ipv4, secret }
    }

    /// Attaches an infrastructure endpoint directly to a border
    /// (traffic sinks, servers — they do not roam or authenticate
    /// dynamically).
    pub fn add_border_sink(
        &mut self,
        border: BorderHandle,
        vn: VnId,
        group: GroupId,
        port: PortId,
    ) -> EndpointIdentity {
        let endpoint = self.mint_endpoint(vn, group);
        self.border_sinks.push(BorderSink {
            border,
            vn,
            endpoint,
            group,
            port,
        });
        endpoint
    }

    /// RLOC assignment: edges at indices 1…, borders at 30000…, routing
    /// server at 65000.
    fn edge_rloc(i: usize) -> Rloc {
        Rloc::for_router_index(1 + i as u16)
    }

    fn border_rloc(i: usize) -> Rloc {
        Rloc::for_router_index(30_000 + i as u16)
    }

    const ROUTING_RLOC: Rloc = Rloc(Ipv4Addr::new(10, 255, 253, 232)); // index 65000

    /// Instantiates the simulator, nodes and wiring.
    ///
    /// # Panics
    /// Panics if no border router was added (the design requires the
    /// default-route target).
    pub fn build(self) -> Fabric {
        assert!(
            !self.border_names.is_empty(),
            "SDA requires at least one border router (default-route target)"
        );
        let mut sim: Simulator<FabricMsg> = Simulator::new(self.seed);
        sim.set_default_latency(self.link_latency);

        // Node ids are assigned in add order: policy, routing, borders,
        // edges.
        let policy_id = NodeId(0);
        let routing_id = NodeId(1);
        let mut node_of_rloc = BTreeMap::new();
        node_of_rloc.insert(Self::ROUTING_RLOC, routing_id);
        for i in 0..self.border_names.len() {
            node_of_rloc.insert(Self::border_rloc(i), NodeId(2 + i as u32));
        }
        let first_edge = 2 + self.border_names.len() as u32;
        for i in 0..self.edge_names.len() {
            node_of_rloc.insert(Self::edge_rloc(i), NodeId(first_edge + i as u32));
        }

        let dir = Rc::new(Directory {
            node_of_rloc,
            routing_server: routing_id,
            routing_server_rloc: Self::ROUTING_RLOC,
            policy_server: policy_id,
            border_rloc: Self::border_rloc(0),
            params: self.config.clone(),
        });

        let got_policy = sim.add_node(Box::new(PolicyServerNode::new(self.policy, dir.clone())));
        assert_eq!(got_policy, policy_id);
        let mut rs =
            sda_ctrl::PartitionedMapServer::new(Self::ROUTING_RLOC, self.config.ctrl_shards);
        rs.set_admission(self.config.admission);
        let got_routing = sim.add_node(Box::new(RoutingServerNode::new(rs, dir.clone())));
        assert_eq!(got_routing, routing_id);

        let mut borders = Vec::new();
        for (i, name) in self.border_names.iter().enumerate() {
            let mut border = BorderRouter::new(name.clone(), Self::border_rloc(i), dir.clone());
            for p in &self.border_external[i] {
                border.add_external(*p);
            }
            // Pre-install border sinks.
            for sink in self.border_sinks.iter().filter(|s| s.border.0 == i) {
                border.attach_sink(
                    sink.vn,
                    LocalEndpoint {
                        port: sink.port,
                        group: sink.group,
                        mac: sink.endpoint.mac,
                        ipv4: sink.endpoint.ipv4,
                    },
                );
            }
            let id = sim.add_node(Box::new(border));
            borders.push(id);
        }

        // Fabric routers that participate in the underlay protocol see a
        // full mesh of unit-cost links to the other fabric routers.
        let all_fabric_rlocs: Vec<Rloc> = (0..self.edge_names.len())
            .map(Self::edge_rloc)
            .chain((0..self.border_names.len()).map(Self::border_rloc))
            .collect();

        let mut edges = Vec::new();
        for (i, name) in self.edge_names.iter().enumerate() {
            let rloc = Self::edge_rloc(i);
            let mut edge = EdgeRouter::new(name.clone(), rloc, dir.clone());
            if self.underlay_dynamics {
                let me = underlay_id(rloc);
                let links: Vec<(sda_types::RouterId, u32)> = all_fabric_rlocs
                    .iter()
                    .filter(|r| **r != rloc)
                    .map(|r| (underlay_id(*r), 1))
                    .collect();
                let watch: Vec<sda_types::RouterId> = links.iter().map(|(r, _)| *r).collect();
                edge = edge.with_underlay(LinkStateRouter::new(me, links), watch);
            }
            let id = sim.add_node(Box::new(edge));
            edges.push(id);
        }

        // Bounded ingress: apply the per-node queue cap to every fabric
        // node (servers included — the storm hits them hardest).
        if let Some(cap) = dir.params.node_ingress_cap {
            sim.set_ingress_cap(policy_id, cap);
            sim.set_ingress_cap(routing_id, cap);
            for id in borders.iter().chain(edges.iter()) {
                sim.set_ingress_cap(*id, cap);
            }
        }

        // Kick timers: border subscription at t=0, edge timers at t=0.
        for b in &borders {
            sim.arm_timer_at(SimTime::ZERO, *b, 0);
        }
        for e in &edges {
            sim.arm_timer_at(SimTime::ZERO, *e, 0);
        }
        if dir.params.purge_interval.is_some() {
            sim.arm_timer_at(SimTime::ZERO, routing_id, 0);
        }

        Fabric {
            sim,
            dir,
            policy: policy_id,
            routing: routing_id,
            borders,
            edges,
        }
    }
}

/// A built, runnable fabric.
pub struct Fabric {
    sim: Simulator<FabricMsg>,
    dir: Rc<Directory>,
    policy: NodeId,
    routing: NodeId,
    borders: Vec<NodeId>,
    edges: Vec<NodeId>,
}

impl Fabric {
    /// Schedules an endpoint attach at `at`.
    pub fn attach_at(
        &mut self,
        at: SimTime,
        edge: EdgeHandle,
        endpoint: EndpointIdentity,
        port: PortId,
    ) {
        let vn = VnId::DEFAULT; // informational; binding comes from policy
        self.sim.inject_at(
            at,
            self.edges[edge.0],
            FabricMsg::Host(HostEvent::Attach { endpoint, port, vn }),
        );
    }

    /// Schedules an endpoint detach at `at`.
    pub fn detach_at(&mut self, at: SimTime, edge: EdgeHandle, mac: MacAddr) {
        self.sim.inject_at(
            at,
            self.edges[edge.0],
            FabricMsg::Host(HostEvent::Detach { mac }),
        );
    }

    /// Schedules a packet send from an endpoint attached at `edge`.
    #[allow(clippy::too_many_arguments)]
    pub fn send_at(
        &mut self,
        at: SimTime,
        edge: EdgeHandle,
        src_mac: MacAddr,
        dst: Eid,
        payload_len: u16,
        flow: u64,
        track: bool,
    ) {
        self.sim.inject_at(
            at,
            self.edges[edge.0],
            FabricMsg::Host(HostEvent::Send {
                src_mac,
                dst,
                payload_len,
                flow,
                track,
            }),
        );
    }

    /// Schedules a send from a border-attached sink.
    #[allow(clippy::too_many_arguments)]
    pub fn send_from_border_at(
        &mut self,
        at: SimTime,
        border: BorderHandle,
        src_mac: MacAddr,
        dst: Eid,
        payload_len: u16,
        flow: u64,
        track: bool,
    ) {
        self.sim.inject_at(
            at,
            self.borders[border.0],
            FabricMsg::Host(HostEvent::Send {
                src_mac,
                dst,
                payload_len,
                flow,
                track,
            }),
        );
    }

    /// Schedules an ARP broadcast from an endpoint.
    pub fn arp_at(&mut self, at: SimTime, edge: EdgeHandle, src_mac: MacAddr, target_ip: Ipv4Addr) {
        self.sim.inject_at(
            at,
            self.edges[edge.0],
            FabricMsg::Host(HostEvent::ArpRequest { src_mac, target_ip }),
        );
    }

    /// Runs until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    /// Runs until the event queue drains (bounded).
    pub fn run_to_completion(&mut self, max_events: u64) {
        self.sim.run_to_completion(max_events);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Raw simulator access (advanced scenarios).
    pub fn sim_mut(&mut self) -> &mut Simulator<FabricMsg> {
        &mut self.sim
    }

    /// The directory (wiring + parameters).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Inspects an edge router after/during a run.
    pub fn edge(&self, h: EdgeHandle) -> &EdgeRouter {
        self.sim
            .node(self.edges[h.0])
            .as_any()
            .and_then(|a| a.downcast_ref::<EdgeRouter>())
            .expect("edge handle maps to an EdgeRouter")
    }

    /// Inspects a border router.
    pub fn border(&self, h: BorderHandle) -> &BorderRouter {
        self.sim
            .node(self.borders[h.0])
            .as_any()
            .and_then(|a| a.downcast_ref::<BorderRouter>())
            .expect("border handle maps to a BorderRouter")
    }

    /// Inspects the routing server.
    pub fn routing_server(&self) -> &RoutingServerNode {
        self.sim
            .node(self.routing)
            .as_any()
            .and_then(|a| a.downcast_ref::<RoutingServerNode>())
            .expect("routing node")
    }

    /// Inspects the policy server.
    pub fn policy_server(&self) -> &PolicyServerNode {
        self.sim
            .node(self.policy)
            .as_any()
            .and_then(|a| a.downcast_ref::<PolicyServerNode>())
            .expect("policy node")
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of borders.
    pub fn border_count(&self) -> usize {
        self.borders.len()
    }

    /// Simulator node of an edge — for authoring [`sda_simnet::FaultPlan`]s.
    pub fn edge_node(&self, h: EdgeHandle) -> NodeId {
        self.edges[h.0]
    }

    /// Simulator node of a border.
    pub fn border_node(&self, h: BorderHandle) -> NodeId {
        self.borders[h.0]
    }

    /// Simulator node of the routing server.
    pub fn routing_node(&self) -> NodeId {
        self.routing
    }

    /// Simulator node of the policy server.
    pub fn policy_node(&self) -> NodeId {
        self.policy
    }

    /// Schedules a chaos plan against the fabric (see
    /// [`sda_simnet::FaultPlan`]).
    pub fn schedule_faults(&mut self, plan: &sda_simnet::FaultPlan) {
        self.sim.schedule_faults(plan);
    }

    /// Fault injection: fail or revive an edge (§5.1 outage scenarios).
    pub fn set_edge_failed(&mut self, h: EdgeHandle, failed: bool) {
        let id = self.edges[h.0];
        self.sim
            .node_mut(id)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<EdgeRouter>())
            .expect("edge handle maps to an EdgeRouter")
            .set_failed(failed);
    }

    /// Reboots an edge (§5.2): volatile state lost; endpoints must
    /// re-attach (inject fresh Attach events afterwards).
    pub fn reboot_edge(&mut self, h: EdgeHandle) {
        let id = self.edges[h.0];
        self.sim
            .node_mut(id)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<EdgeRouter>())
            .expect("edge handle maps to an EdgeRouter")
            .reboot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_types::Eid;

    fn two_edge_fabric() -> (
        Fabric,
        EdgeHandle,
        EdgeHandle,
        BorderHandle,
        VnId,
        EndpointIdentity,
        EndpointIdentity,
    ) {
        let mut b = FabricBuilder::new(42);
        let vn = b.add_vn(
            100,
            Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
        );
        let users = GroupId(10);
        b.allow(vn, users, users);
        let e1 = b.add_edge("edge1");
        let e2 = b.add_edge("edge2");
        let border = b.add_border(
            "border",
            vec![Ipv4Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).unwrap()],
        );
        let alice = b.mint_endpoint(vn, users);
        let bob = b.mint_endpoint(vn, users);
        (b.build(), e1, e2, border, vn, alice, bob)
    }

    #[test]
    fn onboarding_registers_and_delivers_cross_edge() {
        let (mut f, e1, e2, _bh, _vn, alice, bob) = two_edge_fabric();
        f.attach_at(SimTime::ZERO, e1, alice, PortId(1));
        f.attach_at(SimTime::ZERO, e2, bob, PortId(1));
        f.run_until(SimTime::from_nanos(100_000_000)); // 100 ms

        assert_eq!(f.edge(e1).stats().onboarded, 1);
        assert_eq!(f.edge(e2).stats().onboarded, 1);
        assert_eq!(
            f.routing_server().server().db_len(),
            4,
            "2 endpoints × 2 EIDs"
        );

        // First packet: cache miss → default route via border; resolution
        // follows; second packet goes direct.
        let t1 = SimTime::from_nanos(200_000_000);
        f.send_at(t1, e1, alice.mac, Eid::V4(bob.ipv4), 100, 1, false);
        let t2 = SimTime::from_nanos(400_000_000);
        f.send_at(t2, e1, alice.mac, Eid::V4(bob.ipv4), 100, 2, false);
        f.run_until(SimTime::from_nanos(600_000_000));

        let e1s = f.edge(e1).stats();
        let e2s = f.edge(e2).stats();
        assert_eq!(e1s.default_routed, 1, "first packet border-routed");
        assert_eq!(e1s.map_requests, 1);
        assert_eq!(e2s.delivered, 2, "both packets delivered");
        assert_eq!(f.border(_bh).stats().relayed, 1, "border relayed the first");
        assert_eq!(f.edge(e1).fib_len(), 1, "one cached mapping");
    }

    #[test]
    fn policy_denies_unauthorized_group_traffic() {
        let mut b = FabricBuilder::new(7);
        let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
        let users = GroupId(10);
        let iot = GroupId(20);
        b.allow(vn, users, users);
        // No rule users→iot: default deny.
        let e1 = b.add_edge("e1");
        let e2 = b.add_edge("e2");
        let bh = b.add_border("border", vec![]);
        let user = b.mint_endpoint(vn, users);
        let sensor = b.mint_endpoint(vn, iot);
        let mut f = b.build();
        let _ = bh;

        f.attach_at(SimTime::ZERO, e1, user, PortId(1));
        f.attach_at(SimTime::ZERO, e2, sensor, PortId(1));
        f.run_until(SimTime::from_nanos(100_000_000));

        // user → sensor must drop at egress (e2).
        f.send_at(
            SimTime::from_nanos(200_000_000),
            e1,
            user.mac,
            Eid::V4(sensor.ipv4),
            64,
            1,
            false,
        );
        f.run_until(SimTime::from_nanos(400_000_000));
        assert_eq!(f.edge(e2).stats().policy_drops, 1);
        assert_eq!(f.edge(e2).stats().delivered, 0);
    }

    #[test]
    fn vn_isolation_is_structural() {
        let mut b = FabricBuilder::new(9);
        let vn_a = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
        let vn_b = b.add_vn(2, Ipv4Prefix::new(Ipv4Addr::new(10, 2, 0, 0), 16).unwrap());
        let g = GroupId(1);
        b.allow(vn_a, g, g);
        b.allow(vn_b, g, g);
        let e1 = b.add_edge("e1");
        let e2 = b.add_edge("e2");
        b.add_border("border", vec![]);
        let a = b.mint_endpoint(vn_a, g);
        let bb = b.mint_endpoint(vn_b, g);
        let mut f = b.build();

        f.attach_at(SimTime::ZERO, e1, a, PortId(1));
        f.attach_at(SimTime::ZERO, e2, bb, PortId(1));
        f.run_until(SimTime::from_nanos(100_000_000));

        // a (VN 1) → bb's address: lookup happens inside VN 1 where bb
        // is not registered → never delivered.
        f.send_at(
            SimTime::from_nanos(200_000_000),
            e1,
            a.mac,
            Eid::V4(bb.ipv4),
            64,
            1,
            false,
        );
        f.run_until(SimTime::from_nanos(500_000_000));
        assert_eq!(f.edge(e2).stats().delivered, 0);
        assert_eq!(f.border(BorderHandle(0)).stats().unroutable, 1);
    }

    #[test]
    fn same_edge_traffic_stays_local() {
        let (mut f, e1, _e2, bh, _vn, alice, bob) = two_edge_fabric();
        f.attach_at(SimTime::ZERO, e1, alice, PortId(1));
        f.attach_at(SimTime::ZERO, e1, bob, PortId(2));
        f.run_until(SimTime::from_nanos(100_000_000));
        f.send_at(
            SimTime::from_nanos(200_000_000),
            e1,
            alice.mac,
            Eid::V4(bob.ipv4),
            64,
            1,
            false,
        );
        f.run_until(SimTime::from_nanos(300_000_000));
        let s = f.edge(e1).stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.default_routed, 0, "no fabric transit for local traffic");
        assert_eq!(f.border(bh).stats().relayed, 0);
    }

    #[test]
    fn mobility_forwarding_and_smr_refresh() {
        let mut b = FabricBuilder::new(42);
        let vn = b.add_vn(
            100,
            Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
        );
        let users = GroupId(10);
        b.allow(vn, users, users);
        let e1 = b.add_edge("edge1");
        let e2 = b.add_edge("edge2");
        let e3 = b.add_edge("edge3");
        b.add_border("border", vec![]);
        let alice = b.mint_endpoint(vn, users);
        let bob = b.mint_endpoint(vn, users);
        let mut f = b.build();

        // bob on e2, alice on e1; alice talks to bob, e1's cache warms.
        f.attach_at(SimTime::ZERO, e1, alice, PortId(1));
        f.attach_at(SimTime::ZERO, e2, bob, PortId(1));
        f.run_until(SimTime::from_nanos(100_000_000));
        f.send_at(
            SimTime::from_nanos(200_000_000),
            e1,
            alice.mac,
            Eid::V4(bob.ipv4),
            64,
            1,
            false,
        );
        f.run_until(SimTime::from_nanos(300_000_000));
        assert_eq!(f.edge(e1).fib_len(), 1, "cache warmed");

        // bob roams e2 → e3. The routing server Map-Notifies e2 (Fig. 5).
        f.detach_at(SimTime::from_nanos(310_000_000), e2, bob.mac);
        f.attach_at(SimTime::from_nanos(320_000_000), e3, bob, PortId(9));
        f.run_until(SimTime::from_nanos(400_000_000));

        // alice sends with her stale cache entry (→ e2): e2 forwards to
        // e3 (Fig. 5 step 3 / Fig. 6 step 3) and SMRs e1 (Fig. 6 step 2).
        f.send_at(
            SimTime::from_nanos(410_000_000),
            e1,
            alice.mac,
            Eid::V4(bob.ipv4),
            64,
            2,
            false,
        );
        f.run_until(SimTime::from_nanos(600_000_000));
        assert_eq!(f.edge(e3).stats().delivered, 1, "packet followed the move");
        assert_eq!(
            f.edge(e2).stats().mobility_forwards,
            1,
            "old edge forwarded"
        );
        assert_eq!(f.edge(e2).stats().smrs_sent, 1, "old edge SMR'd the source");

        // After the SMR-triggered re-resolution, alice's edge sends
        // directly to e3 — no more forwarding through e2.
        f.send_at(
            SimTime::from_nanos(700_000_000),
            e1,
            alice.mac,
            Eid::V4(bob.ipv4),
            64,
            3,
            false,
        );
        f.run_until(SimTime::from_nanos(900_000_000));
        assert_eq!(f.edge(e3).stats().delivered, 2);
        assert_eq!(f.edge(e2).stats().mobility_forwards, 1, "no second detour");
    }

    #[test]
    fn arp_broadcast_converted_to_unicast() {
        let (mut f, e1, e2, _bh, _vn, alice, bob) = two_edge_fabric();
        f.attach_at(SimTime::ZERO, e1, alice, PortId(1));
        f.attach_at(SimTime::ZERO, e2, bob, PortId(1));
        f.run_until(SimTime::from_nanos(100_000_000));
        f.arp_at(SimTime::from_nanos(200_000_000), e1, alice.mac, bob.ipv4);
        f.run_until(SimTime::from_nanos(400_000_000));
        assert!(f.edge(e1).stats().arp_converted >= 1);
        assert_eq!(f.metrics().counter("fabric.arp_converted"), 1);
        // The unicast L2 packet reached bob's edge.
        assert!(f.edge(e2).stats().delivered >= 1);
    }
}
