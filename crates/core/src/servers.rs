//! Simulator nodes wrapping the control-plane servers.
//!
//! * [`RoutingServerNode`] — the routing server of Fig. 1: an
//!   `sda-ctrl` [`PartitionedMapServer`] (one shard by default — the
//!   paper's single routing server; `FabricConfig::ctrl_shards` scales
//!   it) plus the §3.5 IP→MAC table for ARP service, with a
//!   single-server control CPU (service times from `sda-lisp`, small
//!   multiplicative jitter for realistic percentile spread — Fig. 7's
//!   boxplots). Pub/sub publishes drain through the partitioned
//!   server's delta fan-out immediately after each handled message, so
//!   the wire timing matches the old inline-publish model.
//! * [`PolicyServerNode`] — the policy server: `sda-policy`'s
//!   [`PolicyServer`] answering auth and rule-refresh requests.
//!
//! Both translate between `(RLOC)`-addressed protocol outboxes and
//! simulator `NodeId`s via the shared [`Directory`].

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use rand::Rng;
use sda_ctrl::{Disposition, PartitionedMapServer};
use sda_lisp::MapServer;
use sda_policy::PolicyServer;
use sda_simnet::{Context, FaultEvent, Node, NodeId, SimDuration};
use sda_types::{MacAddr, Rloc, VnId};

use crate::msg::{ArpMsg, FabricMsg, PolicyMsg};

/// Immutable fabric-wide wiring and parameters, shared by every node.
#[derive(Debug)]
pub struct Directory {
    /// RLOC → simulator node.
    pub node_of_rloc: BTreeMap<Rloc, NodeId>,
    /// The routing server's node and locator.
    pub routing_server: NodeId,
    /// The routing server's RLOC (Map-Request targets).
    pub routing_server_rloc: Rloc,
    /// The policy server's node.
    pub policy_server: NodeId,
    /// The primary border router's locator (default-route target).
    pub border_rloc: Rloc,
    /// Fabric behavior knobs.
    pub params: crate::controller::FabricConfig,
}

impl Directory {
    /// The simulator node serving `rloc`.
    ///
    /// # Panics
    /// Panics on an unknown RLOC — scenario wiring bug, not a runtime
    /// condition.
    pub fn node_of(&self, rloc: Rloc) -> NodeId {
        *self
            .node_of_rloc
            .get(&rloc)
            .unwrap_or_else(|| panic!("no node for rloc {rloc}"))
    }
}

/// Multiplicative service-time jitter: 1.0 + Exp(1)·0.18, capped.
/// Produces the long-tailed-but-bounded spread of Fig. 7's boxplots.
pub(crate) fn service_jitter(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let exp = -u.ln();
    1.0 + (exp * 0.18).min(2.0)
}

/// The routing server simulator node.
pub struct RoutingServerNode {
    server: PartitionedMapServer,
    dir: Rc<Directory>,
    /// §3.5: overlay IP → MAC, for ARP broadcast-to-unicast conversion.
    arp_db: BTreeMap<(VnId, Ipv4Addr), MacAddr>,
    /// Crashed (fault injection). All state here is volatile: a restart
    /// comes up with an empty mapping database, empty subscriber list
    /// and empty ARP table — edges repopulate it through registration
    /// refreshes and borders resubscribe when they notice the publish
    /// sequence regressed.
    failed: bool,
}

impl RoutingServerNode {
    /// Wraps `server` with fabric wiring.
    pub fn new(server: PartitionedMapServer, dir: Rc<Directory>) -> Self {
        RoutingServerNode {
            server,
            dir,
            arp_db: BTreeMap::new(),
            failed: false,
        }
    }

    /// Read access for post-run assertions.
    pub fn server(&self) -> &PartitionedMapServer {
        &self.server
    }

    /// Registered IP→MAC pairs.
    pub fn arp_entries(&self) -> usize {
        self.arp_db.len()
    }

    /// Sends replies/notifies, then drains the pub/sub fan-out.
    fn transmit(&mut self, ctx: &mut Context<'_, FabricMsg>, out: sda_lisp::Outbox) {
        for (rloc, msg) in out.into_iter().chain(self.server.flush_publishes()) {
            ctx.send(self.dir.node_of(rloc), FabricMsg::Control(msg));
        }
    }
}

/// Timer token: periodic purge of expired registrations.
const TIMER_PURGE: u64 = 0;

/// CPU cost of shedding or dropping a message at the admission gate —
/// a header peek plus (for sheds) a fixed-size reply, far cheaper than
/// real service. This is what keeps the server responsive under storm.
const SHED_SERVICE: SimDuration = SimDuration::from_micros(2);

impl Node<FabricMsg> for RoutingServerNode {
    fn on_timer(&mut self, ctx: &mut Context<'_, FabricMsg>, token: u64) {
        if token == TIMER_PURGE {
            if !self.failed {
                self.server.expire(ctx.now());
                self.transmit(ctx, sda_lisp::Outbox::new());
            }
            if let Some(interval) = self.dir.params.purge_interval {
                ctx.set_timer(interval, TIMER_PURGE);
            }
        }
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, FabricMsg>, fault: FaultEvent) {
        match fault {
            FaultEvent::Crash => {
                self.failed = true;
            }
            FaultEvent::Restart => {
                self.failed = false;
                let rloc = self.server.rloc();
                let shards = self.server.shard_count();
                let admission = self.server.admission();
                self.server = PartitionedMapServer::new(rloc, shards);
                // Admission policy is configuration, not volatile state:
                // it survives the reboot (with fresh full buckets).
                self.server.set_admission(admission);
                self.arp_db.clear();
                ctx.metrics().incr("ctrl.server_restarts");
            }
            // Shard-scoped faults: the node stays up; the partitioned
            // server tracks which slice is dark.
            FaultEvent::ShardCrash(i) => {
                if i < self.server.shard_count() {
                    self.server.crash_shard(i);
                }
            }
            FaultEvent::ShardRestart(i) => {
                if i < self.server.shard_count() {
                    self.server.restart_shard(i);
                }
            }
            FaultEvent::ShardPartition(i) => {
                if i < self.server.shard_count() {
                    self.server.partition_shard(i);
                }
            }
            FaultEvent::ShardHeal(i) => {
                if i < self.server.shard_count() {
                    self.server.heal_shard(i);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FabricMsg>, _from: NodeId, msg: FabricMsg) {
        if self.failed {
            return;
        }
        match msg {
            FabricMsg::Control(m) => {
                let base = MapServer::service_time(&m);
                let (disposition, out) = self.server.handle_with_disposition(m, ctx.now());
                match disposition {
                    Disposition::Served => {
                        let jitter = service_jitter(ctx.rng());
                        ctx.busy(SimDuration::from_secs_f64(base.as_secs_f64() * jitter));
                    }
                    Disposition::Shed => {
                        ctx.busy(SHED_SERVICE);
                        ctx.metrics().incr("ctrl.shed_replies");
                    }
                    Disposition::ShardDown => {
                        ctx.busy(SHED_SERVICE);
                        ctx.metrics().incr("ctrl.shard_drops");
                    }
                }
                self.transmit(ctx, out);
            }
            FabricMsg::Arp(ArpMsg::Register { vn, ip, mac }) => {
                self.arp_db.insert((vn, ip), mac);
            }
            FabricMsg::Arp(ArpMsg::Query { vn, ip, reply_to }) => {
                ctx.busy(SimDuration::from_micros(100));
                let mac = self.arp_db.get(&(vn, ip)).copied();
                ctx.send(
                    self.dir.node_of(reply_to),
                    FabricMsg::Arp(ArpMsg::Answer { vn, ip, mac }),
                );
                ctx.metrics().incr("routing_server.arp_queries");
            }
            other => {
                debug_assert!(
                    false,
                    "routing server received unexpected message {other:?}"
                );
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Per-auth-round-trip policy-server processing time.
pub const AUTH_SERVICE: SimDuration = SimDuration::from_micros(200);

/// The policy server simulator node.
pub struct PolicyServerNode {
    server: PolicyServer,
    dir: Rc<Directory>,
}

impl PolicyServerNode {
    /// Wraps a configured policy server.
    pub fn new(server: PolicyServer, dir: Rc<Directory>) -> Self {
        PolicyServerNode { server, dir }
    }

    /// Read access for post-run assertions.
    pub fn server(&self) -> &PolicyServer {
        &self.server
    }

    /// Mutable access (runtime policy changes in scenarios).
    pub fn server_mut(&mut self) -> &mut PolicyServer {
        &mut self.server
    }
}

impl Node<FabricMsg> for PolicyServerNode {
    fn on_message(&mut self, ctx: &mut Context<'_, FabricMsg>, from: NodeId, msg: FabricMsg) {
        let FabricMsg::Policy(pm) = msg else {
            debug_assert!(false, "policy server received non-policy message");
            return;
        };
        match pm {
            PolicyMsg::AuthRequest { mac, secret, txn } => {
                let cred = sda_policy::Credential {
                    identity: mac,
                    secret,
                };
                match self.server.onboard(&cred) {
                    Some(grant) => {
                        // EAP methods cost extra round trips; charge them
                        // as additional serialized service time (with the
                        // same long-tail jitter as the routing server).
                        let jitter = service_jitter(ctx.rng());
                        let base = AUTH_SERVICE.saturating_mul(u64::from(grant.auth_round_trips));
                        ctx.busy(SimDuration::from_secs_f64(base.as_secs_f64() * jitter));
                        ctx.metrics().incr("policy.auth_accepts");
                        // §5.3: with egress enforcement the edge gets the
                        // rules *toward* the endpoint's group; with
                        // ingress enforcement (ablation) it needs every
                        // rule the group can *source* — the state blow-up
                        // the paper avoids.
                        let rules = match self.dir.params.enforcement {
                            crate::pipeline::EnforcementPoint::Egress => grant.rules,
                            crate::pipeline::EnforcementPoint::Ingress => {
                                sda_policy::sxp::ingress_subset(
                                    self.server.matrix(),
                                    &[(grant.profile.vn, grant.profile.group)],
                                )
                            }
                        };
                        ctx.send(
                            from,
                            FabricMsg::Policy(PolicyMsg::AuthAccept {
                                txn,
                                mac,
                                profile: grant.profile,
                                rules,
                            }),
                        );
                    }
                    None => {
                        ctx.busy(AUTH_SERVICE);
                        ctx.metrics().incr("policy.auth_rejects");
                        ctx.send(from, FabricMsg::Policy(PolicyMsg::AuthReject { txn, mac }));
                    }
                }
            }
            PolicyMsg::RuleRefreshRequest { local } => {
                ctx.busy(AUTH_SERVICE);
                let rules = self.server.rules_for_edge(&local);
                ctx.send(from, FabricMsg::Policy(PolicyMsg::RuleRefresh { rules }));
            }
            other => {
                debug_assert!(false, "policy server received reply-type message {other:?}");
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn jitter_is_bounded_and_above_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let j = service_jitter(&mut rng);
            assert!((1.0..=3.0).contains(&j), "jitter {j} out of range");
        }
    }

    #[test]
    fn jitter_has_spread() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..1000).map(|_| service_jitter(&mut rng)).collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.3, "jitter spread too tight: {min}..{max}");
    }
}
