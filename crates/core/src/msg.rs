//! The fabric's simulator message type and endpoint identity model.

use sda_policy::{EndpointProfile, RuleSubset};
use sda_types::{Eid, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::lisp;
use std::net::Ipv4Addr;

/// Everything an endpoint *is*, as the workload generators mint them:
/// its L2/L3 identities plus the credential it presents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EndpointIdentity {
    /// L2 identity (also the AAA identity).
    pub mac: MacAddr,
    /// Overlay IPv4 address.
    pub ipv4: Ipv4Addr,
    /// AAA shared secret.
    pub secret: u64,
}

impl EndpointIdentity {
    /// The EIDs this endpoint registers (IPv4 + MAC — controlled by
    /// [`crate::FabricConfig::register_mac`]; the paper also registers
    /// IPv6 per endpoint, a documented simplification here).
    pub fn eids(&self) -> [Eid; 2] {
        [Eid::V4(self.ipv4), Eid::Mac(self.mac)]
    }
}

/// The overlay payload the fabric forwards: the parsed form of the
/// inner packet of Fig. 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InnerPacket {
    /// Source endpoint EID.
    pub src: Eid,
    /// Destination endpoint EID.
    pub dst: Eid,
    /// Simulated payload size (bytes) for bandwidth accounting.
    pub payload_len: u16,
    /// Flow identifier (ECMP hashing, dedup in tests).
    pub flow: u64,
    /// When true, delivery is recorded in metrics (measurement hooks).
    pub track: bool,
}

/// A VXLAN-GPO-encapsulated packet in structured form (Fig. 2).
///
/// The byte-accurate equivalent lives in `sda-wire`; the
/// [`crate::pipeline`] differential tests prove the two agree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OverlayPacket {
    /// VN carried in the VNI field.
    pub vn: VnId,
    /// Source GroupId carried in the GPO group field.
    pub src_group: GroupId,
    /// Policy-applied bit (set by ingress enforcement).
    pub policy_applied: bool,
    /// Remaining fabric hops before the packet is dropped; breaks the
    /// transient border↔rebooted-edge loop of §5.2.
    pub hops_left: u8,
    /// The ingress edge's RLOC (the outer source IP of Fig. 2) —
    /// where data-triggered SMRs are sent (Fig. 6 step 2).
    pub origin: Rloc,
    /// The encapsulated endpoint packet.
    pub inner: InnerPacket,
}

/// Default hop budget for fabric traversal (edge→border→edge plus
/// forwarding detours during mobility).
pub const DEFAULT_HOPS: u8 = 8;

/// Host-side events the workload drivers inject into edge routers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostEvent {
    /// An endpoint plugged into (or roamed to) a port of this edge.
    Attach {
        /// Who.
        endpoint: EndpointIdentity,
        /// Which switch port / AP uplink.
        port: PortId,
        /// The VN hint for DHCP-less scenarios (must match policy).
        vn: VnId,
    },
    /// The endpoint left this edge (roam-away or power-off).
    Detach {
        /// L2 identity of the leaving endpoint.
        mac: MacAddr,
    },
    /// The endpoint emits a packet.
    Send {
        /// Source endpoint's MAC (must be attached here).
        src_mac: MacAddr,
        /// Destination EID (IPv4 for L3 flows, MAC for L2 flows).
        dst: Eid,
        /// Payload size.
        payload_len: u16,
        /// Flow id.
        flow: u64,
        /// Measurement hook flag.
        track: bool,
    },
    /// The endpoint broadcasts an ARP who-has (L2 service path, §3.5).
    ArpRequest {
        /// Requesting endpoint's MAC.
        src_mac: MacAddr,
        /// IPv4 being resolved.
        target_ip: Ipv4Addr,
    },
}

/// Policy-plane exchanges (RADIUS/SXP stand-ins).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyMsg {
    /// Edge → policy server: authenticate this endpoint (Fig. 3 step 1).
    AuthRequest {
        /// Presented identity.
        mac: MacAddr,
        /// Presented secret.
        secret: u64,
        /// Correlates the response to the pending attach.
        txn: u64,
    },
    /// Policy server → edge: accept + binding + egress rules (step 2).
    AuthAccept {
        /// Transaction echo.
        txn: u64,
        /// Authenticated endpoint.
        mac: MacAddr,
        /// `(VN, GroupId)` binding.
        profile: EndpointProfile,
        /// Egress rule subset for the endpoint's group.
        rules: RuleSubset,
    },
    /// Policy server → edge: rejected.
    AuthReject {
        /// Transaction echo.
        txn: u64,
        /// The rejected identity.
        mac: MacAddr,
    },
    /// Edge → policy server: a policy change told us to re-pull rules
    /// for our local population.
    RuleRefreshRequest {
        /// The edge's locally attached `(vn, group)` pairs.
        local: Vec<(VnId, GroupId)>,
    },
    /// Policy server → edge: refreshed subset.
    RuleRefresh {
        /// The new rules.
        rules: RuleSubset,
    },
}

/// ARP service exchanges with the routing server (§3.5 elements ii–iii:
/// the routing server indexes endpoints by MAC and stores IP→MAC pairs).
/// In the real system these are LISP lookups on an IP-keyed mapping
/// whose payload is the MAC; modeled as a dedicated message pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpMsg {
    /// Edge → routing server: record `ip → mac` during onboarding
    /// (§3.5 element iii: "storing overlay IP to MAC pairs in the
    /// routing server").
    Register {
        /// VN scope.
        vn: VnId,
        /// The endpoint's overlay IPv4.
        ip: Ipv4Addr,
        /// The endpoint's MAC.
        mac: MacAddr,
    },
    /// L2 gateway → routing server: who owns `ip` in `vn`?
    Query {
        /// VN scope.
        vn: VnId,
        /// The IP from the intercepted ARP request.
        ip: Ipv4Addr,
        /// Where to send the answer.
        reply_to: Rloc,
    },
    /// Routing server → L2 gateway: `ip` belongs to `mac`.
    Answer {
        /// VN scope.
        vn: VnId,
        /// Queried IP.
        ip: Ipv4Addr,
        /// The owning MAC, if registered.
        mac: Option<MacAddr>,
    },
}

/// The one message enum the whole fabric simulation speaks.
#[derive(Clone, PartialEq, Debug)]
pub enum FabricMsg {
    /// Encapsulated overlay traffic between fabric routers: the real
    /// underlay bytes (outer IPv4 / UDP / VXLAN-GPO / inner packet),
    /// produced and consumed by each node's `sda_dataplane::Switch`.
    /// The structured [`OverlayPacket`] form survives only in the
    /// differential oracle ([`crate::pipeline`]).
    Data(Vec<u8>),
    /// LISP control plane (requests, replies, registers, notifies,
    /// SMRs, publishes, subscribes).
    Control(lisp::Message),
    /// Policy plane (auth + rule distribution).
    Policy(PolicyMsg),
    /// ARP resolution service.
    Arp(ArpMsg),
    /// Link-state underlay protocol, tunneled between adjacent routers.
    Underlay(sda_underlay::Message),
    /// Workload-injected endpoint events.
    Host(HostEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_eids_cover_l2_and_l3() {
        let ep = EndpointIdentity {
            mac: MacAddr::from_seed(1),
            ipv4: Ipv4Addr::new(10, 1, 0, 1),
            secret: 9,
        };
        let eids = ep.eids();
        assert_eq!(eids[0], Eid::V4(ep.ipv4));
        assert_eq!(eids[1], Eid::Mac(ep.mac));
    }

    #[test]
    fn overlay_packet_is_small_and_copyable() {
        // The sim moves millions of these; keep them Copy and compact.
        assert!(core::mem::size_of::<OverlayPacket>() <= 96);
        let p = OverlayPacket {
            vn: VnId::DEFAULT,
            src_group: GroupId(1),
            policy_applied: false,
            hops_left: DEFAULT_HOPS,
            origin: Rloc::for_router_index(1),
            inner: InnerPacket {
                src: Eid::V4(Ipv4Addr::new(10, 0, 0, 1)),
                dst: Eid::V4(Ipv4Addr::new(10, 0, 0, 2)),
                payload_len: 1500,
                flow: 1,
                track: false,
            },
        };
        let q = p;
        assert_eq!(p, q);
    }
}
