//! Group-based ACL — re-exported from [`sda_policy::enforce`].
//!
//! The per-packet enforcement table moved down into `sda-policy` so the
//! batched forwarding engine in `sda-dataplane` can enforce group policy
//! without depending on the router nodes in this crate. This module keeps
//! the historical `sda_core::acl::GroupAcl` path alive.

pub use sda_policy::enforce::GroupAcl;
