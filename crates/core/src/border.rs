//! The border router (§3.3 "Border Routers").
//!
//! Same functions as an edge, with two differences:
//!
//! 1. Its overlay table is **synchronized** with the routing server via
//!    pub/sub instead of populated reactively — so it can absorb the
//!    default-routed traffic edges send while their resolutions are in
//!    flight.
//! 2. It holds routes to external networks (Internet, datacenter).
//!
//! It is also provisioned with a beefier control CPU in the scenarios
//! ("the border router is usually more powerful than edge routers").

use std::collections::BTreeMap;
use std::rc::Rc;

use sda_simnet::{Context, Node, NodeId, SimTime};
use sda_types::{Eid, EidPrefix, Ipv4Prefix, Rloc, VnId};
use sda_wire::lisp::Message as Lisp;

use crate::acl::GroupAcl;
use crate::msg::{FabricMsg, OverlayPacket, PolicyMsg};
use crate::pipeline::{self, EgressAction};
use crate::servers::Directory;
use crate::vrf::VrfTable;

/// Timer token for the subscription kick.
const TIMER_SUBSCRIBE: u64 = 0;
/// Timer token for FIB sampling.
const TIMER_FIB_SAMPLE: u64 = 2;

/// Border counters for scenario assertions.
#[derive(Clone, Copy, Default, Debug)]
pub struct BorderStats {
    /// Packets relayed into the fabric from the synced table.
    pub relayed: u64,
    /// Packets delivered to external networks.
    pub external: u64,
    /// Packets dropped: destination unknown everywhere.
    pub unroutable: u64,
    /// Packets delivered to endpoints attached directly to the border.
    pub delivered: u64,
    /// Policy drops at the border's egress ACL.
    pub policy_drops: u64,
    /// Publishes applied from the routing server.
    pub publishes_applied: u64,
}

/// The border router node.
pub struct BorderRouter {
    name: String,
    rloc: Rloc,
    dir: Rc<Directory>,
    /// Pub/sub-synchronized full overlay table: (vn, host EID) → RLOC.
    synced: BTreeMap<(VnId, Eid), Rloc>,
    /// Directly attached endpoints (warehouse sinks, servers).
    vrf: VrfTable,
    acl: GroupAcl,
    /// External prefixes (Internet/DC) reachable through this border.
    external: Vec<Ipv4Prefix>,
    stats: BorderStats,
}

impl BorderRouter {
    /// Creates a border router serving `rloc`.
    pub fn new(name: impl Into<String>, rloc: Rloc, dir: Rc<Directory>) -> Self {
        BorderRouter {
            name: name.into(),
            rloc,
            dir,
            synced: BTreeMap::new(),
            vrf: VrfTable::new(),
            acl: GroupAcl::new(),
            external: Vec::new(),
            stats: BorderStats::default(),
        }
    }

    /// Adds an external route (e.g. `0.0.0.0/0` for the Internet).
    pub fn add_external(&mut self, prefix: Ipv4Prefix) {
        self.external.push(prefix);
    }

    /// This border's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Counters.
    pub fn stats(&self) -> BorderStats {
        self.stats
    }

    /// Synced overlay FIB size (all families).
    pub fn fib_len(&self) -> usize {
        self.synced.len()
    }

    /// IPv4 mappings only — the Fig. 9 border series.
    pub fn fib_len_v4(&self) -> usize {
        self.synced
            .keys()
            .filter(|(_, eid)| matches!(eid, Eid::V4(_)))
            .count()
    }

    /// Mutable VRF access for scenario setup (border-attached sinks are
    /// onboarded by the controller directly — they are infrastructure,
    /// not roaming endpoints).
    pub fn vrf_mut(&mut self) -> &mut VrfTable {
        &mut self.vrf
    }

    /// Mutable ACL access for scenario setup.
    pub fn acl_mut(&mut self) -> &mut GroupAcl {
        &mut self.acl
    }

    fn external_match(&self, eid: Eid) -> bool {
        match eid {
            Eid::V4(a) => self.external.iter().any(|p| p.contains(a)),
            _ => false,
        }
    }

    fn handle_data(&mut self, ctx: &mut Context<'_, FabricMsg>, pkt: OverlayPacket) {
        // Directly attached endpoints first (the warehouse traffic sink).
        match pipeline::egress(
            &self.vrf,
            &mut self.acl,
            &pkt,
            self.dir.params.enforcement_for_egress(),
            self.dir.params.default_action,
        ) {
            EgressAction::Deliver { .. } => {
                self.stats.delivered += 1;
                ctx.metrics().incr("fabric.delivered");
                if pkt.inner.track {
                    let name = format!("deliver.{}", pkt.inner.dst);
                    let now = ctx.now();
                    ctx.metrics().record(&name, now, pkt.inner.flow as f64);
                }
                return;
            }
            EgressAction::DropPolicy => {
                self.stats.policy_drops += 1;
                ctx.metrics().incr(&format!("acl.drops.{}", self.name));
                return;
            }
            EgressAction::NotLocal => {}
        }

        if pkt.hops_left == 0 {
            ctx.metrics().incr("fabric.hop_exhausted");
            return;
        }

        // Synced table: relay into the fabric.
        if let Some(rloc) = self.synced.get(&(pkt.vn, pkt.inner.dst)).copied() {
            if rloc != self.rloc {
                self.stats.relayed += 1;
                let mut fwd = pkt;
                fwd.hops_left -= 1;
                let node = self.dir.node_of(rloc);
                ctx.send(node, FabricMsg::Data(fwd));
                return;
            }
        }

        // External routes.
        if self.external_match(pkt.inner.dst) {
            self.stats.external += 1;
            ctx.metrics().incr("fabric.external_delivered");
            return;
        }

        self.stats.unroutable += 1;
        ctx.metrics().incr("fabric.unroutable");
    }

    fn handle_control(&mut self, ctx: &mut Context<'_, FabricMsg>, msg: Lisp, _now: SimTime) {
        match msg {
            Lisp::Publish {
                vn,
                prefix,
                rloc,
                withdraw,
                ..
            } => {
                let Some(eid) = host_eid(&prefix) else {
                    return;
                };
                self.stats.publishes_applied += 1;
                if withdraw {
                    self.synced.remove(&(vn, eid));
                } else {
                    self.synced.insert((vn, eid), rloc);
                }
                ctx.metrics().incr("border.publishes");
            }
            Lisp::MapNotify { .. } => {}
            other => {
                debug_assert!(false, "border received unexpected control {other:?}");
            }
        }
    }
}

/// Host EID of a full-length prefix.
fn host_eid(prefix: &EidPrefix) -> Option<Eid> {
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

impl Node<FabricMsg> for BorderRouter {
    fn on_message(&mut self, ctx: &mut Context<'_, FabricMsg>, _from: NodeId, msg: FabricMsg) {
        match msg {
            FabricMsg::Data(pkt) => {
                ctx.busy(self.dir.params.border_data_service);
                self.handle_data(ctx, pkt);
            }
            FabricMsg::Control(m) => {
                let now = ctx.now();
                self.handle_control(ctx, m, now);
            }
            FabricMsg::Policy(PolicyMsg::RuleRefresh { rules }) => {
                self.acl.replace(&rules);
            }
            FabricMsg::Host(ev) => {
                // Border-attached endpoints (traffic sinks) do not roam;
                // sends are processed like an edge's local sends but
                // against the synced table.
                if let crate::msg::HostEvent::Send {
                    src_mac,
                    dst,
                    payload_len,
                    flow,
                    track,
                } = ev
                {
                    let Some((vn, src_ep)) = self.vrf.classify(src_mac) else {
                        return;
                    };
                    let packet = OverlayPacket {
                        vn,
                        src_group: src_ep.group,
                        policy_applied: false,
                        hops_left: self.dir.params.hop_budget,
                        origin: self.rloc,
                        inner: crate::msg::InnerPacket {
                            src: Eid::V4(src_ep.ipv4),
                            dst,
                            payload_len,
                            flow,
                            track,
                        },
                    };
                    self.handle_data(ctx, packet);
                }
            }
            // Borders do not run the link-state protocol in this model;
            // hellos from edges are absorbed (edges detect border
            // liveness through the fabric's always-on default route).
            FabricMsg::Underlay(_) => {}
            other => {
                debug_assert!(false, "border received unexpected {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FabricMsg>, token: u64) {
        match token {
            TIMER_SUBSCRIBE => {
                // §3.3: subscribe to every VN's mapping stream.
                for vn in &self.dir.params.vns {
                    ctx.send(
                        self.dir.routing_server,
                        FabricMsg::Control(Lisp::Subscribe {
                            nonce: 0,
                            vn: *vn,
                            subscriber: self.rloc,
                        }),
                    );
                }
                if let Some(interval) = self.dir.params.fib_sample_interval {
                    ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                }
            }
            TIMER_FIB_SAMPLE => {
                let name = format!("fib.{}", self.name);
                let now = ctx.now();
                ctx.metrics().record(&name, now, self.fib_len_v4() as f64);
                if let Some(interval) = self.dir.params.fib_sample_interval {
                    ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
