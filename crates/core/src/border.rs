//! The border router (§3.3 "Border Routers").
//!
//! Same functions as an edge — and, since the data-plane fold, the same
//! engine: data traffic runs through this node's own
//! [`sda_dataplane::Switch`] on real bytes. Two differences:
//!
//! 1. Its overlay table is **synchronized** with the routing server via
//!    pub/sub instead of populated reactively — every `Publish` installs
//!    into (or withdraws from) the switch's map-cache with an
//!    effectively infinite TTL — so it can absorb the default-routed
//!    traffic edges send while their resolutions are in flight.
//! 2. It holds routes to external networks (Internet, datacenter) in
//!    the switch's external-prefix table, and its engine config has no
//!    further default route (`border: None`): the border *is* the last
//!    resort, so a miss there is unroutable.
//!
//! The engine's punts are drained and dropped here: arriving traffic
//! was *default-routed*, which does not imply a stale sender (no Fig. 6
//! SMR), and the synced table makes reactive Map-Requests pointless.
//!
//! It is also provisioned with a beefier control CPU in the scenarios
//! ("the border router is usually more powerful than edge routers").

use std::collections::BTreeMap;
use std::rc::Rc;

use sda_dataplane::{DropReason, PacketBuf, Punt, Switch, SwitchConfig, Verdict};
use sda_simnet::{Context, FaultEvent, Node, NodeId, SimDuration, SimTime};
use sda_types::{Eid, EidKind, EidPrefix, Ipv4Prefix, Rloc, VnId};
use sda_wire::lisp::{BusyClass, Message as Lisp};

use crate::msg::{FabricMsg, PolicyMsg};
use crate::pipeline;
use crate::servers::Directory;
use crate::vrf::LocalEndpoint;

/// Timer token for the subscription kick (and periodic resubscribe).
const TIMER_SUBSCRIBE: u64 = 0;
/// Timer token for FIB sampling.
const TIMER_FIB_SAMPLE: u64 = 2;
/// Retransmit sweep for unacknowledged Subscribes. Lazily armed.
const TIMER_RETRY: u64 = 3;

/// Pub/sub-synced mappings never idle out on the border; the routing
/// server withdraws them explicitly. Far beyond any scenario horizon.
const SYNC_TTL: SimDuration = SimDuration::from_secs(100 * 365 * 24 * 3600);

/// Border counters for scenario assertions.
#[derive(Clone, Copy, Default, Debug)]
pub struct BorderStats {
    /// Packets relayed into the fabric from the synced table.
    pub relayed: u64,
    /// Packets delivered to external networks.
    pub external: u64,
    /// Packets dropped: destination unknown everywhere.
    pub unroutable: u64,
    /// Packets delivered to endpoints attached directly to the border.
    pub delivered: u64,
    /// Policy drops at the border's egress ACL.
    pub policy_drops: u64,
    /// Publishes applied from the routing server.
    pub publishes_applied: u64,
    /// Jumps detected in the per-VN publish sequence (a jump means
    /// deltas were lost upstream; the routing server resyncs by
    /// snapshot, so the table still converges).
    pub publish_gaps: u64,
    /// Resync Subscribes this border sent after detecting a gap or a
    /// sequence regression (publisher restart).
    pub resyncs_requested: u64,
    /// Acked (re)subscriptions after the initial one: each reset the
    /// VN's synced slice and replayed the server's snapshot.
    pub resyncs_completed: u64,
    /// Subscribes shed by the routing server's admission gate; the
    /// retry honored the server's retry-after hint.
    pub server_busy_backoffs: u64,
}

/// A Subscribe awaiting its ack, retransmitted with capped backoff —
/// without bound: a border without a synced table is useless.
struct PendingSubscribe {
    nonce: u64,
    attempts: u32,
    next_retry: SimTime,
    /// Delay used for the last (re)send — the decorrelated-jitter
    /// recurrence feeds on it.
    prev_delay: SimDuration,
}

/// The border router node.
pub struct BorderRouter {
    name: String,
    rloc: Rloc,
    dir: Rc<Directory>,
    /// The data plane: synced overlay table (map-cache), directly
    /// attached endpoints (VRF), ACL and external prefixes.
    switch: Switch,
    stats: BorderStats,
    /// Highest publish sequence number seen per VN (gap detection). A
    /// VN present here has completed at least one acked subscription.
    last_pub_seq: BTreeMap<VnId, u64>,
    /// Subscribes in flight, per VN, until the server's SubscribeAck.
    pending_subscribes: BTreeMap<VnId, PendingSubscribe>,
    next_nonce: u64,
    /// Whether the subscribe retransmit sweep is armed.
    retry_armed: bool,
    /// Crashed (fault injection): volatile synced state is rebuilt on
    /// restart by resubscribing to every VN.
    failed: bool,
    /// Private xorshift64* stream for retransmit jitter, seeded from
    /// this border's RLOC — per-node deterministic and independent of
    /// the shared scenario RNG.
    jitter_state: u64,
    buf: PacketBuf,
    frame_scratch: Vec<u8>,
    punt_scratch: Vec<Punt>,
}

impl BorderRouter {
    /// Creates a border router serving `rloc`.
    pub fn new(name: impl Into<String>, rloc: Rloc, dir: Rc<Directory>) -> Self {
        let mut cfg = SwitchConfig::new(rloc);
        // The border is the default route's end of the line.
        cfg.border = None;
        cfg.default_action = dir.params.default_action;
        cfg.enforcement = dir.params.enforcement;
        cfg.hop_budget = dir.params.hop_budget;
        let mut switch = Switch::new(cfg);
        crate::edge::install_dst_hints(&mut switch, &dir);
        BorderRouter {
            name: name.into(),
            rloc,
            dir,
            switch,
            stats: BorderStats::default(),
            last_pub_seq: BTreeMap::new(),
            pending_subscribes: BTreeMap::new(),
            next_nonce: 1,
            retry_armed: false,
            failed: false,
            jitter_state: crate::edge::jitter_seed(rloc),
            buf: PacketBuf::new(),
            frame_scratch: Vec::new(),
            punt_scratch: Vec::new(),
        }
    }

    /// Adds an external route (e.g. `0.0.0.0/0` for the Internet).
    pub fn add_external(&mut self, prefix: Ipv4Prefix) {
        self.switch.add_external(prefix);
    }

    /// This border's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Counters.
    pub fn stats(&self) -> BorderStats {
        self.stats
    }

    /// This node's data plane (read access for harnesses and the
    /// differential oracle).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Synced overlay FIB size (all families).
    pub fn fib_len(&self) -> usize {
        self.switch.fib_len()
    }

    /// IPv4 mappings only — the Fig. 9 border series.
    pub fn fib_len_v4(&self) -> usize {
        self.switch.map_cache().len_of(EidKind::V4)
    }

    /// Attaches an infrastructure endpoint directly to this border
    /// (warehouse sinks, servers — onboarded by the controller, they do
    /// not roam or authenticate dynamically).
    pub fn attach_sink(&mut self, vn: sda_types::VnId, ep: LocalEndpoint) {
        self.switch.attach(vn, ep);
    }

    /// Installs (merges) group rules for scenario setup.
    pub fn install_rules(&mut self, subset: &sda_policy::RuleSubset) {
        self.switch.install_rules(subset);
    }

    /// Subscribes in flight (convergence checks: must be 0 once the
    /// fabric quiesces).
    pub fn pending_subscribe_len(&self) -> usize {
        self.pending_subscribes.len()
    }

    /// Sends a Subscribe for `vn` and tracks it until acked. The server
    /// answers with a SubscribeAck followed by a full snapshot, so an
    /// acked (re)subscription always resets the VN's synced slice.
    fn subscribe_vn(&mut self, ctx: &mut Context<'_, FabricMsg>, vn: VnId) {
        if self.pending_subscribes.contains_key(&vn) {
            return; // one in flight per VN is enough
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let prev_delay = self.initial_retry_delay();
        let next_retry = ctx.now() + prev_delay;
        self.pending_subscribes.insert(
            vn,
            PendingSubscribe {
                nonce,
                attempts: 1,
                next_retry,
                prev_delay,
            },
        );
        ctx.send(
            self.dir.routing_server,
            FabricMsg::Control(Lisp::Subscribe {
                nonce,
                vn,
                subscriber: self.rloc,
            }),
        );
        self.arm_retry(ctx);
    }

    /// A gap or regression was detected on `vn`'s publish stream: ask
    /// for a fresh snapshot by resubscribing (unless one is already in
    /// flight).
    fn request_resync(&mut self, ctx: &mut Context<'_, FabricMsg>, vn: VnId) {
        if self.pending_subscribes.contains_key(&vn) {
            return;
        }
        self.stats.resyncs_requested += 1;
        ctx.metrics().incr("border.resyncs_requested");
        self.subscribe_vn(ctx, vn);
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        if !self.retry_armed {
            self.retry_armed = true;
            // Jittered sweep phase — same rationale as the edge's: a
            // fixed period re-batches retransmits onto grid instants.
            let mut d = self.dir.params.rtx_initial;
            if self.dir.params.rtx_jitter {
                let span = d.as_nanos() / 2;
                d = SimDuration::from_nanos(d.as_nanos() + self.jitter_draw() % (span + 1));
            }
            ctx.set_timer(d, TIMER_RETRY);
        }
    }

    /// Exponential backoff after the `attempts`-th send, capped.
    fn backoff(&self, attempts: u32) -> SimDuration {
        let p = &self.dir.params;
        let mut d = p.rtx_initial;
        for _ in 1..attempts {
            d = d.saturating_mul(2);
            if d >= p.rtx_max_backoff {
                return p.rtx_max_backoff;
            }
        }
        d.min(p.rtx_max_backoff)
    }

    /// Next value of the private jitter stream (xorshift64*).
    fn jitter_draw(&mut self) -> u64 {
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Decorrelated jitter (same recurrence as the edge's):
    /// uniform in `[rtx_initial, min(3·prev, rtx_max_backoff)]`.
    fn jittered_backoff(&mut self, prev: SimDuration) -> SimDuration {
        let p = &self.dir.params;
        let base = p.rtx_initial.as_nanos();
        let cap = p.rtx_max_backoff.as_nanos();
        let hi = prev.as_nanos().saturating_mul(3).clamp(base, cap);
        let span = hi - base;
        let off = if span == 0 {
            0
        } else {
            self.jitter_draw() % (span + 1)
        };
        SimDuration::from_nanos(base + off)
    }

    /// Retry delay after the `attempts`-th send: decorrelated jitter
    /// when `rtx_jitter` is on, deterministic exponential otherwise.
    fn retry_delay(&mut self, attempts: u32, prev: SimDuration) -> SimDuration {
        if self.dir.params.rtx_jitter {
            self.jittered_backoff(prev)
        } else {
            self.backoff(attempts)
        }
    }

    /// Delay before the first retransmit of a fresh subscribe.
    fn initial_retry_delay(&mut self) -> SimDuration {
        let initial = self.dir.params.rtx_initial;
        if self.dir.params.rtx_jitter {
            self.jittered_backoff(initial)
        } else {
            initial
        }
    }

    /// Retransmit sweep: resend due Subscribes (same nonce — the ack
    /// matches by VN anyway) and re-arm while any are pending.
    fn run_retries(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        let now = ctx.now();
        let due: Vec<VnId> = self
            .pending_subscribes
            .iter()
            .filter(|(_, st)| st.next_retry <= now)
            .map(|(vn, _)| *vn)
            .collect();
        for vn in due {
            let (nonce, attempts, prev) = {
                let st = &self.pending_subscribes[&vn];
                (st.nonce, st.attempts, st.prev_delay)
            };
            let delay = self.retry_delay(attempts + 1, prev);
            if let Some(st) = self.pending_subscribes.get_mut(&vn) {
                st.attempts = attempts + 1;
                st.next_retry = now + delay;
                st.prev_delay = delay;
            }
            ctx.metrics().incr("border.subscribe_retries");
            ctx.send(
                self.dir.routing_server,
                FabricMsg::Control(Lisp::Subscribe {
                    nonce,
                    vn,
                    subscriber: self.rloc,
                }),
            );
        }
        if !self.pending_subscribes.is_empty() {
            self.arm_retry(ctx);
        }
    }

    /// Runs one packet (already loaded into `self.buf`) through the
    /// engine and folds the verdict into the border's books. `ingress`
    /// selects the pipeline: host frames from directly attached sinks
    /// take ingress, fabric bytes take egress.
    fn process_loaded(&mut self, ctx: &mut Context<'_, FabricMsg>, ingress: bool) {
        let bufs = std::slice::from_mut(&mut self.buf);
        let verdict = if ingress {
            self.switch.process_ingress(bufs, ctx.now())[0]
        } else {
            self.switch.process_egress(bufs, ctx.now())[0]
        };
        match verdict {
            Verdict::Deliver { .. } => {
                self.stats.delivered += 1;
                ctx.metrics().incr("fabric.delivered");
                if let Some(d) = pipeline::parse_delivered_frame(self.buf.bytes()) {
                    if d.track {
                        let name = format!("deliver.{}", d.dst);
                        let now = ctx.now();
                        ctx.metrics().record(&name, now, d.flow as f64);
                    }
                }
            }
            Verdict::Forward { to } => {
                // Every forward out of a border is a relay off the
                // synced table (it has no further default route).
                self.stats.relayed += 1;
                let node = self.dir.node_of(to);
                ctx.send(node, FabricMsg::Data(self.buf.bytes().to_vec()));
            }
            Verdict::DeliverExternal => {
                self.stats.external += 1;
                ctx.metrics().incr("fabric.external_delivered");
            }
            Verdict::Drop(DropReason::Policy) => {
                self.stats.policy_drops += 1;
                ctx.metrics().incr(&format!("acl.drops.{}", self.name));
            }
            Verdict::Drop(DropReason::TtlExpired) => {
                ctx.metrics().incr("fabric.hop_exhausted");
            }
            Verdict::Drop(DropReason::NoRoute) => {
                self.stats.unroutable += 1;
                ctx.metrics().incr("fabric.unroutable");
            }
            Verdict::Drop(_) => {
                ctx.metrics().incr("fabric.unroutable");
                self.stats.unroutable += 1;
            }
        }
        // Default-routed traffic does not imply a stale sender and the
        // synced table needs no reactive resolution: punts are drained
        // (cycling the scratch capacity) and intentionally dropped.
        self.switch.drain_punts_into(&mut self.punt_scratch);
        self.punt_scratch.clear();
    }

    fn handle_data(&mut self, ctx: &mut Context<'_, FabricMsg>, bytes: &[u8]) {
        if !self.buf.load(bytes) {
            debug_assert!(false, "fabric data exceeds MAX_FRAME");
            return;
        }
        self.process_loaded(ctx, false);
    }

    fn handle_control(&mut self, ctx: &mut Context<'_, FabricMsg>, msg: Lisp, now: SimTime) {
        match msg {
            Lisp::Publish {
                nonce,
                vn,
                prefix,
                rloc,
                withdraw,
            } => {
                let Some(eid) = host_eid(&prefix) else {
                    return;
                };
                // Deltas carry the VN stream's next sequence number;
                // snapshot entries all repeat the stream watermark. A
                // jump past last+1 on a live stream means lost deltas;
                // a *regression* means the publisher restarted with a
                // fresh sequence space. Either way the synced slice can
                // no longer be trusted — request a snapshot resync.
                let last = self.last_pub_seq.get(&vn).copied().unwrap_or(0);
                let mut desynced = false;
                if last != 0 && nonce > last + 1 {
                    self.stats.publish_gaps += 1;
                    ctx.metrics().incr("border.publish_gaps");
                    desynced = true;
                } else if nonce < last {
                    ctx.metrics().incr("border.publish_regressions");
                    desynced = true;
                }
                self.last_pub_seq.insert(vn, last.max(nonce));
                self.stats.publishes_applied += 1;
                if withdraw {
                    self.switch.apply_negative(vn, EidPrefix::host(eid));
                } else {
                    self.switch
                        .install_mapping(vn, EidPrefix::host(eid), rloc, SYNC_TTL, now);
                }
                ctx.metrics().incr("border.publishes");
                if desynced {
                    self.request_resync(ctx, vn);
                }
            }
            Lisp::SubscribeAck { vn, .. } => {
                if self.pending_subscribes.remove(&vn).is_some() {
                    // The server reset our subscription: drop the VN's
                    // synced slice and restart the sequence space — the
                    // snapshot that follows the ack rebuilds it.
                    self.switch.purge_vn(vn);
                    let first = !self.last_pub_seq.contains_key(&vn);
                    self.last_pub_seq.insert(vn, 0);
                    if !first {
                        self.stats.resyncs_completed += 1;
                        ctx.metrics().incr("border.resyncs_completed");
                    }
                }
            }
            Lisp::MapNotify { .. } => {}
            Lisp::ServerBusy {
                vn,
                class: BusyClass::Subscribe,
                retry_after_ms,
                ..
            } => {
                // Our Subscribe was shed at the admission gate: push the
                // retransmit out to the server's retry-after hint so the
                // resubscribe wave decays instead of hammering. The hint
                // is a floor; jitter on top decorrelates shed herds.
                let mut hold = SimDuration::from_millis(u64::from(retry_after_ms));
                if self.dir.params.rtx_jitter {
                    let extra = self.jitter_draw() % hold.as_nanos().max(1);
                    hold = SimDuration::from_nanos(hold.as_nanos() + extra);
                }
                if let Some(st) = self.pending_subscribes.get_mut(&vn) {
                    st.next_retry = now + hold;
                    st.prev_delay = hold;
                    self.stats.server_busy_backoffs += 1;
                    ctx.metrics().incr("fabric.server_busy_backoffs");
                }
                self.arm_retry(ctx);
            }
            Lisp::ServerBusy { .. } => {}
            other => {
                debug_assert!(false, "border received unexpected control {other:?}");
            }
        }
    }
}

/// Host EID of a full-length prefix.
fn host_eid(prefix: &EidPrefix) -> Option<Eid> {
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

impl Node<FabricMsg> for BorderRouter {
    fn on_message(&mut self, ctx: &mut Context<'_, FabricMsg>, _from: NodeId, msg: FabricMsg) {
        match msg {
            FabricMsg::Data(bytes) => {
                ctx.busy(self.dir.params.border_data_service);
                self.handle_data(ctx, &bytes);
            }
            FabricMsg::Control(m) => {
                let now = ctx.now();
                self.handle_control(ctx, m, now);
            }
            FabricMsg::Policy(PolicyMsg::RuleRefresh { rules }) => {
                self.switch.replace_rules(&rules);
            }
            FabricMsg::Host(ev) => {
                // Border-attached endpoints (traffic sinks) do not roam;
                // their sends run the engine's ingress pipeline against
                // the synced table.
                if let crate::msg::HostEvent::Send {
                    src_mac,
                    dst,
                    payload_len,
                    flow,
                    track,
                } = ev
                {
                    let Some(src_ipv4) = self
                        .switch
                        .tables()
                        .vrf()
                        .classify(src_mac)
                        .map(|(_, ep)| ep.ipv4)
                    else {
                        return;
                    };
                    if !pipeline::compose_host_frame(
                        &mut self.frame_scratch,
                        src_mac,
                        src_ipv4,
                        dst,
                        payload_len,
                        flow,
                        track,
                    ) {
                        return;
                    }
                    assert!(self.buf.load(&self.frame_scratch));
                    self.process_loaded(ctx, true);
                }
            }
            // Borders do not run the link-state protocol in this model;
            // hellos from edges are absorbed (edges detect border
            // liveness through the fabric's always-on default route).
            FabricMsg::Underlay(_) => {}
            other => {
                debug_assert!(false, "border received unexpected {other:?}");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FabricMsg>, token: u64) {
        if self.failed {
            // Keep periodic timers armed so a restarted border resumes;
            // retransmit state is volatile.
            match token {
                TIMER_SUBSCRIBE => {
                    if let Some(interval) = self.dir.params.subscribe_refresh_interval {
                        ctx.set_timer(interval, TIMER_SUBSCRIBE);
                    }
                }
                TIMER_FIB_SAMPLE => {
                    if let Some(interval) = self.dir.params.fib_sample_interval {
                        ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                    }
                }
                TIMER_RETRY => self.retry_armed = false,
                _ => {}
            }
            return;
        }
        match token {
            TIMER_SUBSCRIBE => {
                // §3.3: subscribe to every VN's mapping stream. The
                // first firing is the t=0 kick; later firings are the
                // periodic resubscribe (a full resync per VN), which
                // bounds divergence after arbitrary loss.
                let first = self.last_pub_seq.is_empty() && self.pending_subscribes.is_empty();
                let vns = self.dir.params.vns.clone();
                for vn in vns {
                    self.subscribe_vn(ctx, vn);
                }
                if first {
                    if let Some(interval) = self.dir.params.fib_sample_interval {
                        ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                    }
                }
                if let Some(interval) = self.dir.params.subscribe_refresh_interval {
                    ctx.set_timer(interval, TIMER_SUBSCRIBE);
                }
            }
            TIMER_FIB_SAMPLE => {
                let name = format!("fib.{}", self.name);
                let now = ctx.now();
                ctx.metrics().record(&name, now, self.fib_len_v4() as f64);
                if let Some(interval) = self.dir.params.fib_sample_interval {
                    ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                }
            }
            TIMER_RETRY => {
                self.retry_armed = false;
                self.run_retries(ctx);
            }
            _ => {}
        }
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, FabricMsg>, fault: FaultEvent) {
        match fault {
            FaultEvent::Crash => {
                self.failed = true;
            }
            FaultEvent::Restart => {
                self.failed = false;
                ctx.metrics().incr("fabric.border_restarts");
                // The synced overlay slice is volatile; external routes,
                // ACL and sinks are config. Drop every VN's slice and
                // resubscribe from scratch.
                let vns: Vec<VnId> = self.dir.params.vns.clone();
                for vn in &vns {
                    self.switch.purge_vn(*vn);
                }
                self.last_pub_seq.clear();
                self.pending_subscribes.clear();
                for vn in vns {
                    self.subscribe_vn(ctx, vn);
                }
            }
            // Shard-scoped faults target the routing server, not borders.
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
