//! Post-chaos convergence checking.
//!
//! A chaos run (crashes, partitions, loss — see [`sda_simnet::fault`])
//! is only meaningful with a fixed point to measure against. This
//! module compares the fabric's distributed state against the scenario's
//! *expected placement* — where every endpoint should be attached once
//! the faults cease — at three levels:
//!
//! 1. **Registration convergence** — the routing server's mapping
//!    database holds exactly the expected `(vn, eid) → rloc` set.
//! 2. **Pub/sub convergence** — every border's synced overlay slice
//!    equals the server database (the subscriber view reached the
//!    publisher's fixed point).
//! 3. **No stuck control state** — zero in-flight resolutions,
//!    unacked registers or unacked subscribes anywhere. The
//!    retry/timeout discipline guarantees pending entries either
//!    complete or get evicted; a nonzero count after quiescence is the
//!    classic leak this machinery exists to prevent.
//!
//! Edge map-caches are *reactive*: the paper's model allows them to
//! hold stale entries that heal on use (SMR, Fig. 6) or idle out. The
//! checker therefore counts an edge entry as a mismatch only when it
//! contradicts the expected placement — after a quiet period longer
//! than the scenario's idle timeout, unused stale entries must have
//! been evicted and the count must reach zero.

use std::collections::BTreeMap;

use sda_types::{Eid, EidPrefix, Rloc, VnId};

use crate::controller::{BorderHandle, EdgeHandle, Fabric};

/// Where every endpoint should be once faults cease:
/// `(vn, eid) → serving edge's rloc`.
pub type ExpectedPlacement = BTreeMap<(VnId, Eid), Rloc>;

/// What [`check_convergence`] found. All-zero means the fabric reached
/// the expected fixed point.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceReport {
    /// Map-Requests still in flight across all edges.
    pub stuck_resolving: usize,
    /// Unacked Map-Registers across all edges.
    pub stuck_registers: usize,
    /// Unacked Subscribes across all borders.
    pub stuck_subscribes: usize,
    /// Expected mappings absent from the server database.
    pub db_missing: usize,
    /// Expected mappings registered at the wrong edge.
    pub db_wrong_rloc: usize,
    /// Server-database mappings no endpoint accounts for.
    pub db_extra: usize,
    /// Entries differing between a border's synced slice and the
    /// server database (missing + extra + wrong, over all borders).
    pub border_diffs: usize,
    /// Edge map-cache entries contradicting the expected placement.
    pub edge_cache_mismatches: usize,
}

impl ConvergenceReport {
    /// True when every layer reached the expected fixed point.
    pub fn converged(&self) -> bool {
        self.stuck_resolving == 0
            && self.stuck_registers == 0
            && self.stuck_subscribes == 0
            && self.db_missing == 0
            && self.db_wrong_rloc == 0
            && self.db_extra == 0
            && self.border_diffs == 0
            && self.edge_cache_mismatches == 0
    }
}

/// The representative EID of a full-length prefix.
fn prefix_eid(prefix: &EidPrefix) -> Option<Eid> {
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

/// Compares the fabric's state against `expected`. Run it only after
/// the fabric has quiesced (faults healed, control plane drained, one
/// idle-timeout eviction sweep behind us) — mid-churn everything is
/// legitimately divergent.
pub fn check_convergence(fabric: &Fabric, expected: &ExpectedPlacement) -> ConvergenceReport {
    let mut report = ConvergenceReport::default();

    // Ground truth first: the server database.
    let mut db: BTreeMap<(VnId, Eid), Rloc> = BTreeMap::new();
    for (vn, prefix, record) in fabric.routing_server().server().iter_db() {
        if let Some(eid) = prefix_eid(&prefix) {
            db.insert((vn, eid), record.rloc);
        }
    }
    for (key, want) in expected {
        match db.get(key) {
            None => report.db_missing += 1,
            Some(got) if got != want => report.db_wrong_rloc += 1,
            Some(_) => {}
        }
    }
    report.db_extra = db.keys().filter(|k| !expected.contains_key(*k)).count();

    // Borders: synced slice vs database, both directions.
    for b in 0..fabric.border_count() {
        let border = fabric.border(BorderHandle(b));
        report.stuck_subscribes += border.pending_subscribe_len();
        let mut view: BTreeMap<(VnId, Eid), Rloc> = BTreeMap::new();
        for (vn, prefix, rloc, _) in border.switch().map_cache().iter() {
            if let Some(eid) = prefix_eid(&prefix) {
                view.insert((vn, eid), rloc);
            }
        }
        for (key, want) in &db {
            match view.get(key) {
                Some(got) if got == want => {}
                _ => report.border_diffs += 1,
            }
        }
        report.border_diffs += view.keys().filter(|k| !db.contains_key(*k)).count();
    }

    // Edges: no stuck control state, no cache entry contradicting the
    // expected placement.
    for e in 0..fabric.edge_count() {
        let edge = fabric.edge(EdgeHandle(e));
        report.stuck_resolving += edge.resolving_len();
        report.stuck_registers += edge.pending_register_len();
        for (vn, prefix, rloc, _) in edge.switch().map_cache().iter() {
            let Some(eid) = prefix_eid(&prefix) else {
                continue;
            };
            if let Some(want) = expected.get(&(vn, eid)) {
                if rloc != *want {
                    report.edge_cache_mismatches += 1;
                }
            }
        }
    }

    report
}
