//! The two-stage forwarding pipelines (Fig. 4) as pure decision
//! functions, plus the byte-level encap/decap path.
//!
//! Keeping the decisions pure (state in, action out) makes every branch
//! unit-testable without a simulator; the router nodes in [`crate::edge`]
//! and [`crate::border`] execute the returned actions.
//!
//! The byte path ([`encode_packet`]/[`decode_packet`]) produces the exact
//! Fig. 2 format via `sda-wire` — outer IPv4 + UDP + VXLAN-GPO + inner
//! packet — and the differential tests at the bottom prove it round-trips
//! the structured [`OverlayPacket`] the simulator forwards.

use sda_dataplane::encap;
use sda_policy::Action;
use sda_types::{Eid, GroupId, PortId, Rloc, VnId};
use sda_wire::ipv4;

use crate::acl::GroupAcl;
use crate::msg::{InnerPacket, OverlayPacket};
use crate::vrf::VrfTable;

/// Where group policy is enforced (§5.3 trade-off) — now defined next to
/// the enforcement table in [`sda_policy::enforce`]; re-exported here for
/// the historical `sda_core::pipeline::EnforcementPoint` path.
pub use sda_policy::enforce::EnforcementPoint;

/// What the egress stage decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EgressAction {
    /// Hand the inner packet to the endpoint on this port.
    Deliver {
        /// Output port.
        port: PortId,
        /// Destination group (for accounting).
        dst_group: GroupId,
    },
    /// Group ACL verdict was deny.
    DropPolicy,
    /// The destination is not attached here (mobility / stale routing);
    /// the caller runs the Fig. 6 machinery.
    NotLocal,
}

/// Runs the egress pipeline of Fig. 4 (right half): VRF lookup, then
/// group-ACL exact match.
///
/// `default_action` is the matrix default for unmatched pairs. When the
/// packet's `policy_applied` bit is set (ingress already enforced),
/// the ACL stage is skipped — re-dropping would double-count.
pub fn egress(
    vrf: &VrfTable,
    acl: &mut GroupAcl,
    pkt: &OverlayPacket,
    enforcement: EnforcementPoint,
    default_action: Action,
) -> EgressAction {
    // Stage 1: (VN + overlay destination) lookup in the VRF.
    let Some(ep) = vrf.lookup(pkt.vn, pkt.inner.dst) else {
        return EgressAction::NotLocal;
    };
    // Stage 2: (src GroupId, dst GroupId) exact match.
    let must_enforce = matches!(enforcement, EnforcementPoint::Egress) && !pkt.policy_applied;
    if must_enforce {
        match acl.enforce(pkt.vn, pkt.src_group, ep.group, default_action) {
            Action::Allow => {}
            Action::Deny => return EgressAction::DropPolicy,
        }
    }
    EgressAction::Deliver {
        port: ep.port,
        dst_group: ep.group,
    }
}

/// What the ingress stage decided for a locally originated packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IngressAction {
    /// Destination is attached to this same edge: deliver directly
    /// (the egress stages still ran — ACL included).
    DeliverLocal {
        /// Output port.
        port: PortId,
    },
    /// Encapsulate toward this RLOC.
    Encap {
        /// Destination fabric router.
        to: Rloc,
        /// The packet to transmit.
        packet: OverlayPacket,
    },
    /// No mapping cached: encapsulate toward the border (default route,
    /// §3.2.2) — the caller must also trigger a Map-Request.
    EncapToBorder {
        /// The packet to transmit.
        packet: OverlayPacket,
    },
    /// Ingress-enforcement drop (policy said no before transit).
    DropPolicy,
    /// The sender is not an onboarded endpoint of this edge.
    DropUnknownSource,
}

/// Ingress-enforcement destination-group knowledge: `Some(group)` when
/// this edge knows the destination's group (however it learned it),
/// `None` otherwise. With egress enforcement pass `None`.
pub type DstGroupHint = Option<GroupId>;

/// Runs the ingress pipeline of Fig. 4 (left half) for a packet from an
/// attached endpoint, given the already-classified source binding and
/// the map-cache resolution result.
///
/// `resolved` is what the caller's map-cache said (`Some(rloc)` on
/// hit/stale, `None` on miss). The caller owns cache bookkeeping; this
/// function owns the decision logic so it can be tested exhaustively.
#[allow(clippy::too_many_arguments)]
pub fn ingress(
    vrf: &VrfTable,
    acl: &mut GroupAcl,
    vn: VnId,
    src_group: GroupId,
    inner: InnerPacket,
    resolved: Option<Rloc>,
    enforcement: EnforcementPoint,
    dst_group_hint: DstGroupHint,
    default_action: Action,
    hop_budget: u8,
    self_rloc: Rloc,
) -> IngressAction {
    // Same-edge delivery: run the egress stages locally.
    if vrf.lookup(vn, inner.dst).is_some() {
        let pkt = OverlayPacket {
            vn,
            src_group,
            policy_applied: false,
            hops_left: hop_budget,
            origin: self_rloc,
            inner,
        };
        return match egress(vrf, acl, &pkt, EnforcementPoint::Egress, default_action) {
            EgressAction::Deliver { port, .. } => IngressAction::DeliverLocal { port },
            EgressAction::DropPolicy => IngressAction::DropPolicy,
            EgressAction::NotLocal => unreachable!("lookup succeeded above"),
        };
    }

    // Ingress enforcement (ablation mode): check before spending transit
    // bandwidth, if the destination group is known here.
    let mut policy_applied = false;
    if matches!(enforcement, EnforcementPoint::Ingress) {
        if let Some(dst_group) = dst_group_hint {
            match acl.enforce(vn, src_group, dst_group, default_action) {
                Action::Allow => policy_applied = true,
                Action::Deny => return IngressAction::DropPolicy,
            }
        }
        // Unknown destination group: fall through unenforced; egress
        // still default-checks packets without the applied bit.
    }

    let packet = OverlayPacket {
        vn,
        src_group,
        policy_applied,
        hops_left: hop_budget,
        origin: self_rloc,
        inner,
    };
    match resolved {
        Some(rloc) => IngressAction::Encap { to: rloc, packet },
        None => IngressAction::EncapToBorder { packet },
    }
}

// ---------------------------------------------------------------------
// Byte-accurate encapsulation (Fig. 2), delegated to the forwarding
// engine's shared header codec in `sda_dataplane::encap`.
// ---------------------------------------------------------------------

/// Synthesizes the full on-wire bytes of `pkt` between `outer_src` and
/// `outer_dst`: outer IPv4 / UDP(4789) / VXLAN-GPO / inner IPv4.
/// Only IPv4-EID inner packets have a byte form (L2 flows would carry an
/// Ethernet inner frame; the structured path covers those in-sim).
///
/// One allocation total: the inner packet is emitted at its final offset
/// and [`encap::write_underlay`] frames it in place — the same single
/// encoding the batched engine uses on pooled buffers (the seed path
/// built each layer in its own `Vec` and copied inward three times).
pub fn encode_packet(outer_src: Rloc, outer_dst: Rloc, pkt: &OverlayPacket) -> Option<Vec<u8>> {
    let (Eid::V4(inner_src), Eid::V4(inner_dst)) = (pkt.inner.src, pkt.inner.dst) else {
        return None;
    };

    // Inner IPv4: payload carries (flow, track) then zero padding.
    let meta_len = 9usize;
    let inner_payload_len = meta_len + pkt.inner.payload_len as usize;
    let inner_repr = ipv4::Repr {
        src: inner_src,
        dst: inner_dst,
        protocol: ipv4::Protocol::Unknown(253), // RFC 3692 experimental
        payload_len: inner_payload_len,
        ttl: ipv4::DEFAULT_TTL,
    };
    let mut bytes = vec![0u8; encap::UNDERLAY_OVERHEAD + inner_repr.buffer_len()];
    {
        let mut p = ipv4::Packet::new_unchecked(&mut bytes[encap::UNDERLAY_OVERHEAD..]);
        inner_repr.emit(&mut p);
        let payload = p.payload_mut();
        payload[..8].copy_from_slice(&pkt.inner.flow.to_be_bytes());
        payload[8] = u8::from(pkt.inner.track);
    }

    let params = encap::EncapParams {
        outer_src,
        outer_dst,
        vn: pkt.vn,
        group: pkt.src_group,
        policy_applied: pkt.policy_applied,
        // The fabric hop budget rides the outer TTL.
        ttl: pkt.hops_left,
        // Real encaps hash the inner flow into the source port for ECMP.
        src_port: 49152 + (pkt.inner.flow % 16384) as u16,
        // The simulator path keeps the full UDP checksum so corruption
        // tests bite; the engine's hot path sends the (legal) zero.
        udp_checksum: true,
    };
    encap::write_underlay(&mut bytes, &params).ok()?;
    Some(bytes)
}

/// Parses bytes produced by [`encode_packet`] back into
/// `(outer_src, outer_dst, packet)`, validating every checksum and
/// header on the way — the egress edge's decapsulation, via the same
/// [`encap::parse_underlay`] the batched engine runs.
pub fn decode_packet(bytes: &[u8]) -> sda_wire::Result<(Rloc, Rloc, OverlayPacket)> {
    let d = encap::parse_underlay(bytes)?;
    let group = d.group.ok_or(sda_wire::Error::Malformed)?;

    let inner = ipv4::Packet::new_checked(d.inner)?;
    let payload = inner.payload();
    if payload.len() < 9 {
        return Err(sda_wire::Error::Truncated);
    }
    let flow = u64::from_be_bytes(payload[..8].try_into().unwrap());
    let track = payload[8] != 0;

    Ok((
        d.outer_src,
        d.outer_dst,
        OverlayPacket {
            vn: d.vn,
            src_group: group,
            policy_applied: d.policy_applied,
            hops_left: d.outer_ttl,
            origin: d.outer_src,
            inner: InnerPacket {
                src: Eid::V4(inner.src_addr()),
                dst: Eid::V4(inner.dst_addr()),
                payload_len: (payload.len() - 9) as u16,
                flow,
                track,
            },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrf::LocalEndpoint;
    use sda_policy::{GroupRule, RuleSubset};
    use sda_types::MacAddr;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn local(seed: u32, group: u16) -> LocalEndpoint {
        LocalEndpoint {
            port: PortId(seed as u16),
            group: GroupId(group),
            mac: MacAddr::from_seed(seed),
            ipv4: Ipv4Addr::new(10, 0, 0, seed as u8),
        }
    }

    fn allow_rule(v: VnId, s: u16, d: u16) -> RuleSubset {
        RuleSubset {
            version: 1,
            rules: vec![(
                v,
                GroupRule {
                    src: GroupId(s),
                    dst: GroupId(d),
                    action: Action::Allow,
                },
            )],
        }
    }

    fn inner(src: u8, dst: u8, track: bool) -> InnerPacket {
        InnerPacket {
            src: Eid::V4(Ipv4Addr::new(10, 0, 0, src)),
            dst: Eid::V4(Ipv4Addr::new(10, 0, 0, dst)),
            payload_len: 100,
            flow: 42,
            track,
        }
    }

    fn packet(v: VnId, src_group: u16, src: u8, dst: u8) -> OverlayPacket {
        OverlayPacket {
            vn: v,
            src_group: GroupId(src_group),
            policy_applied: false,
            hops_left: 8,
            origin: Rloc::for_router_index(1),
            inner: inner(src, dst, false),
        }
    }

    #[test]
    fn egress_delivers_allowed_traffic() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 10, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(
            act,
            EgressAction::Deliver {
                port: PortId(2),
                dst_group: GroupId(20)
            }
        );
        assert_eq!(acl.counters(), (1, 0));
    }

    #[test]
    fn egress_drops_denied_traffic() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 66, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(act, EgressAction::DropPolicy);
        assert_eq!(acl.counters(), (0, 1));
    }

    #[test]
    fn egress_not_local_when_vrf_misses() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 10, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(act, EgressAction::NotLocal);
        assert_eq!(acl.counters(), (0, 0), "ACL must not run before VRF hit");
    }

    #[test]
    fn egress_skips_acl_when_policy_already_applied() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new(); // empty: would deny
        let mut pkt = packet(vn(1), 66, 1, 2);
        pkt.policy_applied = true;
        let act = egress(&vrf, &mut acl, &pkt, EnforcementPoint::Egress, Action::Deny);
        assert!(matches!(act, EgressAction::Deliver { .. }));
    }

    #[test]
    fn ingress_local_delivery_still_enforces() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(1, 10));
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 2, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DeliverLocal { port: PortId(2) });
        // Reverse direction lacks a rule: denied locally.
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(20),
            inner(2, 1, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DropPolicy);
    }

    #[test]
    fn ingress_encapsulates_on_cache_hit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let target = Rloc::for_router_index(7);
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(target),
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { to, packet } => {
                assert_eq!(to, target);
                assert_eq!(packet.src_group, GroupId(10));
                assert!(!packet.policy_applied);
            }
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn ingress_defaults_to_border_on_miss() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert!(matches!(act, IngressAction::EncapToBorder { .. }));
    }

    #[test]
    fn ingress_enforcement_drops_before_transit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new(); // empty → default deny
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            Some(GroupId(20)),
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DropPolicy);
        assert_eq!(acl.counters(), (0, 1));
    }

    #[test]
    fn ingress_enforcement_sets_applied_bit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            Some(GroupId(20)),
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { packet, .. } => assert!(packet.policy_applied),
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn ingress_enforcement_without_hint_defers_to_egress() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { packet, .. } => assert!(!packet.policy_applied),
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn byte_roundtrip_matches_structured_packet() {
        let pkt = OverlayPacket {
            vn: vn(4097),
            src_group: GroupId(17),
            policy_applied: true,
            hops_left: 6,
            origin: Rloc::for_router_index(1),
            inner: inner(1, 2, true),
        };
        let src = Rloc::for_router_index(1);
        let dst = Rloc::for_router_index(2);
        let bytes = encode_packet(src, dst, &pkt).unwrap();
        let (got_src, got_dst, got_pkt) = decode_packet(&bytes).unwrap();
        assert_eq!(got_src, src);
        assert_eq!(got_dst, dst);
        assert_eq!(got_pkt, pkt);
    }

    #[test]
    fn byte_path_rejects_corruption() {
        let pkt = packet(vn(1), 10, 1, 2);
        let src = Rloc::for_router_index(1);
        let dst = Rloc::for_router_index(2);
        let bytes = encode_packet(src, dst, &pkt).unwrap();
        // Flip a payload byte: UDP checksum must catch it.
        let mut corrupted = bytes.clone();
        let idx = bytes.len() - 3;
        corrupted[idx] ^= 0xff;
        assert!(decode_packet(&corrupted).is_err());
    }

    #[test]
    fn mac_inner_has_no_byte_form() {
        let pkt = OverlayPacket {
            vn: vn(1),
            src_group: GroupId(1),
            policy_applied: false,
            hops_left: 8,
            origin: Rloc::for_router_index(1),
            inner: InnerPacket {
                src: Eid::Mac(MacAddr::from_seed(1)),
                dst: Eid::Mac(MacAddr::from_seed(2)),
                payload_len: 64,
                flow: 0,
                track: false,
            },
        };
        assert!(
            encode_packet(Rloc::for_router_index(1), Rloc::for_router_index(2), &pkt).is_none()
        );
    }

    /// Differential: the egress decision on a packet that took the byte
    /// path equals the decision on the structured packet.
    #[test]
    fn decisions_identical_across_byte_roundtrip() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl1 = GroupAcl::new();
        acl1.install(&allow_rule(vn(1), 10, 20));
        let mut acl2 = GroupAcl::new();
        acl2.install(&allow_rule(vn(1), 10, 20));

        let pkt = packet(vn(1), 10, 1, 2);
        let bytes =
            encode_packet(Rloc::for_router_index(1), Rloc::for_router_index(2), &pkt).unwrap();
        let (_, _, decoded) = decode_packet(&bytes).unwrap();

        let a = egress(
            &vrf,
            &mut acl1,
            &pkt,
            EnforcementPoint::Egress,
            Action::Deny,
        );
        let b = egress(
            &vrf,
            &mut acl2,
            &decoded,
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(a, b);
    }
}
