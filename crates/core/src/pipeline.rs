//! The two-stage forwarding pipelines (Fig. 4) as pure decision
//! functions — **demoted to a differential oracle** — plus the byte
//! conventions the simulator nodes share with the engine.
//!
//! Since the data-plane fold, the router nodes in [`crate::edge`] and
//! [`crate::border`] do **not** execute these decisions at runtime:
//! every data packet flows through a per-node
//! [`sda_dataplane::Switch`] as real bytes. What remains here is:
//!
//! * [`ingress`] / [`egress`] — the historical pure decision functions,
//!   kept as an *independent structured model* of what the engine must
//!   decide. [`oracle`] composes them into full verdict/punt
//!   predictions; the differential harness
//!   (`crates/core/tests/differential_oracle.rs`) replays generated
//!   packet populations through both the byte engine and this model and
//!   asserts verdict-for-verdict agreement. Two real divergences were
//!   flushed out and fixed this way: the simulator encoder hardcoded a
//!   full outer UDP checksum while the engine wrote zero (now one
//!   explicit [`encap::OuterChecksum`] config), and the simulator
//!   decremented its `hops_left` budget at the first encap while the
//!   engine stamps the full budget and `checked_sub`s only on
//!   re-forwards (now unified on the engine's real-router semantics —
//!   never emit a zero TTL, drop when the decrement would).
//! * [`encode_packet`] / [`decode_packet`] — the structured
//!   [`OverlayPacket`] ⇄ bytes codec (shared `encap` underneath), used
//!   by the oracle tests and as the frozen per-packet bench baseline.
//! * [`compose_host_frame`] / [`parse_delivered_frame`] — the host-side
//!   frame conventions: how a workload `Send` event becomes the
//!   Ethernet/IPv4 (or L2) frame an edge feeds its switch, and how a
//!   delivered frame's measurement meta (flow id, track bit) is read
//!   back for metrics.

use sda_dataplane::encap::{self, OuterChecksum};
use sda_dataplane::MAX_FRAME;
use sda_policy::Action;
use sda_types::{Eid, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

use crate::acl::GroupAcl;
use crate::msg::{InnerPacket, OverlayPacket};
use crate::vrf::VrfTable;

/// Where group policy is enforced (§5.3 trade-off) — now defined next to
/// the enforcement table in [`sda_policy::enforce`]; re-exported here for
/// the historical `sda_core::pipeline::EnforcementPoint` path.
pub use sda_policy::enforce::EnforcementPoint;

/// What the egress stage decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EgressAction {
    /// Hand the inner packet to the endpoint on this port.
    Deliver {
        /// Output port.
        port: PortId,
        /// Destination group (for accounting).
        dst_group: GroupId,
    },
    /// Group ACL verdict was deny.
    DropPolicy,
    /// The destination is not attached here (mobility / stale routing);
    /// the caller runs the Fig. 6 machinery.
    NotLocal,
}

/// Runs the egress pipeline of Fig. 4 (right half): VRF lookup, then
/// group-ACL exact match.
///
/// `default_action` is the matrix default for unmatched pairs. When the
/// packet's `policy_applied` bit is set (ingress already enforced),
/// the ACL stage is skipped — re-dropping would double-count.
pub fn egress(
    vrf: &VrfTable,
    acl: &mut GroupAcl,
    pkt: &OverlayPacket,
    enforcement: EnforcementPoint,
    default_action: Action,
) -> EgressAction {
    // Stage 1: (VN + overlay destination) lookup in the VRF.
    let Some(ep) = vrf.lookup(pkt.vn, pkt.inner.dst) else {
        return EgressAction::NotLocal;
    };
    // Stage 2: (src GroupId, dst GroupId) exact match.
    let must_enforce = matches!(enforcement, EnforcementPoint::Egress) && !pkt.policy_applied;
    if must_enforce {
        match acl.enforce(pkt.vn, pkt.src_group, ep.group, default_action) {
            Action::Allow => {}
            Action::Deny => return EgressAction::DropPolicy,
        }
    }
    EgressAction::Deliver {
        port: ep.port,
        dst_group: ep.group,
    }
}

/// What the ingress stage decided for a locally originated packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IngressAction {
    /// Destination is attached to this same edge: deliver directly
    /// (the egress stages still ran — ACL included).
    DeliverLocal {
        /// Output port.
        port: PortId,
    },
    /// Encapsulate toward this RLOC.
    Encap {
        /// Destination fabric router.
        to: Rloc,
        /// The packet to transmit.
        packet: OverlayPacket,
    },
    /// No mapping cached: encapsulate toward the border (default route,
    /// §3.2.2) — the caller must also trigger a Map-Request.
    EncapToBorder {
        /// The packet to transmit.
        packet: OverlayPacket,
    },
    /// Ingress-enforcement drop (policy said no before transit).
    DropPolicy,
    /// The sender is not an onboarded endpoint of this edge.
    DropUnknownSource,
}

/// Ingress-enforcement destination-group knowledge: `Some(group)` when
/// this edge knows the destination's group (however it learned it),
/// `None` otherwise. With egress enforcement pass `None`.
pub type DstGroupHint = Option<GroupId>;

/// Runs the ingress pipeline of Fig. 4 (left half) for a packet from an
/// attached endpoint, given the already-classified source binding and
/// the map-cache resolution result.
///
/// `resolved` is what the caller's map-cache said (`Some(rloc)` on
/// hit/stale, `None` on miss). The caller owns cache bookkeeping; this
/// function owns the decision logic so it can be tested exhaustively.
#[allow(clippy::too_many_arguments)]
pub fn ingress(
    vrf: &VrfTable,
    acl: &mut GroupAcl,
    vn: VnId,
    src_group: GroupId,
    inner: InnerPacket,
    resolved: Option<Rloc>,
    enforcement: EnforcementPoint,
    dst_group_hint: DstGroupHint,
    default_action: Action,
    hop_budget: u8,
    self_rloc: Rloc,
) -> IngressAction {
    // Same-edge delivery: run the egress stages locally.
    if vrf.lookup(vn, inner.dst).is_some() {
        let pkt = OverlayPacket {
            vn,
            src_group,
            policy_applied: false,
            hops_left: hop_budget,
            origin: self_rloc,
            inner,
        };
        return match egress(vrf, acl, &pkt, EnforcementPoint::Egress, default_action) {
            EgressAction::Deliver { port, .. } => IngressAction::DeliverLocal { port },
            EgressAction::DropPolicy => IngressAction::DropPolicy,
            EgressAction::NotLocal => unreachable!("lookup succeeded above"),
        };
    }

    // Ingress enforcement (ablation mode): check before spending transit
    // bandwidth, if the destination group is known here.
    let mut policy_applied = false;
    if matches!(enforcement, EnforcementPoint::Ingress) {
        if let Some(dst_group) = dst_group_hint {
            match acl.enforce(vn, src_group, dst_group, default_action) {
                Action::Allow => policy_applied = true,
                Action::Deny => return IngressAction::DropPolicy,
            }
        }
        // Unknown destination group: fall through unenforced. Under
        // ingress enforcement the egress stage does not re-check, so
        // such packets travel (and deliver) unenforced — the signaling
        // gap that makes §5.3 prefer egress enforcement.
    }

    let packet = OverlayPacket {
        vn,
        src_group,
        policy_applied,
        hops_left: hop_budget,
        origin: self_rloc,
        inner,
    };
    match resolved {
        Some(rloc) => IngressAction::Encap { to: rloc, packet },
        None => IngressAction::EncapToBorder { packet },
    }
}

// ---------------------------------------------------------------------
// Byte-accurate encapsulation (Fig. 2), delegated to the forwarding
// engine's shared header codec in `sda_dataplane::encap`.
// ---------------------------------------------------------------------

/// Synthesizes the full on-wire bytes of `pkt` between `outer_src` and
/// `outer_dst`: outer IPv4 / UDP(4789) / VXLAN-GPO / inner IPv4, with
/// an explicit outer-checksum policy (the engine equivalent defaults to
/// [`OuterChecksum::Zero`]; pass [`OuterChecksum::Full`] for the
/// corruption-detecting form). Only IPv4-EID inner packets have this
/// structured byte form (L2 flows carry an Ethernet inner frame — see
/// [`compose_host_frame`]).
///
/// One allocation total: the inner packet is emitted at its final offset
/// and [`encap::write_underlay`] frames it in place — the same single
/// encoding the batched engine uses on pooled buffers (the seed path
/// built each layer in its own `Vec` and copied inward three times).
pub fn encode_packet(
    outer_src: Rloc,
    outer_dst: Rloc,
    pkt: &OverlayPacket,
    checksum: OuterChecksum,
) -> Option<Vec<u8>> {
    let (Eid::V4(inner_src), Eid::V4(inner_dst)) = (pkt.inner.src, pkt.inner.dst) else {
        return None;
    };

    // Inner IPv4: payload carries (flow, track) then zero padding.
    let meta_len = 9usize;
    let inner_payload_len = meta_len + pkt.inner.payload_len as usize;
    let inner_repr = ipv4::Repr {
        src: inner_src,
        dst: inner_dst,
        protocol: ipv4::Protocol::Unknown(253), // RFC 3692 experimental
        payload_len: inner_payload_len,
        ttl: ipv4::DEFAULT_TTL,
    };
    let mut bytes = vec![0u8; encap::UNDERLAY_OVERHEAD + inner_repr.buffer_len()];
    {
        let mut p = ipv4::Packet::new_unchecked(&mut bytes[encap::UNDERLAY_OVERHEAD..]);
        inner_repr.emit(&mut p);
        let payload = p.payload_mut();
        payload[..8].copy_from_slice(&pkt.inner.flow.to_be_bytes());
        payload[8] = u8::from(pkt.inner.track);
    }

    let params = encap::EncapParams {
        outer_src,
        outer_dst,
        vn: pkt.vn,
        group: pkt.src_group,
        policy_applied: pkt.policy_applied,
        // The fabric hop budget rides the outer TTL.
        ttl: pkt.hops_left,
        // Real encaps hash the inner flow into the source port for ECMP.
        src_port: 49152 + (pkt.inner.flow % 16384) as u16,
        udp_checksum: checksum,
        inner_proto: encap::InnerProto::Ipv4,
    };
    encap::write_underlay(&mut bytes, &params).ok()?;
    Some(bytes)
}

/// Parses bytes produced by [`encode_packet`] back into
/// `(outer_src, outer_dst, packet)`, validating every checksum and
/// header on the way — the egress edge's decapsulation, via the same
/// [`encap::parse_underlay`] the batched engine runs.
pub fn decode_packet(bytes: &[u8]) -> sda_wire::Result<(Rloc, Rloc, OverlayPacket)> {
    let d = encap::parse_underlay(bytes)?;
    let group = d.group.ok_or(sda_wire::Error::Malformed)?;

    let inner = ipv4::Packet::new_checked(d.inner)?;
    let payload = inner.payload();
    if payload.len() < 9 {
        return Err(sda_wire::Error::Truncated);
    }
    let flow = u64::from_be_bytes(payload[..8].try_into().unwrap());
    let track = payload[8] != 0;

    Ok((
        d.outer_src,
        d.outer_dst,
        OverlayPacket {
            vn: d.vn,
            src_group: group,
            policy_applied: d.policy_applied,
            hops_left: d.outer_ttl,
            origin: d.outer_src,
            inner: InnerPacket {
                src: Eid::V4(inner.src_addr()),
                dst: Eid::V4(inner.dst_addr()),
                payload_len: (payload.len() - 9) as u16,
                flow,
                track,
            },
        },
    ))
}

// ---------------------------------------------------------------------
// Host-side frame conventions: Send events ⇄ real frames.
// ---------------------------------------------------------------------

/// Bytes of measurement meta at the head of every composed payload:
/// the 8-byte flow id plus the track bit.
pub const FRAME_META_LEN: usize = 9;

/// Composes the Ethernet frame an endpoint's `Send` event stands for,
/// into `out` (cleared and reused — no steady-state allocation beyond
/// the scratch vector's high-water mark):
///
/// * IPv4-EID destinations become an Ethernet/IPv4 frame whose payload
///   carries `(flow, track)` then zero padding — the same meta
///   convention as [`encode_packet`], so delivery metrics survive the
///   byte path.
/// * MAC-EID destinations (L2 flows, §3.5 — e.g. the unicast-converted
///   ARP) become a unicast non-IP frame toward the owner MAC with the
///   same meta at the payload head.
///
/// The simulated payload is capped so the frame fits [`MAX_FRAME`]
/// (`payload_len` is a bandwidth-accounting figure; the cap only trims
/// padding bytes). Returns `false` for destinations with no byte form
/// (IPv6 EIDs — a documented simplification).
pub fn compose_host_frame(
    out: &mut Vec<u8>,
    src_mac: MacAddr,
    src_ipv4: std::net::Ipv4Addr,
    dst: Eid,
    payload_len: u16,
    flow: u64,
    track: bool,
) -> bool {
    out.clear();
    match dst {
        Eid::V4(dst_ip) => {
            // The cap must leave room for the *encapsulated* form at
            // the receiving node: the underlay packet (inner IPv4 +
            // UNDERLAY_OVERHEAD, the Ethernet header having been
            // stripped) has to fit MAX_FRAME too.
            let cap = MAX_FRAME - encap::UNDERLAY_OVERHEAD - ipv4::HEADER_LEN - FRAME_META_LEN;
            let padding = usize::from(payload_len).min(cap);
            let inner = ipv4::Repr {
                src: src_ipv4,
                dst: dst_ip,
                protocol: ipv4::Protocol::Unknown(253), // RFC 3692 experimental
                payload_len: FRAME_META_LEN + padding,
                ttl: ipv4::DEFAULT_TTL,
            };
            out.resize(ethernet::HEADER_LEN + inner.buffer_len(), 0);
            ethernet::Repr {
                dst: MacAddr::BROADCAST,
                src: src_mac,
                ethertype: EtherType::Ipv4,
            }
            .emit(&mut ethernet::Frame::new_unchecked(&mut out[..]));
            let mut ip = ipv4::Packet::new_unchecked(&mut out[ethernet::HEADER_LEN..]);
            inner.emit(&mut ip);
            let payload = ip.payload_mut();
            payload[..8].copy_from_slice(&flow.to_be_bytes());
            payload[8] = u8::from(track);
            true
        }
        Eid::Mac(dst_mac) => {
            // L2 flows encapsulate the whole frame: reserve the
            // underlay overhead on top of it.
            let cap = MAX_FRAME - encap::UNDERLAY_OVERHEAD - ethernet::HEADER_LEN - FRAME_META_LEN;
            let padding = usize::from(payload_len).min(cap);
            out.resize(ethernet::HEADER_LEN + FRAME_META_LEN + padding, 0);
            ethernet::Repr {
                dst: dst_mac,
                src: src_mac,
                ethertype: EtherType::Arp,
            }
            .emit(&mut ethernet::Frame::new_unchecked(&mut out[..]));
            out[ethernet::HEADER_LEN..ethernet::HEADER_LEN + 8]
                .copy_from_slice(&flow.to_be_bytes());
            out[ethernet::HEADER_LEN + 8] = u8::from(track);
            true
        }
        Eid::V6(_) => false,
    }
}

/// What a delivered frame carried, for metrics accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeliveredFrame {
    /// The destination EID the delivery satisfied (IPv4 for L3 flows,
    /// the frame's destination MAC for L2).
    pub dst: Eid,
    /// Flow id from the measurement meta.
    pub flow: u64,
    /// Track bit from the measurement meta.
    pub track: bool,
}

/// Reads the [`compose_host_frame`] measurement meta back out of a
/// frame the switch delivered (after its egress rewrite).
pub fn parse_delivered_frame(bytes: &[u8]) -> Option<DeliveredFrame> {
    let eth = ethernet::Frame::new_checked(bytes).ok()?;
    let meta = |dst: Eid, payload: &[u8]| {
        if payload.len() < FRAME_META_LEN {
            return None;
        }
        Some(DeliveredFrame {
            dst,
            flow: u64::from_be_bytes(payload[..8].try_into().unwrap()),
            track: payload[8] != 0,
        })
    };
    if eth.ethertype() == EtherType::Ipv4 {
        let ip = ipv4::Packet::new_checked(eth.payload()).ok()?;
        meta(Eid::V4(ip.dst_addr()), ip.payload())
    } else {
        meta(Eid::Mac(eth.dst_addr()), eth.payload())
    }
}

// ---------------------------------------------------------------------
// The differential oracle: structured predictions of engine verdicts.
// ---------------------------------------------------------------------

/// Structured verdict/punt predictions for the byte engine, built from
/// the legacy [`ingress`]/[`egress`] decision functions plus the
/// composition rules the simulator historically applied around them
/// (default route, TTL, externals, SMR punts).
///
/// This is deliberately a *second implementation* of the forwarding
/// semantics: it shares the engine's **state** (the same
/// [`sda_dataplane::SharedTables`]) but none of its code path, so the
/// differential harness comparing the two flushes out any divergence in
/// decision logic — each one found is a bug in whichever side is wrong.
pub mod oracle {
    use sda_dataplane::{encap, DropReason, Punt, SharedTables, SwitchConfig, Verdict};
    use sda_lisp::CacheOutcome;
    use sda_policy::{EnforcementPoint, GroupAcl};
    use sda_simnet::SimTime;
    use sda_types::{Eid, MacAddr};
    use sda_wire::{ethernet, ipv4, EtherType};

    use crate::msg::{InnerPacket, OverlayPacket};
    use crate::pipeline::{egress, ingress, EgressAction, IngressAction};

    /// Normalizes a cache outcome the way the engine does: a mapping
    /// pointing back at this switch contradicts the VRF (the endpoint
    /// left; forwarding to self would loop) and reads as a miss.
    fn normalize(cfg: &SwitchConfig, o: CacheOutcome) -> CacheOutcome {
        match o {
            CacheOutcome::Hit(r) | CacheOutcome::Stale(r) if r == cfg.rloc => CacheOutcome::Miss,
            o => o,
        }
    }

    /// Predicts the engine's ingress verdict and punts for one
    /// host-side frame.
    pub fn predict_ingress(
        cfg: &SwitchConfig,
        tables: &SharedTables,
        frame: &[u8],
        now: SimTime,
    ) -> (Verdict, Vec<Punt>) {
        // Decompile into the reference per-pair ACL for the decision —
        // the model stays a second implementation (it never touches the
        // engine's bitset rows), and the prediction must not perturb
        // the shared enforcement counters.
        let mut acl = tables.acl().to_group_acl();
        predict_ingress_with_acl(cfg, tables, &mut acl, frame, now)
    }

    /// [`predict_ingress`] against a caller-owned reference ACL, so a
    /// whole-run replay can accumulate the model's enforcement counters
    /// in one place and diff them against the engine's shared atomics.
    pub fn predict_ingress_with_acl(
        cfg: &SwitchConfig,
        tables: &SharedTables,
        acl: &mut GroupAcl,
        frame: &[u8],
        now: SimTime,
    ) -> (Verdict, Vec<Punt>) {
        let mut punts = Vec::new();
        let Ok(eth) = ethernet::Frame::new_checked(frame) else {
            return (Verdict::Drop(DropReason::Malformed), punts);
        };
        let src_mac = eth.src_addr();
        let Some((vn, src_ep)) = tables.vrf().classify(src_mac).map(|(v, e)| (v, *e)) else {
            return (Verdict::Drop(DropReason::UnknownSource), punts);
        };
        let inner = if eth.ethertype() == EtherType::Ipv4 {
            let Ok(ip) = ipv4::Packet::new_checked(eth.payload()) else {
                return (Verdict::Drop(DropReason::Malformed), punts);
            };
            if ip.src_addr() != src_ep.ipv4 {
                // IP source guard (anti-spoofing).
                return (Verdict::Drop(DropReason::UnknownSource), punts);
            }
            InnerPacket {
                src: Eid::V4(ip.src_addr()),
                dst: Eid::V4(ip.dst_addr()),
                payload_len: 0,
                flow: 0,
                track: false,
            }
        } else {
            // L2 flow: the destination MAC is the EID; broadcasts never
            // enter the fabric (the gateway absorbs them in control).
            if eth.dst_addr() == MacAddr::BROADCAST {
                return (Verdict::Drop(DropReason::Unsupported), punts);
            }
            InnerPacket {
                src: Eid::Mac(src_mac),
                dst: Eid::Mac(eth.dst_addr()),
                payload_len: 0,
                flow: 0,
                track: false,
            }
        };

        let outcome = normalize(cfg, tables.map_cache().lookup_shared(vn, inner.dst, now));
        let (resolved, stale) = match outcome {
            CacheOutcome::Hit(r) => (Some(r), false),
            CacheOutcome::Stale(r) => (Some(r), true),
            CacheOutcome::Miss => (None, false),
        };
        // Stale entries defer ingress enforcement to egress (the move
        // may have changed the destination's binding).
        let hint = if matches!(cfg.enforcement, EnforcementPoint::Ingress) && !stale {
            tables.dst_hint(vn, inner.dst)
        } else {
            None
        };
        let action = ingress(
            tables.vrf(),
            acl,
            vn,
            src_ep.group,
            inner,
            resolved,
            cfg.enforcement,
            hint,
            cfg.default_action,
            cfg.hop_budget,
            cfg.rloc,
        );
        let verdict = match action {
            IngressAction::DeliverLocal { port } => Verdict::Deliver { port },
            IngressAction::DropPolicy => Verdict::Drop(DropReason::Policy),
            IngressAction::DropUnknownSource => Verdict::Drop(DropReason::UnknownSource),
            IngressAction::Encap { to, .. } => {
                if stale {
                    punts.push(Punt::MapRequest {
                        vn,
                        eid: inner.dst,
                        refresh: true,
                    });
                }
                Verdict::Forward { to }
            }
            IngressAction::EncapToBorder { .. } => {
                punts.push(Punt::MapRequest {
                    vn,
                    eid: inner.dst,
                    refresh: false,
                });
                match cfg.border.filter(|_| cfg.miss_default_route) {
                    Some(border) => Verdict::Forward { to: border },
                    None if tables.external_match(inner.dst) => Verdict::DeliverExternal,
                    None => Verdict::Drop(DropReason::NoRoute),
                }
            }
        };
        (verdict, punts)
    }

    /// Predicts the engine's egress verdict and punts for one underlay
    /// packet.
    pub fn predict_egress(
        cfg: &SwitchConfig,
        tables: &SharedTables,
        wire: &[u8],
        now: SimTime,
    ) -> (Verdict, Vec<Punt>) {
        // Decompiled reference ACL, same reasoning as `predict_ingress`.
        let mut acl = tables.acl().to_group_acl();
        predict_egress_with_acl(cfg, tables, &mut acl, wire, now)
    }

    /// [`predict_egress`] against a caller-owned reference ACL (see
    /// [`predict_ingress_with_acl`]).
    pub fn predict_egress_with_acl(
        cfg: &SwitchConfig,
        tables: &SharedTables,
        acl: &mut GroupAcl,
        wire: &[u8],
        now: SimTime,
    ) -> (Verdict, Vec<Punt>) {
        let mut punts = Vec::new();
        let Ok(d) = encap::parse_underlay(wire) else {
            return (Verdict::Drop(DropReason::Malformed), punts);
        };
        if d.outer_dst != cfg.rloc {
            return (Verdict::Drop(DropReason::NotOurs), punts);
        }
        let Some(src_group) = d.group else {
            return (Verdict::Drop(DropReason::Malformed), punts);
        };
        let inner = match d.inner_proto {
            encap::InnerProto::Ipv4 => {
                let Ok(ip) = ipv4::Packet::new_checked(d.inner) else {
                    return (Verdict::Drop(DropReason::Malformed), punts);
                };
                InnerPacket {
                    src: Eid::V4(ip.src_addr()),
                    dst: Eid::V4(ip.dst_addr()),
                    payload_len: 0,
                    flow: 0,
                    track: false,
                }
            }
            encap::InnerProto::Ethernet => {
                let Ok(inner_eth) = ethernet::Frame::new_checked(d.inner) else {
                    return (Verdict::Drop(DropReason::Malformed), punts);
                };
                InnerPacket {
                    src: Eid::Mac(inner_eth.src_addr()),
                    dst: Eid::Mac(inner_eth.dst_addr()),
                    payload_len: 0,
                    flow: 0,
                    track: false,
                }
            }
        };
        let pkt = OverlayPacket {
            vn: d.vn,
            src_group,
            policy_applied: d.policy_applied,
            hops_left: d.outer_ttl,
            origin: d.outer_src,
            inner,
        };
        match egress(tables.vrf(), acl, &pkt, cfg.enforcement, cfg.default_action) {
            EgressAction::Deliver { port, .. } => (Verdict::Deliver { port }, punts),
            EgressAction::DropPolicy => (Verdict::Drop(DropReason::Policy), punts),
            EgressAction::NotLocal => {
                // Fig. 6: data-triggered SMR to the packet's outer
                // source, then forward toward the cached location (or
                // ride the default route like a rebooted edge, §5.2).
                punts.push(Punt::Smr {
                    to: d.outer_src,
                    vn: d.vn,
                    eid: inner.dst,
                });
                let next_hop =
                    match normalize(cfg, tables.map_cache().lookup_shared(d.vn, inner.dst, now)) {
                        CacheOutcome::Hit(r) | CacheOutcome::Stale(r) => r,
                        CacheOutcome::Miss => {
                            punts.push(Punt::MapRequest {
                                vn: d.vn,
                                eid: inner.dst,
                                refresh: false,
                            });
                            match cfg.border {
                                Some(border) => border,
                                None if tables.external_match(inner.dst) => {
                                    return (Verdict::DeliverExternal, punts)
                                }
                                None => return (Verdict::Drop(DropReason::NoRoute), punts),
                            }
                        }
                    };
                // Real-router TTL: decrement, never emit zero.
                if d.outer_ttl <= 1 {
                    (Verdict::Drop(DropReason::TtlExpired), punts)
                } else {
                    (Verdict::Forward { to: next_hop }, punts)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrf::LocalEndpoint;
    use sda_policy::{GroupRule, RuleSubset};
    use sda_types::MacAddr;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn local(seed: u32, group: u16) -> LocalEndpoint {
        LocalEndpoint {
            port: PortId(seed as u16),
            group: GroupId(group),
            mac: MacAddr::from_seed(seed),
            ipv4: Ipv4Addr::new(10, 0, 0, seed as u8),
        }
    }

    fn allow_rule(v: VnId, s: u16, d: u16) -> RuleSubset {
        RuleSubset {
            version: 1,
            rules: vec![(
                v,
                GroupRule {
                    src: GroupId(s),
                    dst: GroupId(d),
                    action: Action::Allow,
                },
            )],
        }
    }

    fn inner(src: u8, dst: u8, track: bool) -> InnerPacket {
        InnerPacket {
            src: Eid::V4(Ipv4Addr::new(10, 0, 0, src)),
            dst: Eid::V4(Ipv4Addr::new(10, 0, 0, dst)),
            payload_len: 100,
            flow: 42,
            track,
        }
    }

    fn packet(v: VnId, src_group: u16, src: u8, dst: u8) -> OverlayPacket {
        OverlayPacket {
            vn: v,
            src_group: GroupId(src_group),
            policy_applied: false,
            hops_left: 8,
            origin: Rloc::for_router_index(1),
            inner: inner(src, dst, false),
        }
    }

    #[test]
    fn egress_delivers_allowed_traffic() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 10, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(
            act,
            EgressAction::Deliver {
                port: PortId(2),
                dst_group: GroupId(20)
            }
        );
        assert_eq!(acl.counters(), (1, 0));
    }

    #[test]
    fn egress_drops_denied_traffic() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 66, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(act, EgressAction::DropPolicy);
        assert_eq!(acl.counters(), (0, 1));
    }

    #[test]
    fn egress_not_local_when_vrf_misses() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = egress(
            &vrf,
            &mut acl,
            &packet(vn(1), 10, 1, 2),
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(act, EgressAction::NotLocal);
        assert_eq!(acl.counters(), (0, 0), "ACL must not run before VRF hit");
    }

    #[test]
    fn egress_skips_acl_when_policy_already_applied() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new(); // empty: would deny
        let mut pkt = packet(vn(1), 66, 1, 2);
        pkt.policy_applied = true;
        let act = egress(&vrf, &mut acl, &pkt, EnforcementPoint::Egress, Action::Deny);
        assert!(matches!(act, EgressAction::Deliver { .. }));
    }

    #[test]
    fn ingress_local_delivery_still_enforces() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(1, 10));
        vrf.attach(vn(1), local(2, 20));
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 2, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DeliverLocal { port: PortId(2) });
        // Reverse direction lacks a rule: denied locally.
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(20),
            inner(2, 1, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DropPolicy);
    }

    #[test]
    fn ingress_encapsulates_on_cache_hit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let target = Rloc::for_router_index(7);
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(target),
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { to, packet } => {
                assert_eq!(to, target);
                assert_eq!(packet.src_group, GroupId(10));
                assert!(!packet.policy_applied);
            }
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn ingress_defaults_to_border_on_miss() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            None,
            EnforcementPoint::Egress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert!(matches!(act, IngressAction::EncapToBorder { .. }));
    }

    #[test]
    fn ingress_enforcement_drops_before_transit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new(); // empty → default deny
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            Some(GroupId(20)),
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        assert_eq!(act, IngressAction::DropPolicy);
        assert_eq!(acl.counters(), (0, 1));
    }

    #[test]
    fn ingress_enforcement_sets_applied_bit() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        acl.install(&allow_rule(vn(1), 10, 20));
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            Some(GroupId(20)),
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { packet, .. } => assert!(packet.policy_applied),
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn ingress_enforcement_without_hint_defers_to_egress() {
        let vrf = VrfTable::new();
        let mut acl = GroupAcl::new();
        let act = ingress(
            &vrf,
            &mut acl,
            vn(1),
            GroupId(10),
            inner(1, 9, false),
            Some(Rloc::for_router_index(7)),
            EnforcementPoint::Ingress,
            None,
            Action::Deny,
            8,
            Rloc::for_router_index(1),
        );
        match act {
            IngressAction::Encap { packet, .. } => assert!(!packet.policy_applied),
            other => panic!("expected Encap, got {other:?}"),
        }
    }

    #[test]
    fn byte_roundtrip_matches_structured_packet() {
        let pkt = OverlayPacket {
            vn: vn(4097),
            src_group: GroupId(17),
            policy_applied: true,
            hops_left: 6,
            origin: Rloc::for_router_index(1),
            inner: inner(1, 2, true),
        };
        let src = Rloc::for_router_index(1);
        let dst = Rloc::for_router_index(2);
        let bytes = encode_packet(src, dst, &pkt, OuterChecksum::Full).unwrap();
        let (got_src, got_dst, got_pkt) = decode_packet(&bytes).unwrap();
        assert_eq!(got_src, src);
        assert_eq!(got_dst, dst);
        assert_eq!(got_pkt, pkt);
    }

    #[test]
    fn byte_path_rejects_corruption() {
        let pkt = packet(vn(1), 10, 1, 2);
        let src = Rloc::for_router_index(1);
        let dst = Rloc::for_router_index(2);
        let bytes = encode_packet(src, dst, &pkt, OuterChecksum::Full).unwrap();
        // Flip a payload byte: the full UDP checksum must catch it (the
        // zero-checksum policy deliberately would not — RFC 6935).
        let mut corrupted = bytes.clone();
        let idx = bytes.len() - 3;
        corrupted[idx] ^= 0xff;
        assert!(decode_packet(&corrupted).is_err());
    }

    /// Review regression: a maximum-size send must compose a frame
    /// whose *encapsulated* form still fits a receiving node's buffer
    /// (the cap reserves the underlay overhead).
    #[test]
    fn composed_frames_survive_encapsulation_at_max_payload() {
        use sda_dataplane::MAX_FRAME;
        use sda_wire::ethernet;
        let mut out = Vec::new();
        // L3: the edge strips the Ethernet header and prepends the
        // underlay around the inner IPv4 packet.
        assert!(compose_host_frame(
            &mut out,
            MacAddr::from_seed(1),
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            Eid::V4(std::net::Ipv4Addr::new(10, 0, 0, 2)),
            u16::MAX,
            7,
            true,
        ));
        assert!(out.len() <= MAX_FRAME);
        assert!(
            out.len() - ethernet::HEADER_LEN + encap::UNDERLAY_OVERHEAD <= MAX_FRAME,
            "encapsulated L3 form must fit: {}",
            out.len()
        );
        // L2: the whole frame is the inner payload.
        assert!(compose_host_frame(
            &mut out,
            MacAddr::from_seed(1),
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            Eid::Mac(MacAddr::from_seed(2)),
            u16::MAX,
            7,
            true,
        ));
        assert!(
            out.len() + encap::UNDERLAY_OVERHEAD <= MAX_FRAME,
            "encapsulated L2 form must fit: {}",
            out.len()
        );
    }

    #[test]
    fn mac_inner_has_no_byte_form() {
        let pkt = OverlayPacket {
            vn: vn(1),
            src_group: GroupId(1),
            policy_applied: false,
            hops_left: 8,
            origin: Rloc::for_router_index(1),
            inner: InnerPacket {
                src: Eid::Mac(MacAddr::from_seed(1)),
                dst: Eid::Mac(MacAddr::from_seed(2)),
                payload_len: 64,
                flow: 0,
                track: false,
            },
        };
        assert!(encode_packet(
            Rloc::for_router_index(1),
            Rloc::for_router_index(2),
            &pkt,
            OuterChecksum::Zero
        )
        .is_none());
    }

    /// Differential: the egress decision on a packet that took the byte
    /// path equals the decision on the structured packet.
    #[test]
    fn decisions_identical_across_byte_roundtrip() {
        let mut vrf = VrfTable::new();
        vrf.attach(vn(1), local(2, 20));
        let mut acl1 = GroupAcl::new();
        acl1.install(&allow_rule(vn(1), 10, 20));
        let mut acl2 = GroupAcl::new();
        acl2.install(&allow_rule(vn(1), 10, 20));

        let pkt = packet(vn(1), 10, 1, 2);
        let bytes = encode_packet(
            Rloc::for_router_index(1),
            Rloc::for_router_index(2),
            &pkt,
            OuterChecksum::Zero,
        )
        .unwrap();
        let (_, _, decoded) = decode_packet(&bytes).unwrap();

        let a = egress(
            &vrf,
            &mut acl1,
            &pkt,
            EnforcementPoint::Egress,
            Action::Deny,
        );
        let b = egress(
            &vrf,
            &mut acl2,
            &decoded,
            EnforcementPoint::Egress,
            Action::Deny,
        );
        assert_eq!(a, b);
    }
}
