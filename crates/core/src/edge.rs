//! The edge router node: the §3.3 "Edge Routers" functions.
//!
//! 1. Encap/decap endpoint traffic — through this node's own
//!    [`sda_dataplane::Switch`], on real bytes. The node composes each
//!    endpoint `Send` event into an Ethernet frame
//!    ([`pipeline::compose_host_frame`]), runs the engine's
//!    ingress/egress batch pipeline, and transmits the rewritten
//!    buffers as [`FabricMsg::Data`] byte packets. The engine makes
//!    every forwarding decision; the node's job is the control plane
//!    around it.
//! 2. Inter-VN isolation (the switch's VRF tables keyed by VN).
//! 3. Roaming detection and location registration.
//! 4. Group-permission enforcement (in the switch's ACL stage).
//!
//! Punt-driven control: the engine queues [`Punt`]s —
//! Map-Requests for misses and stale refreshes, data-triggered SMRs for
//! departed endpoints (Fig. 6) — and this node drains them after every
//! burst ([`Switch::drain_punts_into`]), deduplicating Map-Requests
//! through its in-flight `resolving` set and rate-limiting SMRs through
//! the [`SmrTracker`], then emits the actual LISP messages.
//!
//! Plus the lessons-learned machinery: default-route fallback while a
//! resolution is in flight (§3.2.2), reboot recovery (§5.2), and
//! underlay-reachability fallback (§5.1).
//!
//! The historical structured decision pipeline survives only as the
//! differential oracle in [`crate::pipeline`]; this node no longer
//! calls it on the data path.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use sda_dataplane::{PacketBuf, Punt, Switch, SwitchConfig, SwitchStats, Verdict};
use sda_lisp::SmrTracker;
use sda_simnet::{Context, FaultEvent, Node, NodeId, SimDuration, SimTime};
use sda_types::{Eid, EidKind, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_underlay::{LinkStateRouter, ReachabilityEvent, ReachabilityTracker};
use sda_wire::lisp::{BusyClass, Message as Lisp};

use crate::msg::{ArpMsg, EndpointIdentity, FabricMsg, HostEvent, PolicyMsg};
use crate::pipeline::{self, EnforcementPoint};
use crate::servers::Directory;
use crate::vrf::LocalEndpoint;

/// Timer tokens.
const TIMER_EVICT: u64 = 1;
const TIMER_FIB_SAMPLE: u64 = 2;
const TIMER_UNDERLAY: u64 = 3;
const TIMER_REFRESH: u64 = 4;
/// Retransmit sweep for unanswered Map-Requests/Registers. Lazily
/// armed only while something is pending, so lossless runs never see
/// it fire.
const TIMER_RETRY: u64 = 5;

/// A pending attach awaiting authentication.
struct PendingAttach {
    endpoint: EndpointIdentity,
    port: PortId,
    started: SimTime,
}

/// A Map-Request in flight: retried with exponential backoff until a
/// reply arrives or the attempt budget runs out — then *evicted*, so
/// the resolving set can never wedge an EID permanently (a later
/// packet restarts resolution from scratch).
struct PendingResolve {
    /// Sends so far (the initial request counts).
    attempts: u32,
    /// When the retry sweep may retransmit (or give up).
    next_retry: SimTime,
    /// The delay that produced `next_retry` — the seed for the next
    /// decorrelated-jitter draw.
    prev_delay: SimDuration,
}

/// An unacknowledged Map-Register, keyed by its nonce. Registers are
/// sent with `want_notify` and retransmitted under the *same* nonce —
/// re-delivery is idempotent on the server, and any in-flight ack
/// still matches.
struct PendingRegister {
    vn: VnId,
    eid: Eid,
    attempts: u32,
    next_retry: SimTime,
    /// Seed for the next decorrelated-jitter draw.
    prev_delay: SimDuration,
}

/// Counters a scenario can read back after the run.
#[derive(Clone, Copy, Default, Debug)]
pub struct EdgeStats {
    /// Packets handed to locally attached endpoints.
    pub delivered: u64,
    /// Egress policy drops.
    pub policy_drops: u64,
    /// Packets forwarded to the border on cache miss (default route).
    pub default_routed: u64,
    /// Packets forwarded onward for a moved endpoint (Fig. 5 step 3).
    pub mobility_forwards: u64,
    /// Packets dropped because the hop budget ran out (§5.2 transient
    /// loops).
    pub hop_exhausted: u64,
    /// Packets from unknown (unauthenticated) senders.
    pub unknown_source: u64,
    /// Packets dropped on cache miss with the border default route
    /// disabled (§3.2.2 ablation).
    pub first_packet_drops: u64,
    /// Map-Requests sent.
    pub map_requests: u64,
    /// SMRs sent (Fig. 6 step 2).
    pub smrs_sent: u64,
    /// Completed onboardings.
    pub onboarded: u64,
    /// ARP broadcasts converted to unicast (§3.5).
    pub arp_converted: u64,
    /// Map-Request retransmits (loss recovery).
    pub map_request_retries: u64,
    /// Map-Register retransmits.
    pub register_retries: u64,
    /// Resolutions abandoned after the attempt budget — evicted from
    /// the resolving set, never stuck.
    pub resolve_timeouts: u64,
    /// Retransmit delays drawn from the decorrelated-jitter schedule
    /// (instead of deterministic doubling).
    pub jittered_retries: u64,
    /// `ServerBusy` sheds honored: the pending entry was pushed out to
    /// the server's retry-after hint.
    pub server_busy_backoffs: u64,
    /// Punt→Map-Request sends suppressed by the negative cache
    /// (repeatedly-unresolvable EIDs).
    pub negative_cache_hits: u64,
    /// Oldest entries evicted from a full `resolving` map.
    pub resolve_evictions: u64,
    /// Oldest entries evicted from a full `pending_registers` map.
    pub register_evictions: u64,
}

/// The edge router.
pub struct EdgeRouter {
    /// Human-readable name used as a metrics prefix (`edgeA1` etc.).
    name: String,
    rloc: Rloc,
    dir: Rc<Directory>,
    /// This node's data plane: VRF, map-cache and ACL live inside.
    switch: Switch,
    smr: SmrTracker,
    pending_auth: HashMap<u64, PendingAttach>,
    /// Resolutions in flight: dedupes Map-Requests and drives the
    /// retransmit/timeout discipline. Ordered so the retry sweep is
    /// replay-deterministic.
    resolving: BTreeMap<(VnId, Eid), PendingResolve>,
    /// Unacked Map-Registers by nonce, retransmitted until the
    /// server's MapNotify ack.
    pending_registers: BTreeMap<u64, PendingRegister>,
    /// Negative cache: EIDs whose resolution repeatedly timed out, held
    /// until the stored instant so the punt funnel stops re-requesting
    /// them. Bounded by `max_resolving` with oldest-evict.
    unresolvable: BTreeMap<(VnId, Eid), SimTime>,
    /// High-water marks of the bounded retry maps (cap audits).
    resolving_peak: usize,
    pending_registers_peak: usize,
    /// Private decorrelated-jitter state, seeded from this edge's RLOC:
    /// deterministic per node and independent of the shared scenario
    /// RNG, so enabling jitter never perturbs other nodes' draws.
    jitter_state: u64,
    /// Whether the retransmit sweep timer is armed.
    retry_armed: bool,
    /// Non-volatile endpoint inventory (port config + cached auth):
    /// what the box re-detects on its ports after a reboot, used to
    /// re-attach and re-register everything on restart (§5.2).
    inventory: BTreeMap<MacAddr, (VnId, LocalEndpoint)>,
    /// Pending ARP conversions: (vn, ip) → requesting endpoint's MAC.
    pending_arp: HashMap<(VnId, std::net::Ipv4Addr), MacAddr>,
    next_txn: u64,
    next_nonce: u64,
    stats: EdgeStats,
    /// Underlay protocol instance (when dynamics are enabled).
    underlay: Option<LinkStateRouter>,
    reach: ReachabilityTracker,
    /// Fault injection: a failed edge ignores everything (no hellos,
    /// no forwarding) — the §5.1 outage.
    failed: bool,
    /// Reusable single-packet buffer (the simulator delivers one packet
    /// per event; the engine still runs its batch pipeline over it).
    buf: PacketBuf,
    /// Frame-composition scratch, reused across sends.
    frame_scratch: Vec<u8>,
    /// Punt-drain scratch, swap-cycled with the switch's queue.
    punt_scratch: Vec<Punt>,
}

/// Builds the engine configuration an edge runs with, from the
/// fabric-wide knobs.
fn edge_switch_config(rloc: Rloc, dir: &Directory) -> SwitchConfig {
    let mut cfg = SwitchConfig::new(rloc);
    cfg.border = Some(dir.border_rloc);
    cfg.miss_default_route = dir.params.border_default_route;
    cfg.default_action = dir.params.default_action;
    cfg.enforcement = dir.params.enforcement;
    cfg.hop_budget = dir.params.hop_budget;
    cfg
}

impl EdgeRouter {
    /// Creates an edge router serving `rloc`.
    pub fn new(name: impl Into<String>, rloc: Rloc, dir: Rc<Directory>) -> Self {
        let mut switch = Switch::new(edge_switch_config(rloc, &dir));
        install_dst_hints(&mut switch, &dir);
        EdgeRouter {
            name: name.into(),
            rloc,
            dir,
            switch,
            smr: SmrTracker::new(SimDuration::from_secs(5)),
            pending_auth: HashMap::new(),
            resolving: BTreeMap::new(),
            pending_registers: BTreeMap::new(),
            unresolvable: BTreeMap::new(),
            resolving_peak: 0,
            pending_registers_peak: 0,
            jitter_state: jitter_seed(rloc),
            retry_armed: false,
            inventory: BTreeMap::new(),
            pending_arp: HashMap::new(),
            next_txn: 1,
            next_nonce: 1,
            stats: EdgeStats::default(),
            underlay: None,
            reach: ReachabilityTracker::default(),
            failed: false,
            buf: PacketBuf::new(),
            frame_scratch: Vec::new(),
            punt_scratch: Vec::new(),
        }
    }

    /// Attaches an underlay protocol instance (dynamics mode).
    pub fn with_underlay(
        mut self,
        router: LinkStateRouter,
        watch: Vec<sda_types::RouterId>,
    ) -> Self {
        self.reach = ReachabilityTracker::new(watch);
        self.underlay = Some(router);
        self
    }

    /// This edge's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Scenario-facing counters.
    pub fn stats(&self) -> EdgeStats {
        self.stats
    }

    /// This node's data plane (read access for harnesses and the
    /// differential oracle).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Current overlay FIB size (map-cache entries).
    pub fn fib_len(&self) -> usize {
        self.switch.fib_len()
    }

    /// IPv4 overlay-to-underlay mappings only — the exact Fig. 9 metric
    /// ("we counted the number of overlay-to-underlay IPv4 mappings in
    /// the FIB").
    pub fn fib_len_v4(&self) -> usize {
        self.switch.map_cache().len_of(EidKind::V4)
    }

    /// Locally attached endpoints.
    pub fn attached(&self) -> usize {
        self.switch.tables().vrf().endpoint_count()
    }

    /// Resolutions currently in flight (convergence checks: must be 0
    /// once the fabric quiesces).
    pub fn resolving_len(&self) -> usize {
        self.resolving.len()
    }

    /// Unacknowledged Map-Registers (convergence checks).
    pub fn pending_register_len(&self) -> usize {
        self.pending_registers.len()
    }

    /// ACL state (for the §5.3 ablation).
    pub fn acl(&self) -> &sda_policy::CompiledAcl {
        self.switch.acl()
    }

    /// Simulates a reboot (§5.2): all volatile state is lost — the
    /// switch restarts with empty tables ("it will start with an empty
    /// FIB for the overlay entries"). Must be followed by endpoints
    /// re-attaching (the real box re-detects them on its ports).
    pub fn reboot(&mut self) {
        self.switch = Switch::new(*self.switch.config());
        install_dst_hints(&mut self.switch, &self.dir);
        self.pending_auth.clear();
        self.resolving.clear();
        self.pending_registers.clear();
        self.pending_arp.clear();
        self.unresolvable.clear();
        if let Some(ls) = self.underlay.take() {
            // Fresh protocol instance with the same wiring (empty LSDB,
            // sequence restart — the §5.2 recovery path).
            let id = ls.id();
            let links: Vec<(sda_types::RouterId, u32)> =
                self.reach.up_peers().map(|p| (p, 1)).collect();
            let _ = links;
            // Reconstruct from the directory's full fabric set.
            let all: Vec<(sda_types::RouterId, u32)> = self
                .dir
                .node_of_rloc
                .keys()
                .filter(|r| **r != self.rloc && **r != self.dir.routing_server_rloc)
                .map(|r| (underlay_id(*r), 1))
                .collect();
            self.underlay = Some(LinkStateRouter::new(id, all));
        }
    }

    /// Fault injection (§5.1): while failed, the edge processes nothing.
    pub fn set_failed(&mut self, failed: bool) {
        self.failed = failed;
    }

    /// Whether the edge is currently failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Arms the periodic timers; the controller calls this right after
    /// node creation via an injected kick (timers need a context).
    fn arm_timers(&self, ctx: &mut Context<'_, FabricMsg>) {
        let p = &self.dir.params;
        ctx.set_timer(p.eviction_interval, TIMER_EVICT);
        if let Some(interval) = p.fib_sample_interval {
            ctx.set_timer(interval, TIMER_FIB_SAMPLE);
        }
        if self.underlay.is_some() {
            ctx.set_timer(p.underlay_tick, TIMER_UNDERLAY);
        }
        if let Some(interval) = p.refresh_interval {
            ctx.set_timer(interval, TIMER_REFRESH);
        }
    }

    fn txn(&mut self) -> u64 {
        self.next_txn += 1;
        self.next_txn
    }

    fn nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce
    }

    fn node_of(&self, rloc: Rloc) -> NodeId {
        self.dir.node_of(rloc)
    }

    /// Exponential backoff after the `attempts`-th send, capped.
    fn backoff(&self, attempts: u32) -> SimDuration {
        let p = &self.dir.params;
        let mut d = p.rtx_initial;
        for _ in 1..attempts {
            d = d.saturating_mul(2);
            if d >= p.rtx_max_backoff {
                return p.rtx_max_backoff;
            }
        }
        d.min(p.rtx_max_backoff)
    }

    /// One step of this node's private xorshift64* stream.
    fn jitter_draw(&mut self) -> u64 {
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Decorrelated-jitter backoff: uniform in
    /// `[rtx_initial, min(3 × prev, rtx_max_backoff)]`. Consecutive
    /// draws decorrelate even nodes that started in lockstep (a mass
    /// reboot), so retry waves spread instead of arriving as one burst.
    fn jittered_backoff(&mut self, prev: SimDuration) -> SimDuration {
        let p = &self.dir.params;
        let base = p.rtx_initial.as_nanos();
        let cap = p.rtx_max_backoff.as_nanos().max(base);
        let hi = prev.as_nanos().saturating_mul(3).clamp(base, cap);
        let span = hi - base;
        let off = if span == 0 {
            0
        } else {
            self.jitter_draw() % (span + 1)
        };
        SimDuration::from_nanos(base + off)
    }

    /// The delay before the next retransmit of an entry whose last
    /// delay was `prev` and which has `attempts` sends behind it.
    fn retry_delay(&mut self, attempts: u32, prev: SimDuration) -> SimDuration {
        if self.dir.params.rtx_jitter {
            self.jittered_backoff(prev)
        } else {
            self.backoff(attempts)
        }
    }

    /// The delay before the *first* retransmit of a fresh entry.
    fn initial_retry_delay(&mut self) -> SimDuration {
        if self.dir.params.rtx_jitter {
            self.jittered_backoff(self.dir.params.rtx_initial)
        } else {
            self.dir.params.rtx_initial
        }
    }

    /// High-water mark of the `resolving` map (cap audits).
    pub fn resolving_peak(&self) -> usize {
        self.resolving_peak
    }

    /// High-water mark of the `pending_registers` map (cap audits).
    pub fn pending_registers_peak(&self) -> usize {
        self.pending_registers_peak
    }

    /// Arms the retransmit sweep if it is not already pending. Lossless
    /// runs answer everything before the first sweep, which then finds
    /// nothing pending and disarms itself.
    fn arm_retry(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        if !self.retry_armed {
            self.retry_armed = true;
            // Jitter the sweep phase too: a fixed period would re-batch
            // every node's retransmits onto the same grid instants no
            // matter how decorrelated the per-entry deadlines are.
            let mut d = self.dir.params.rtx_initial;
            if self.dir.params.rtx_jitter {
                let span = d.as_nanos() / 2;
                d = SimDuration::from_nanos(d.as_nanos() + self.jitter_draw() % (span + 1));
            }
            ctx.set_timer(d, TIMER_RETRY);
        }
    }

    /// The wait applied on a `ServerBusy` reply. The wire hint is a
    /// *floor* ("do not retransmit for at least this long"); jitter on
    /// top spreads the herd of simultaneously-shed senders, which would
    /// otherwise all come back in one synchronized wave and be shed
    /// again — the hint alone re-correlates exactly what the jittered
    /// backoff decorrelated.
    fn busy_hold(&mut self, hint: SimDuration) -> SimDuration {
        if !self.dir.params.rtx_jitter {
            return hint;
        }
        let extra = self.jitter_draw() % hint.as_nanos().max(1);
        SimDuration::from_nanos(hint.as_nanos() + extra)
    }

    fn send_map_request(&mut self, ctx: &mut Context<'_, FabricMsg>, vn: VnId, eid: Eid) {
        if self.resolving.contains_key(&(vn, eid)) {
            return; // already in flight
        }
        // Negative cache: a repeatedly-unresolvable EID is not re-asked
        // until its hold expires — the punt funnel stays bounded even
        // when traffic keeps hitting a dead destination.
        if let Some(&until) = self.unresolvable.get(&(vn, eid)) {
            if until > ctx.now() {
                self.stats.negative_cache_hits += 1;
                ctx.metrics().incr("fabric.negative_cache_hits");
                return;
            }
            self.unresolvable.remove(&(vn, eid));
        }
        // In-flight cap: evict the entry with the oldest deadline to
        // make room (it restarts from scratch if its packet returns).
        if self.resolving.len() >= self.dir.params.max_resolving {
            if let Some(oldest) = self
                .resolving
                .iter()
                .min_by_key(|(k, st)| (st.next_retry, **k))
                .map(|(k, _)| *k)
            {
                self.resolving.remove(&oldest);
                self.stats.resolve_evictions += 1;
                ctx.metrics().incr("fabric.resolve_evictions");
            }
        }
        let prev_delay = self.initial_retry_delay();
        let next_retry = ctx.now() + prev_delay;
        self.resolving.insert(
            (vn, eid),
            PendingResolve {
                attempts: 1,
                next_retry,
                prev_delay,
            },
        );
        self.resolving_peak = self.resolving_peak.max(self.resolving.len());
        let nonce = self.nonce();
        self.stats.map_requests += 1;
        ctx.metrics().incr("fabric.map_requests");
        ctx.send(
            self.dir.routing_server,
            FabricMsg::Control(Lisp::MapRequest {
                nonce,
                smr: false,
                vn,
                eid,
                itr_rloc: self.rloc,
            }),
        );
        self.arm_retry(ctx);
    }

    /// One pass of the retransmit sweep: resend due Map-Requests and
    /// Map-Registers with backoff, evict entries whose attempt budget
    /// is spent, and re-arm while anything is still pending.
    fn run_retries(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        let now = ctx.now();
        let max_attempts = self.dir.params.rtx_max_attempts;

        let due: Vec<(VnId, Eid)> = self
            .resolving
            .iter()
            .filter(|(_, st)| st.next_retry <= now)
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let (attempts, prev) = {
                let st = &self.resolving[&key];
                (st.attempts, st.prev_delay)
            };
            if attempts >= max_attempts {
                self.resolving.remove(&key);
                self.stats.resolve_timeouts += 1;
                ctx.metrics().incr("fabric.resolve_timeouts");
                // The server never answered across the whole attempt
                // budget: negative-cache the EID so fresh punts don't
                // immediately restart the same doomed resolution.
                let hold = self.dir.params.punt_negative_hold;
                if hold > SimDuration::ZERO {
                    if self.unresolvable.len() >= self.dir.params.max_resolving {
                        if let Some(oldest) = self
                            .unresolvable
                            .iter()
                            .min_by_key(|(k, t)| (**t, **k))
                            .map(|(k, _)| *k)
                        {
                            self.unresolvable.remove(&oldest);
                        }
                    }
                    self.unresolvable.insert(key, now + hold);
                }
                continue;
            }
            let delay = self.retry_delay(attempts + 1, prev);
            if let Some(st) = self.resolving.get_mut(&key) {
                st.attempts = attempts + 1;
                st.next_retry = now + delay;
                st.prev_delay = delay;
            }
            if self.dir.params.rtx_jitter {
                self.stats.jittered_retries += 1;
                ctx.metrics().incr("fabric.jittered_retries");
            }
            self.stats.map_request_retries += 1;
            ctx.metrics().incr("fabric.map_request_retries");
            let nonce = self.nonce();
            let (vn, eid) = key;
            ctx.send(
                self.dir.routing_server,
                FabricMsg::Control(Lisp::MapRequest {
                    nonce,
                    smr: false,
                    vn,
                    eid,
                    itr_rloc: self.rloc,
                }),
            );
        }

        let due_regs: Vec<u64> = self
            .pending_registers
            .iter()
            .filter(|(_, st)| st.next_retry <= now)
            .map(|(n, _)| *n)
            .collect();
        let ttl = self.dir.params.register_ttl_secs;
        for nonce in due_regs {
            let (vn, eid, attempts, prev) = {
                let st = &self.pending_registers[&nonce];
                (st.vn, st.eid, st.attempts, st.prev_delay)
            };
            if attempts >= max_attempts {
                // Give up for now; the periodic refresh re-registers.
                self.pending_registers.remove(&nonce);
                ctx.metrics().incr("fabric.register_timeouts");
                continue;
            }
            let delay = self.retry_delay(attempts + 1, prev);
            if let Some(st) = self.pending_registers.get_mut(&nonce) {
                st.attempts = attempts + 1;
                st.next_retry = now + delay;
                st.prev_delay = delay;
            }
            if self.dir.params.rtx_jitter {
                self.stats.jittered_retries += 1;
                ctx.metrics().incr("fabric.jittered_retries");
            }
            self.stats.register_retries += 1;
            ctx.metrics().incr("fabric.register_retries");
            ctx.send(
                self.dir.routing_server,
                FabricMsg::Control(Lisp::MapRegister {
                    nonce,
                    vn,
                    eid,
                    rloc: self.rloc,
                    ttl_secs: ttl,
                    want_notify: true,
                }),
            );
        }

        if !(self.resolving.is_empty() && self.pending_registers.is_empty()) {
            self.arm_retry(ctx);
        }
    }

    fn register_endpoint(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        vn: VnId,
        mac: MacAddr,
        ipv4: std::net::Ipv4Addr,
    ) {
        let ttl = self.dir.params.register_ttl_secs;
        let mut eids = vec![Eid::V4(ipv4)];
        if self.dir.params.register_mac {
            eids.push(Eid::Mac(mac));
        }
        for eid in eids {
            // If an earlier register for this EID is still unacked, the
            // retransmit sweep already owns it — don't pile up pendings.
            if self
                .pending_registers
                .values()
                .any(|p| p.vn == vn && p.eid == eid)
            {
                continue;
            }
            // Outstanding-register cap: evict the oldest-deadline entry;
            // the periodic refresh re-registers anything dropped here.
            if self.pending_registers.len() >= self.dir.params.max_pending_registers {
                if let Some(oldest) = self
                    .pending_registers
                    .iter()
                    .min_by_key(|(n, st)| (st.next_retry, **n))
                    .map(|(n, _)| *n)
                {
                    self.pending_registers.remove(&oldest);
                    self.stats.register_evictions += 1;
                    ctx.metrics().incr("fabric.register_evictions");
                }
            }
            let nonce = self.nonce();
            let prev_delay = self.initial_retry_delay();
            let next_retry = ctx.now() + prev_delay;
            self.pending_registers.insert(
                nonce,
                PendingRegister {
                    vn,
                    eid,
                    attempts: 1,
                    next_retry,
                    prev_delay,
                },
            );
            self.pending_registers_peak = self
                .pending_registers_peak
                .max(self.pending_registers.len());
            ctx.send(
                self.dir.routing_server,
                FabricMsg::Control(Lisp::MapRegister {
                    nonce,
                    vn,
                    eid,
                    rloc: self.rloc,
                    ttl_secs: ttl,
                    want_notify: true,
                }),
            );
        }
        self.arm_retry(ctx);
        // §3.5: the routing server also stores the IP→MAC pair.
        if self.dir.params.register_mac {
            ctx.send(
                self.dir.routing_server,
                FabricMsg::Arp(ArpMsg::Register { vn, ip: ipv4, mac }),
            );
        }
    }

    /// Periodic refresh: re-register every attached endpoint so live
    /// registrations never expire while the endpoint is present.
    fn refresh_registrations(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        let attached: Vec<(VnId, MacAddr, std::net::Ipv4Addr)> = self
            .switch
            .tables()
            .vrf()
            .iter()
            .map(|(vn, ep)| (vn, ep.mac, ep.ipv4))
            .collect();
        for (vn, mac, ipv4) in attached {
            self.register_endpoint(ctx, vn, mac, ipv4);
        }
    }

    fn handle_host_event(&mut self, ctx: &mut Context<'_, FabricMsg>, ev: HostEvent) {
        match ev {
            HostEvent::Attach {
                endpoint,
                port,
                vn: _,
            } => {
                // Fig. 3 step 1: authenticate against the policy server.
                let txn = self.txn();
                self.pending_auth.insert(
                    txn,
                    PendingAttach {
                        endpoint,
                        port,
                        started: ctx.now(),
                    },
                );
                ctx.send(
                    self.dir.policy_server,
                    FabricMsg::Policy(PolicyMsg::AuthRequest {
                        mac: endpoint.mac,
                        secret: endpoint.secret,
                        txn,
                    }),
                );
            }
            HostEvent::Detach { mac } => {
                self.inventory.remove(&mac);
                self.switch.detach(mac);
                // Deliberately no withdraw: mobility overwrites the
                // mapping when the endpoint re-registers elsewhere
                // (Fig. 5); a true offboard goes through the controller.
            }
            HostEvent::Send {
                src_mac,
                dst,
                payload_len,
                flow,
                track,
            } => {
                self.handle_endpoint_send(ctx, src_mac, dst, payload_len, flow, track);
            }
            HostEvent::ArpRequest { src_mac, target_ip } => {
                self.handle_arp_request(ctx, src_mac, target_ip);
            }
        }
    }

    fn handle_endpoint_send(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        src_mac: MacAddr,
        dst: Eid,
        payload_len: u16,
        flow: u64,
        track: bool,
    ) {
        // Host-side frame synthesis: the `Send` event stands for a real
        // frame the endpoint emits, so we need its bound IPv4 (the host
        // knows its own address; the event model doesn't carry it). The
        // engine re-classifies and enforces the binding itself.
        let Some(src_ipv4) = self
            .switch
            .tables()
            .vrf()
            .classify(src_mac)
            .map(|(_, ep)| ep.ipv4)
        else {
            self.stats.unknown_source += 1;
            return;
        };
        if !pipeline::compose_host_frame(
            &mut self.frame_scratch,
            src_mac,
            src_ipv4,
            dst,
            payload_len,
            flow,
            track,
        ) {
            // No byte form (IPv6 EID) — documented simplification.
            ctx.metrics().incr("fabric.unencodable_sends");
            return;
        }
        assert!(self.buf.load(&self.frame_scratch));

        let before = self.switch.stats();
        let verdict = self
            .switch
            .process_ingress(std::slice::from_mut(&mut self.buf), ctx.now())[0];
        match verdict {
            Verdict::Deliver { .. } => {
                self.stats.delivered += 1;
                self.record_delivery(ctx);
            }
            Verdict::Forward { to } => {
                if was_default_route(&before, &self.switch.stats()) {
                    self.stats.default_routed += 1;
                }
                ctx.metrics()
                    .add("fabric.overlay_bytes", u64::from(payload_len));
                let node = self.node_of(to);
                ctx.send(node, FabricMsg::Data(self.buf.bytes().to_vec()));
            }
            Verdict::Drop(sda_dataplane::DropReason::Policy) => {
                self.stats.policy_drops += 1;
            }
            Verdict::Drop(sda_dataplane::DropReason::NoRoute) => {
                // Ablation: no border sync — the first packets of a
                // flow are lost while the resolution completes.
                self.stats.first_packet_drops += 1;
                ctx.metrics().incr("fabric.first_packet_drops");
            }
            Verdict::Drop(_) => {
                self.stats.unknown_source += 1;
            }
            Verdict::DeliverExternal => {
                debug_assert!(false, "edges hold no external routes");
            }
        }
        self.service_punts(ctx);
    }

    fn handle_arp_request(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        src_mac: MacAddr,
        target_ip: std::net::Ipv4Addr,
    ) {
        let Some((vn, _)) = self.switch.tables().vrf().classify(src_mac) else {
            self.stats.unknown_source += 1;
            return;
        };
        // Local answer: target attached to this same edge.
        if let Some(ep) = self.switch.tables().vrf().lookup(vn, Eid::V4(target_ip)) {
            let _ = ep;
            self.stats.arp_converted += 1;
            ctx.metrics().incr("fabric.arp_local_answers");
            return;
        }
        // §3.5: the L2 gateway absorbs the broadcast and asks the
        // routing server for the owning MAC.
        self.pending_arp.insert((vn, target_ip), src_mac);
        ctx.send(
            self.dir.routing_server,
            FabricMsg::Arp(ArpMsg::Query {
                vn,
                ip: target_ip,
                reply_to: self.rloc,
            }),
        );
    }

    fn handle_arp_answer(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        vn: VnId,
        ip: std::net::Ipv4Addr,
        mac: Option<MacAddr>,
    ) {
        let Some(requester) = self.pending_arp.remove(&(vn, ip)) else {
            return;
        };
        let Some(mac) = mac else {
            ctx.metrics().incr("fabric.arp_unresolved");
            return;
        };
        // Broadcast became unicast: forward the (now unicast) ARP
        // request as an L2 overlay packet toward the owner MAC; the
        // owning edge delivers it and the target replies over the same
        // machinery. Delivery itself reuses the normal send path.
        self.stats.arp_converted += 1;
        ctx.metrics().incr("fabric.arp_converted");
        self.handle_endpoint_send(ctx, requester, Eid::Mac(mac), 28, 0, false);
    }

    /// Decap + egress processing for fabric traffic arriving from the
    /// underlay — the engine's egress pipeline on the received bytes.
    /// Local deliveries are rewritten in place; traffic for departed
    /// endpoints is re-forwarded toward the cached location (Fig. 6) or
    /// rides the border default route (§5.2 reboot recovery), with the
    /// Fig. 6 SMR raised through the punt queue.
    fn handle_data(&mut self, ctx: &mut Context<'_, FabricMsg>, bytes: &[u8]) {
        if !self.buf.load(bytes) {
            debug_assert!(false, "fabric data exceeds MAX_FRAME");
            return;
        }
        let before = self.switch.stats();
        let verdict = self
            .switch
            .process_egress(std::slice::from_mut(&mut self.buf), ctx.now())[0];
        match verdict {
            Verdict::Deliver { .. } => {
                self.stats.delivered += 1;
                self.record_delivery(ctx);
            }
            Verdict::Drop(sda_dataplane::DropReason::Policy) => {
                self.stats.policy_drops += 1;
                ctx.metrics().incr(&format!("acl.drops.{}", self.name));
            }
            Verdict::Drop(sda_dataplane::DropReason::TtlExpired) => {
                // §5.2: the hop budget damped a transient loop.
                self.stats.hop_exhausted += 1;
                ctx.metrics().incr("fabric.hop_exhausted");
            }
            Verdict::Forward { to } => {
                if was_default_route(&before, &self.switch.stats()) {
                    // Unknown here entirely (e.g. freshly rebooted,
                    // §5.2): the engine fell back to the default route.
                    self.stats.default_routed += 1;
                } else {
                    // Fig. 6 step 3: forwarded onward to the moved
                    // endpoint's current location.
                    self.stats.mobility_forwards += 1;
                }
                let node = self.node_of(to);
                ctx.send(node, FabricMsg::Data(self.buf.bytes().to_vec()));
            }
            Verdict::Drop(_) => {
                debug_assert!(false, "unexpected fabric data drop: {verdict:?}");
            }
            Verdict::DeliverExternal => {
                debug_assert!(false, "edges hold no external routes");
            }
        }
        self.service_punts(ctx);
    }

    /// Drains the switch's punt queue and runs the control plane over
    /// it: Map-Requests are deduplicated through the `resolving` set,
    /// data-triggered SMRs (Fig. 6 step 2) are rate-limited per
    /// `(eid, source)` and never aimed at ourselves or the border
    /// (default-routed traffic does not imply a stale sender).
    fn service_punts(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        self.switch.drain_punts_into(&mut self.punt_scratch);
        let punts = std::mem::take(&mut self.punt_scratch);
        for &punt in &punts {
            match punt {
                Punt::MapRequest { vn, eid, .. } => self.send_map_request(ctx, vn, eid),
                Punt::Smr { to, vn, eid } => {
                    let now = ctx.now();
                    if to != self.rloc
                        && to != self.dir.border_rloc
                        && self.smr.should_send(vn, eid, to, now)
                    {
                        self.stats.smrs_sent += 1;
                        ctx.metrics().incr("fabric.smrs");
                        let nonce = self.nonce();
                        let node = self.node_of(to);
                        ctx.send(
                            node,
                            FabricMsg::Control(Lisp::MapRequest {
                                nonce,
                                smr: true,
                                vn,
                                eid,
                                itr_rloc: self.rloc,
                            }),
                        );
                    }
                }
            }
        }
        self.punt_scratch = punts;
    }

    /// Records a delivery the switch just made (the delivered frame is
    /// still in `self.buf`, carrying the measurement meta).
    fn record_delivery(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        ctx.metrics().incr("fabric.delivered");
        if let Some(d) = pipeline::parse_delivered_frame(self.buf.bytes()) {
            if d.track {
                let name = format!("deliver.{}", d.dst);
                let now = ctx.now();
                ctx.metrics().record(&name, now, d.flow as f64);
            }
        }
    }

    fn handle_control(&mut self, ctx: &mut Context<'_, FabricMsg>, msg: Lisp) {
        let now = ctx.now();
        match msg {
            Lisp::MapReply {
                vn,
                prefix,
                rloc,
                negative,
                ttl_secs,
                ..
            } => {
                if let Some(eid0) = prefix_eid(&prefix) {
                    self.resolving.remove(&(vn, eid0));
                    // An answer (even a negative one) supersedes any
                    // negative-cache hold: the server is reachable again.
                    self.unresolvable.remove(&(vn, eid0));
                }
                if negative {
                    self.switch.apply_negative(vn, prefix);
                } else if let Some(rloc) = rloc {
                    self.switch.install_mapping(
                        vn,
                        prefix,
                        rloc,
                        SimDuration::from_secs(u64::from(ttl_secs)),
                        now,
                    );
                }
            }
            Lisp::MapNotify {
                nonce,
                vn,
                eid,
                new_rloc,
            } => {
                if nonce != 0 {
                    // Register ack: the server echoes our nonce (moves
                    // always carry nonce 0). Settle the pending entry;
                    // installing would self-map the endpoint.
                    self.pending_registers.remove(&nonce);
                } else {
                    // Fig. 5 step 2–3: the moved endpoint's new location.
                    // Install it so in-flight traffic forwards onward.
                    self.switch.update_mapping(
                        vn,
                        eid,
                        new_rloc,
                        SimDuration::from_secs(u64::from(sda_lisp::map_server::REPLY_TTL_SECS)),
                        now,
                    );
                    self.smr.forget_eid(vn, eid);
                }
            }
            Lisp::MapRequest {
                smr: true, vn, eid, ..
            } => {
                // An SMR: our cached mapping is stale. Mark and
                // re-resolve (Fig. 6 step 4).
                self.switch.receive_smr(vn, eid, now);
                self.send_map_request(ctx, vn, eid);
            }
            Lisp::ServerBusy {
                nonce,
                vn,
                eid,
                class,
                retry_after_ms,
            } => {
                // Shed-load reply: our message was dropped unprocessed.
                // Honor the server's retry-after hint instead of our own
                // (possibly much shorter) backoff — collapsing the
                // retransmit storm is the whole point of the hint.
                let hold = self.busy_hold(SimDuration::from_millis(u64::from(retry_after_ms)));
                match class {
                    BusyClass::Request => {
                        if let Some(st) = self.resolving.get_mut(&(vn, eid)) {
                            st.next_retry = now + hold;
                            st.prev_delay = hold;
                            self.stats.server_busy_backoffs += 1;
                            ctx.metrics().incr("fabric.server_busy_backoffs");
                        }
                    }
                    BusyClass::Register => {
                        if let Some(st) = self.pending_registers.get_mut(&nonce) {
                            st.next_retry = now + hold;
                            st.prev_delay = hold;
                            self.stats.server_busy_backoffs += 1;
                            ctx.metrics().incr("fabric.server_busy_backoffs");
                        }
                    }
                    // Subscribe churn is border business; an edge should
                    // never see it, but shed replies are best-effort.
                    BusyClass::Subscribe => {}
                }
                self.arm_retry(ctx);
            }
            other => {
                debug_assert!(false, "edge received unexpected control {other:?}");
            }
        }
    }

    fn handle_policy(&mut self, ctx: &mut Context<'_, FabricMsg>, msg: PolicyMsg) {
        match msg {
            PolicyMsg::AuthAccept {
                txn,
                mac,
                profile,
                rules,
            } => {
                let Some(pending) = self.pending_auth.remove(&txn) else {
                    return;
                };
                debug_assert_eq!(pending.endpoint.mac, mac);
                // Fig. 3 steps 2–4: install binding, rules, register.
                self.switch.install_rules(&rules);
                let ep = LocalEndpoint {
                    port: pending.port,
                    group: profile.group,
                    mac,
                    ipv4: pending.endpoint.ipv4,
                };
                self.inventory.insert(mac, (profile.vn, ep));
                self.switch.attach(profile.vn, ep);
                self.register_endpoint(ctx, profile.vn, mac, pending.endpoint.ipv4);
                self.stats.onboarded += 1;
                let latency = ctx.now().since(pending.started);
                ctx.metrics()
                    .observe("fabric.onboarding_secs", latency.as_secs_f64());
                let name = format!("onboard.{}", mac);
                let now = ctx.now();
                ctx.metrics().record(&name, now, 1.0);
            }
            PolicyMsg::AuthReject { txn, .. } => {
                self.pending_auth.remove(&txn);
                ctx.metrics().incr("fabric.auth_rejects");
            }
            PolicyMsg::RuleRefresh { rules } => {
                self.switch.replace_rules(&rules);
            }
            other => {
                debug_assert!(false, "edge received server-side policy msg {other:?}");
            }
        }
    }

    fn handle_underlay(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        msg: sda_underlay::Message,
        from: NodeId,
    ) {
        let Some(ls) = self.underlay.as_mut() else {
            return;
        };
        // Map the sender node back to a RouterId via the directory's
        // rloc table (fabric routers are their own underlay routers).
        let from_router = self
            .dir
            .node_of_rloc
            .iter()
            .find(|(_, n)| **n == from)
            .map(|(r, _)| underlay_id(*r));
        let Some(from_router) = from_router else {
            return;
        };
        let out = ls.handle(from_router, msg, ctx.now());
        self.flush_underlay(ctx, out);
        self.apply_reachability(ctx);
    }

    fn flush_underlay(
        &mut self,
        ctx: &mut Context<'_, FabricMsg>,
        out: Vec<(sda_types::RouterId, sda_underlay::Message)>,
    ) {
        for (to, msg) in out {
            let rloc = rloc_of_underlay(to);
            if let Some(node) = self.dir.node_of_rloc.get(&rloc) {
                ctx.send(*node, FabricMsg::Underlay(msg));
            }
        }
    }

    fn apply_reachability(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        let Some(ls) = self.underlay.as_ref() else {
            return;
        };
        let table = ls.routes();
        for event in self.reach.update(&table) {
            if let ReachabilityEvent::Down(router) = event {
                // §5.1: delete routes through the lost RLOC; traffic
                // falls back to the border default route.
                let purged = self.switch.purge_rloc(rloc_of_underlay(router));
                ctx.metrics()
                    .add("fabric.reachability_purges", purged as u64);
            }
        }
    }
}

/// Whether the engine call between the two stat snapshots rode the
/// border default route (a miss), as opposed to a cache-directed
/// forward. One packet is processed per call, so the delta is 0 or 1.
pub(crate) fn was_default_route(before: &SwitchStats, after: &SwitchStats) -> bool {
    after.forwarded_default > before.forwarded_default
}

/// Installs the §5.3 destination-group oracle into a switch's hint
/// table (ingress-enforcement ablation only; a no-op under egress
/// enforcement, where the engine never consults hints).
pub(crate) fn install_dst_hints(switch: &mut Switch, dir: &Directory) {
    if matches!(dir.params.enforcement, EnforcementPoint::Ingress) {
        for (&(vn, eid), &group) in &dir.params.dst_groups {
            switch.install_dst_hint(vn, eid, group);
        }
    }
}

/// Splitmix64 of the RLOC address: a well-mixed, per-node-deterministic
/// seed for the private retransmit-jitter stream (never zero, which
/// would wedge xorshift).
pub(crate) fn jitter_seed(rloc: Rloc) -> u64 {
    let mut z = u64::from(u32::from(rloc.addr())).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z | 1
}

/// Fabric routers use their RLOC's host octets as underlay RouterId.
pub(crate) fn underlay_id(rloc: Rloc) -> sda_types::RouterId {
    let o = rloc.addr().octets();
    sda_types::RouterId(u32::from(o[2]) << 8 | u32::from(o[3]))
}

/// Inverse of [`underlay_id`].
pub(crate) fn rloc_of_underlay(id: sda_types::RouterId) -> Rloc {
    Rloc::for_router_index(id.0 as u16)
}

/// The representative EID of a host prefix (for resolution bookkeeping).
fn prefix_eid(prefix: &sda_types::EidPrefix) -> Option<Eid> {
    use sda_types::EidPrefix;
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

impl Node<FabricMsg> for EdgeRouter {
    fn on_message(&mut self, ctx: &mut Context<'_, FabricMsg>, from: NodeId, msg: FabricMsg) {
        if self.failed {
            ctx.metrics().incr("fabric.dropped_by_failed_edge");
            return;
        }
        match msg {
            FabricMsg::Host(ev) => self.handle_host_event(ctx, ev),
            FabricMsg::Data(bytes) => {
                ctx.busy(self.dir.params.data_service);
                self.handle_data(ctx, &bytes);
            }
            FabricMsg::Control(m) => {
                ctx.busy(self.dir.params.edge_control_service);
                self.handle_control(ctx, m);
            }
            FabricMsg::Policy(m) => self.handle_policy(ctx, m),
            FabricMsg::Arp(ArpMsg::Answer { vn, ip, mac }) => {
                self.handle_arp_answer(ctx, vn, ip, mac);
            }
            FabricMsg::Arp(_) => {}
            FabricMsg::Underlay(m) => self.handle_underlay(ctx, m, from),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FabricMsg>, token: u64) {
        if self.failed {
            // Keep timers armed so a revived edge resumes housekeeping.
            let p = &self.dir.params;
            match token {
                TIMER_EVICT => ctx.set_timer(p.eviction_interval, TIMER_EVICT),
                TIMER_UNDERLAY => ctx.set_timer(p.underlay_tick, TIMER_UNDERLAY),
                TIMER_REFRESH => {
                    if let Some(i) = p.refresh_interval {
                        ctx.set_timer(i, TIMER_REFRESH);
                    }
                }
                TIMER_FIB_SAMPLE => {
                    if let Some(i) = p.fib_sample_interval {
                        ctx.set_timer(i, TIMER_FIB_SAMPLE);
                    }
                }
                // Retransmit state is volatile: a crashed box isn't
                // retrying anything. Restart re-registers from the
                // inventory and re-arms on demand.
                TIMER_RETRY => self.retry_armed = false,
                _ => {}
            }
            return;
        }
        match token {
            TIMER_EVICT => {
                let evicted = self
                    .switch
                    .evict_expired(ctx.now(), self.dir.params.idle_timeout);
                ctx.metrics().add("fabric.cache_evictions", evicted as u64);
                ctx.set_timer(self.dir.params.eviction_interval, TIMER_EVICT);
            }
            TIMER_FIB_SAMPLE => {
                let name = format!("fib.{}", self.name);
                let now = ctx.now();
                ctx.metrics().record(&name, now, self.fib_len_v4() as f64);
                if let Some(interval) = self.dir.params.fib_sample_interval {
                    ctx.set_timer(interval, TIMER_FIB_SAMPLE);
                }
            }
            TIMER_UNDERLAY => {
                if let Some(ls) = self.underlay.as_mut() {
                    let out = ls.tick(ctx.now());
                    self.flush_underlay(ctx, out);
                    self.apply_reachability(ctx);
                    ctx.set_timer(self.dir.params.underlay_tick, TIMER_UNDERLAY);
                }
            }
            TIMER_REFRESH => {
                self.refresh_registrations(ctx);
                if let Some(interval) = self.dir.params.refresh_interval {
                    ctx.set_timer(interval, TIMER_REFRESH);
                }
            }
            TIMER_RETRY => {
                self.retry_armed = false;
                self.run_retries(ctx);
            }
            // Token 0 is the controller's arming kick.
            0 => self.arm_timers(ctx),
            _ => {}
        }
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, FabricMsg>, fault: FaultEvent) {
        match fault {
            FaultEvent::Crash => {
                self.failed = true;
            }
            FaultEvent::Restart => {
                self.failed = false;
                self.reboot();
                ctx.metrics().incr("fabric.edge_restarts");
                // §5.2 recovery: the endpoint inventory (port config +
                // cached auth) survives the reboot — re-attach it, then
                // re-register every endpoint and re-fetch the group
                // rules the attached population needs.
                let inventory: Vec<(VnId, LocalEndpoint)> =
                    self.inventory.values().copied().collect();
                let mut local: Vec<(VnId, GroupId)> =
                    inventory.iter().map(|(vn, ep)| (*vn, ep.group)).collect();
                local.sort_unstable();
                local.dedup();
                for (vn, ep) in inventory {
                    self.switch.attach(vn, ep);
                    self.register_endpoint(ctx, vn, ep.mac, ep.ipv4);
                }
                if !local.is_empty() {
                    ctx.send(
                        self.dir.policy_server,
                        FabricMsg::Policy(PolicyMsg::RuleRefreshRequest { local }),
                    );
                }
            }
            // Shard-scoped faults target the routing server, not edges.
            _ => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
