//! Per-VN local endpoint tables — re-exported from
//! [`sda_dataplane::vrf`].
//!
//! The VRF moved down into the forwarding engine crate when the batched
//! data plane landed: `sda_dataplane::Switch` owns a `VrfTable` directly,
//! and the router nodes here share the same type. This module keeps the
//! historical `sda_core::vrf` paths alive.

pub use sda_dataplane::vrf::{LocalEndpoint, VrfTable};
