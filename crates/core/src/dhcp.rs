//! Overlay address allocation (Fig. 3 step 3).
//!
//! The paper's onboarding obtains the overlay IP from a DHCP server.
//! Scenarios mint endpoint identities ahead of time through this
//! allocator so addresses are unique per VN and deterministic.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use sda_types::{Ipv4Prefix, VnId};

/// A per-VN IPv4 pool allocator.
#[derive(Debug)]
pub struct DhcpPool {
    /// Per-VN: (subnet, next host index).
    pools: BTreeMap<VnId, (Ipv4Prefix, u32)>,
}

impl DhcpPool {
    /// Creates an allocator with no pools.
    pub fn new() -> Self {
        DhcpPool {
            pools: BTreeMap::new(),
        }
    }

    /// Declares the overlay subnet of `vn`.
    ///
    /// # Panics
    /// Panics if the prefix is longer than /30 (no allocatable hosts).
    pub fn add_pool(&mut self, vn: VnId, subnet: Ipv4Prefix) {
        assert!(subnet.len() <= 30, "subnet too small to allocate from");
        self.pools.insert(vn, (subnet, 1));
    }

    /// Allocates the next address in `vn`'s pool.
    /// Returns `None` when the pool is unknown or exhausted.
    pub fn allocate(&mut self, vn: VnId) -> Option<Ipv4Addr> {
        let (subnet, next) = self.pools.get_mut(&vn)?;
        let host_bits = 32 - subnet.len();
        let capacity = (1u64 << host_bits) - 2; // network + broadcast
        if u64::from(*next) > capacity {
            return None;
        }
        let base = u32::from(subnet.addr());
        let addr = Ipv4Addr::from(base + *next);
        *next += 1;
        Some(addr)
    }

    /// Addresses handed out so far in `vn`.
    pub fn allocated(&self, vn: VnId) -> u32 {
        self.pools.get(&vn).map(|(_, n)| n - 1).unwrap_or(0)
    }

    /// The subnet of `vn`, if declared.
    pub fn subnet(&self, vn: VnId) -> Option<Ipv4Prefix> {
        self.pools.get(&vn).map(|(s, _)| *s)
    }
}

impl Default for DhcpPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    #[test]
    fn sequential_unique_allocation() {
        let mut d = DhcpPool::new();
        d.add_pool(
            vn(1),
            Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap(),
        );
        let a = d.allocate(vn(1)).unwrap();
        let b = d.allocate(vn(1)).unwrap();
        assert_eq!(a, Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(b, Ipv4Addr::new(10, 1, 0, 2));
        assert_eq!(d.allocated(vn(1)), 2);
    }

    #[test]
    fn per_vn_pools_independent() {
        let mut d = DhcpPool::new();
        d.add_pool(
            vn(1),
            Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap(),
        );
        d.add_pool(
            vn(2),
            Ipv4Prefix::new(Ipv4Addr::new(10, 2, 0, 0), 16).unwrap(),
        );
        assert_eq!(d.allocate(vn(1)).unwrap(), Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(d.allocate(vn(2)).unwrap(), Ipv4Addr::new(10, 2, 0, 1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut d = DhcpPool::new();
        d.add_pool(
            vn(1),
            Ipv4Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 30).unwrap(),
        );
        assert!(d.allocate(vn(1)).is_some());
        assert!(d.allocate(vn(1)).is_some());
        assert!(d.allocate(vn(1)).is_none(), "/30 has 2 usable hosts");
    }

    #[test]
    fn unknown_vn_returns_none() {
        let mut d = DhcpPool::new();
        assert!(d.allocate(vn(9)).is_none());
        assert_eq!(d.allocated(vn(9)), 0);
        assert!(d.subnet(vn(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_subnet_panics() {
        let mut d = DhcpPool::new();
        d.add_pool(
            vn(1),
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 31).unwrap(),
        );
    }
}
