//! # sda-core
//!
//! The paper's primary contribution assembled: edge and border routers,
//! the two-stage ingress/egress pipelines, host onboarding, mobility,
//! L2 services and the fabric controller that wires everything onto the
//! simulator.
//!
//! ## Architecture (Fig. 1)
//!
//! ```text
//!            ┌─────────────┐   ┌──────────────┐
//!            │policy server│   │routing server│   control plane
//!            └──────┬──────┘   └──────┬───────┘
//!        RADIUS/SXP │       LISP      │   ▲ sync (pub/sub)
//!            ┌──────┴─────────────────┴───┴───┐
//!            │            underlay            │
//!            └─┬─────────┬─────────┬──────────┘
//!          ┌───┴──┐  ┌───┴──┐  ┌───┴───┐
//!          │edge 1│  │edge 2│  │border │ ──► Internet
//!          └──────┘  └──────┘  └───────┘
//!           endpoints roam across edges
//! ```
//!
//! * [`msg`] — the fabric's simulator message type (data packets,
//!   LISP control, policy exchanges, host events, underlay protocol).
//! * [`vrf`] — per-VN local endpoint tables with the `(Overlay IP,
//!   GroupId)` association the egress pipeline reads (§3.3.2).
//! * [`acl`] — group-based ACL with hit/drop counters (Fig. 12's data).
//! * [`pipeline`] — the ingress and egress stages as pure decision
//!   functions, plus byte-level encap/decap proving the structured path
//!   and `sda-wire` agree.
//! * [`edge`] — the edge router node: onboarding (Fig. 3), reactive
//!   resolution, mobility (Figs. 5–6), SMR, reboot recovery, underlay
//!   fallback.
//! * [`border`] — the border router: pub/sub-synced full table, default-
//!   route target, external prefixes.
//! * [`servers`] — policy-server and routing-server simulator nodes
//!   wrapping `sda-policy` / `sda-lisp`.
//! * [`dhcp`] — overlay address allocation per VN.
//! * [`controller`] — the declarative operator API (§3.1) and scenario
//!   builder producing a runnable [`controller::Fabric`].
//! * [`chaos`] — post-fault convergence checking: compares server
//!   database, border subscriber views and edge caches against an
//!   expected endpoint placement after a chaos run.

pub mod acl;
pub mod border;
pub mod chaos;
pub mod controller;
pub mod dhcp;
pub mod edge;
pub mod msg;
pub mod pipeline;
pub mod servers;
pub mod vrf;

pub use acl::GroupAcl;
pub use chaos::{check_convergence, ConvergenceReport, ExpectedPlacement};
pub use controller::{Fabric, FabricBuilder, FabricConfig};
// Overload-hardening knobs, re-exported so scenario crates can set
// `FabricConfig::admission` without depending on `sda-ctrl` directly.
pub use msg::{EndpointIdentity, FabricMsg, HostEvent, InnerPacket, OverlayPacket, PolicyMsg};
pub use pipeline::EnforcementPoint;
pub use sda_ctrl::{AdmissionConfig, ClassBudget};
pub use vrf::VrfTable;
