//! Ethernet II framing.
//!
//! ```text
//!  0                   6                  12      14
//! +-------------------+-------------------+-------+----------
//! |  destination MAC  |    source MAC     | type  | payload…
//! +-------------------+-------------------+-------+----------
//! ```

use sda_types::MacAddr;

use crate::field::{self, Field, Rest};
use crate::{Error, Result};

/// EtherType values the fabric cares about.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Anything else, preserved verbatim.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Unknown(raw) => raw,
        }
    }
}

mod layout {
    use super::{Field, Rest};
    pub const DST: Field = 0..6;
    pub const SRC: Field = 6..12;
    pub const ETHERTYPE: Field = 12..14;
    pub const PAYLOAD: Rest = 14..;
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = layout::PAYLOAD.start;

/// A read/write view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Frame { buffer }
    }

    /// Wraps a buffer, checking it can hold at least the fixed header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut m = [0u8; 6];
        m.copy_from_slice(&d[layout::DST]);
        MacAddr(m)
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut m = [0u8; 6];
        m.copy_from_slice(&d[layout::SRC]);
        MacAddr(m)
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        field::get_u16(self.buffer.as_ref(), layout::ETHERTYPE).into()
    }

    /// Payload bytes following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[layout::PAYLOAD]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[layout::DST].copy_from_slice(&addr.octets());
    }

    /// Sets the source MAC address.
    pub fn set_src_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[layout::SRC].copy_from_slice(&addr.octets());
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, t: EtherType) {
        field::set_u16(self.buffer.as_mut(), layout::ETHERTYPE, t.into());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[layout::PAYLOAD]
    }
}

/// Parsed representation of an Ethernet header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parses the header out of a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Repr {
        Repr {
            dst: frame.dst_addr(),
            src: frame.src_addr(),
            ethertype: frame.ethertype(),
        }
    }

    /// Header length this representation emits.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emits the header into a frame view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_dst_addr(self.dst);
        frame.set_src_addr(self.src);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let mut buf = vec![0u8; repr.buffer_len() + 4];
        let mut frame = Frame::new_checked(&mut buf[..]).unwrap();
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&[0xAA; 4]);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&frame), repr);
        assert_eq!(frame.payload(), &[0xAA; 4]);
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(Frame::new_checked(&[0u8; 13][..]).is_err());
        assert!(Frame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn ethertype_mapping_roundtrips() {
        for t in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Unknown(0x1234),
        ] {
            assert_eq!(EtherType::from(u16::from(t)), t);
        }
    }
}
