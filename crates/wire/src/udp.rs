//! UDP headers (RFC 768).
//!
//! Both planes of the fabric ride UDP: VXLAN-GPO data packets on port
//! [`VXLAN_PORT`], LISP control messages on port [`LISP_CONTROL_PORT`].
//! The checksum is computed over the IPv4 pseudo-header; a zero checksum
//! (legal for UDP over IPv4) is accepted on parse.

use std::net::Ipv4Addr;

use crate::field::{self, Field, Rest};
use crate::{ones_complement_sum, Error, Result};

/// IANA-assigned VXLAN destination port.
pub const VXLAN_PORT: u16 = 4789;

/// IANA-assigned LISP control-plane port.
pub const LISP_CONTROL_PORT: u16 = 4342;

mod layout {
    use super::{Field, Rest};
    pub const SRC_PORT: Field = 0..2;
    pub const DST_PORT: Field = 2..4;
    pub const LENGTH: Field = 4..6;
    pub const CHECKSUM: Field = 6..8;
    pub const PAYLOAD: Rest = 8..;
}

/// Length of the UDP header.
pub const HEADER_LEN: usize = layout::PAYLOAD.start;

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wraps and validates the length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Packet { buffer };
        let l = p.len() as usize;
        if l < HEADER_LEN || l > len {
            return Err(Error::BadLength);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::DST_PORT)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::LENGTH)
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 = not computed).
    pub fn checksum(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::CHECKSUM)
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        let end = self.len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..end]
    }

    /// Verifies the checksum against the IPv4 pseudo-header.
    /// A zero checksum field is accepted (checksum disabled).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        pseudo_header_checksum(src, dst, &self.buffer.as_ref()[..self.len() as usize]) == 0xffff
            || pseudo_header_checksum(src, dst, &self.buffer.as_ref()[..self.len() as usize]) == 0
    }
}

/// One's-complement sum of the IPv4 pseudo-header plus the datagram.
fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.octets());
    pseudo[4..8].copy_from_slice(&dst.octets());
    pseudo[9] = 17; // UDP
    pseudo[10..12].copy_from_slice(&(datagram.len() as u16).to_be_bytes());
    let partial = ones_complement_sum(&pseudo, 0);
    ones_complement_sum(datagram, u32::from(partial))
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        field::set_u16(self.buffer.as_mut(), layout::SRC_PORT, p);
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        field::set_u16(self.buffer.as_mut(), layout::DST_PORT, p);
    }

    /// Sets the length field.
    pub fn set_len(&mut self, l: u16) {
        field::set_u16(self.buffer.as_mut(), layout::LENGTH, l);
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = self.len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..end]
    }

    /// Computes and writes the checksum over the IPv4 pseudo-header.
    /// Writes `0xffff` if the computed sum is zero, per RFC 768.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        field::set_u16(self.buffer.as_mut(), layout::CHECKSUM, 0);
        let len = self.len() as usize;
        let sum = !pseudo_header_checksum(src, dst, &self.buffer.as_ref()[..len]);
        let sum = if sum == 0 { 0xffff } else { sum };
        field::set_u16(self.buffer.as_mut(), layout::CHECKSUM, sum);
    }
}

/// Parsed representation of a UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload byte length.
    pub payload_len: usize,
}

impl Repr {
    /// Parses a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload_len: packet.len() as usize - HEADER_LEN,
        }
    }

    /// Bytes needed to emit header + payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header; checksum is filled from the pseudo-header
    /// addresses *after* the payload is written, via `fill_checksum`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len(self.buffer_len() as u16);
        field::set_u16(packet.buffer.as_mut(), layout::CHECKSUM, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip_with_checksum() {
        let repr = Repr {
            src_port: 4342,
            dst_port: 4342,
            payload_len: 3,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(b"abc");
        pkt.fill_checksum(SRC, DST);
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&pkt), repr);
        assert!(pkt.verify_checksum(SRC, DST));
        assert_eq!(pkt.payload(), b"abc");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&[9, 9, 9, 9]);
        pkt.fill_checksum(SRC, DST);
        buf[9] ^= 0xff;
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.checksum(), 0);
        assert!(pkt.verify_checksum(SRC, DST));
        assert!(pkt.is_empty());
    }

    #[test]
    fn length_field_validated() {
        let mut buf = [0u8; 8];
        field::set_u16(&mut buf, 4..6, 4); // length < header
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::BadLength);
        field::set_u16(&mut buf, 4..6, 20); // length > buffer
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn well_known_ports() {
        assert_eq!(VXLAN_PORT, 4789);
        assert_eq!(LISP_CONTROL_PORT, 4342);
    }
}
