//! IPv4 headers (RFC 791), without options.
//!
//! Used twice per fabric packet: the *inner* (overlay) header between
//! endpoints, and the *outer* (underlay) header between RLOCs. The header
//! checksum is generated on emit and validated in `new_checked`.

use std::net::Ipv4Addr;

use crate::field::{self, Field, Rest};
use crate::{internet_checksum, Error, Result};

mod layout {
    use super::{Field, Rest};
    pub const VER_IHL: Field = 0..1;
    pub const DSCP_ECN: Field = 1..2;
    pub const TOTAL_LEN: Field = 2..4;
    pub const IDENT: Field = 4..6;
    pub const FLAGS_FRAG: Field = 6..8;
    pub const TTL: Field = 8..9;
    pub const PROTOCOL: Field = 9..10;
    pub const CHECKSUM: Field = 10..12;
    pub const SRC: Field = 12..16;
    pub const DST: Field = 16..20;
    pub const PAYLOAD: Rest = 20..;
}

/// Length of an option-less IPv4 header.
pub const HEADER_LEN: usize = layout::PAYLOAD.start;

/// Default TTL for locally originated packets.
pub const DEFAULT_TTL: u8 = 64;

/// IP protocol numbers the fabric uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// UDP (17) — VXLAN and LISP control both ride UDP.
    Udp,
    /// Anything else, preserved verbatim.
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(raw: u8) -> Self {
        match raw {
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::Udp => 17,
            Protocol::Unknown(raw) => raw,
        }
    }
}

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wraps and validates version, IHL, total length and header checksum.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Packet { buffer };
        let d = p.buffer.as_ref();
        let ver_ihl = d[layout::VER_IHL][0];
        if ver_ihl >> 4 != 4 {
            return Err(Error::Malformed);
        }
        if ver_ihl & 0x0f != 5 {
            // We do not implement IPv4 options (as smoltcp: silently
            // unsupported, but here their presence is an error because the
            // fabric never emits them).
            return Err(Error::Malformed);
        }
        let total = field::get_u16(d, layout::TOTAL_LEN) as usize;
        if total < HEADER_LEN || total > len {
            return Err(Error::BadLength);
        }
        if internet_checksum(&d[..HEADER_LEN]) != 0 {
            return Err(Error::BadChecksum);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::TOTAL_LEN)
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[layout::TTL][0]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        self.buffer.as_ref()[layout::PROTOCOL][0].into()
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = &self.buffer.as_ref()[layout::SRC];
        Ipv4Addr::new(d[0], d[1], d[2], d[3])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = &self.buffer.as_ref()[layout::DST];
        Ipv4Addr::new(d[0], d[1], d[2], d[3])
    }

    /// Payload bytes (bounded by `total_len`).
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets version/IHL to the fixed `0x45`.
    pub fn fill_version(&mut self) {
        self.buffer.as_mut()[layout::VER_IHL.start] = 0x45;
        self.buffer.as_mut()[layout::DSCP_ECN.start] = 0;
        field::set_u16(self.buffer.as_mut(), layout::IDENT, 0);
        field::set_u16(self.buffer.as_mut(), layout::FLAGS_FRAG, 0x4000); // DF
    }

    /// Sets the total-length field.
    pub fn set_total_len(&mut self, len: u16) {
        field::set_u16(self.buffer.as_mut(), layout::TOTAL_LEN, len);
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[layout::TTL.start] = ttl;
    }

    /// Decrements TTL, returning the new value (0 means "drop me").
    pub fn decrement_ttl(&mut self) -> u8 {
        let ttl = self.ttl().saturating_sub(1);
        self.set_ttl(ttl);
        self.fill_checksum();
        ttl
    }

    /// Sets the payload protocol.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[layout::PROTOCOL.start] = p.into();
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[layout::SRC].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[layout::DST].copy_from_slice(&a.octets());
    }

    /// Computes and writes the header checksum (must be called last).
    pub fn fill_checksum(&mut self) {
        field::set_u16(self.buffer.as_mut(), layout::CHECKSUM, 0);
        let sum = internet_checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        field::set_u16(self.buffer.as_mut(), layout::CHECKSUM, sum);
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..total]
    }
}

/// Parsed representation of an IPv4 header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Payload byte length.
    pub payload_len: usize,
    /// Time-to-live.
    pub ttl: u8,
}

impl Repr {
    /// Parses a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - HEADER_LEN,
            ttl: packet.ttl(),
        }
    }

    /// Bytes needed to emit header + payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header (checksum included) into a packet view whose buffer
    /// is at least `buffer_len()` long.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.fill_version();
        packet.set_total_len(self.buffer_len() as u16);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: usize) -> Repr {
        Repr {
            src: Ipv4Addr::new(10, 1, 0, 1),
            dst: Ipv4Addr::new(10, 2, 0, 2),
            protocol: Protocol::Udp,
            payload_len: payload,
            ttl: DEFAULT_TTL,
        }
    }

    #[test]
    fn roundtrip_with_checksum() {
        let repr = sample(8);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&pkt), repr);
        assert_eq!(pkt.payload(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let repr = sample(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[15] ^= 0x01;
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadChecksum
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let repr = sample(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn options_rejected() {
        let repr = sample(0);
        let mut buf = vec![0u8; repr.buffer_len() + 4];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[0] = 0x46; // IHL 6
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn total_len_bounds_payload() {
        let repr = sample(4);
        // Buffer longer than total_len: payload must stop at total_len.
        let mut buf = vec![0u8; repr.buffer_len() + 10];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 4);
    }

    #[test]
    fn total_len_longer_than_buffer_rejected() {
        let repr = sample(4);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        // Truncate below total_len.
        assert_eq!(
            Packet::new_checked(&buf[..repr.buffer_len() - 2]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn ttl_decrement_refreshes_checksum() {
        let repr = sample(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let mut pkt = Packet::new_checked(&mut buf[..]).unwrap();
        let ttl = pkt.decrement_ttl();
        assert_eq!(ttl, DEFAULT_TTL - 1);
        // Still passes checksum validation after the in-place edit.
        assert!(Packet::new_checked(&buf[..]).is_ok());
    }
}
