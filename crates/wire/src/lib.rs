//! # sda-wire
//!
//! Byte-accurate wire formats for the SDA data plane and control plane,
//! in the smoltcp idiom: every format has
//!
//! 1. a zero-copy **view** type (`Packet<T: AsRef<[u8]>>`) with
//!    `new_checked` validation, field getters and — for `T: AsMut<[u8]>` —
//!    setters, and
//! 2. a parsed **representation** type (`Repr`) with `parse`/`emit`
//!    round-tripping through the view.
//!
//! Formats implemented:
//!
//! * [`ethernet`] — Ethernet II frames.
//! * [`arp`] — ARP over Ethernet/IPv4 (what the L2 gateway intercepts).
//! * [`ipv4`] / [`ipv6`] — overlay and underlay IP headers.
//! * [`udp`] — UDP (carries both VXLAN and LISP control messages).
//! * [`vxlan`] — VXLAN with the **Group Policy Option** extension: the
//!   paper's chosen encapsulation, carrying the 24-bit VN in the VNI field
//!   and the 16-bit source GroupId in the GPO group field (Fig. 2).
//! * [`lisp`] — the LISP control messages SDA relies on: Map-Request
//!   (+ the SMR bit used for data-triggered cache refresh), Map-Reply,
//!   Map-Register, Map-Notify, and the pub/sub subscription used by the
//!   border router.
//!
//! Malformed input is always an [`Error`], never a panic: `new_checked`
//! and `parse` validate lengths, version fields and checksums.

pub mod arp;
pub mod ethernet;
mod field;
pub mod ipv4;
pub mod ipv6;
pub mod lisp;
pub mod udp;
pub mod vxlan;

pub use ethernet::EtherType;

/// Errors produced while parsing or emitting wire formats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Error {
    /// The buffer is shorter than the fixed header of the format.
    Truncated,
    /// A length field disagrees with the buffer size.
    BadLength,
    /// A version / flag / type field holds an unsupported value.
    Malformed,
    /// A checksum did not verify.
    BadChecksum,
    /// The buffer supplied to `emit` is too small.
    BufferTooSmall,
    /// An address family identifier we do not implement.
    UnknownAfi(u16),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => f.write_str("buffer truncated"),
            Error::BadLength => f.write_str("length field inconsistent with buffer"),
            Error::Malformed => f.write_str("malformed header field"),
            Error::BadChecksum => f.write_str("checksum mismatch"),
            Error::BufferTooSmall => f.write_str("emit buffer too small"),
            Error::UnknownAfi(afi) => write!(f, "unknown address family {afi}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire-format operations.
pub type Result<T> = core::result::Result<T, Error>;

/// The RFC 1071 Internet checksum over `data` (used by IPv4 and UDP).
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data, 0)
}

/// One's-complement sum folding helper; `init` seeds the accumulator so
/// pseudo-headers can be chained.
pub(crate) fn ones_complement_sum(data: &[u8], init: u32) -> u16 {
    let mut sum = init;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeros_is_all_ones() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x54, 0xa6, 0xf2, 0x40, 0x00, 0x40, 0x01];
        let c = internet_checksum(&data);
        data[3] ^= 0xff;
        assert_ne!(internet_checksum(&data), c);
    }

    #[test]
    fn checksum_handles_odd_length() {
        // Odd-length payload pads with a zero byte per RFC 1071.
        assert_eq!(internet_checksum(&[0xff]), internet_checksum(&[0xff, 0x00]));
    }

    #[test]
    fn errors_display() {
        assert_eq!(Error::Truncated.to_string(), "buffer truncated");
        assert_eq!(
            Error::UnknownAfi(99).to_string(),
            "unknown address family 99"
        );
    }
}
