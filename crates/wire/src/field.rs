//! Byte-range helpers for header field definitions, smoltcp-style.
//!
//! Each wire module declares its header layout as `const` ranges into the
//! buffer, e.g. `pub const VNI: Field = 4..7;`. Keeping the layout in one
//! `field` module per format makes offsets reviewable against the RFC
//! figure in a single screen.

/// A fixed byte range within a header.
pub type Field = core::ops::Range<usize>;

/// Offset of the first byte after a fixed header (start of payload).
pub type Rest = core::ops::RangeFrom<usize>;

/// Reads a big-endian `u16` at `field`.
#[inline]
pub fn get_u16(data: &[u8], field: Field) -> u16 {
    u16::from_be_bytes([data[field.start], data[field.start + 1]])
}

/// Writes a big-endian `u16` at `field`.
#[inline]
pub fn set_u16(data: &mut [u8], field: Field, value: u16) {
    data[field].copy_from_slice(&value.to_be_bytes());
}

/// Reads a big-endian `u32` at `field`.
#[cfg(test)]
#[inline]
pub fn get_u32(data: &[u8], field: Field) -> u32 {
    let s = field.start;
    u32::from_be_bytes([data[s], data[s + 1], data[s + 2], data[s + 3]])
}

/// Writes a big-endian `u32` at `field`.
#[inline]
pub fn set_u32(data: &mut [u8], field: Field, value: u32) {
    data[field].copy_from_slice(&value.to_be_bytes());
}

/// Reads a 24-bit big-endian value at `field` (3 bytes).
#[inline]
pub fn get_u24(data: &[u8], field: Field) -> u32 {
    let s = field.start;
    (u32::from(data[s]) << 16) | (u32::from(data[s + 1]) << 8) | u32::from(data[s + 2])
}

/// Writes a 24-bit big-endian value at `field` (3 bytes); the top byte of
/// `value` must be zero.
#[inline]
pub fn set_u24(data: &mut [u8], field: Field, value: u32) {
    debug_assert!(value <= 0x00ff_ffff);
    let s = field.start;
    data[s] = (value >> 16) as u8;
    data[s + 1] = (value >> 8) as u8;
    data[s + 2] = value as u8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_roundtrip() {
        let mut buf = [0u8; 4];
        set_u16(&mut buf, 1..3, 0xBEEF);
        assert_eq!(buf, [0, 0xBE, 0xEF, 0]);
        assert_eq!(get_u16(&buf, 1..3), 0xBEEF);
    }

    #[test]
    fn u24_roundtrip() {
        let mut buf = [0u8; 4];
        set_u24(&mut buf, 0..3, 0x00AB_CDEF);
        assert_eq!(buf, [0xAB, 0xCD, 0xEF, 0]);
        assert_eq!(get_u24(&buf, 0..3), 0x00AB_CDEF);
    }

    #[test]
    fn u32_roundtrip() {
        let mut buf = [0u8; 6];
        set_u32(&mut buf, 2..6, 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, 2..6), 0xDEAD_BEEF);
    }
}
