//! ARP over Ethernet/IPv4 (RFC 826).
//!
//! The SDA L2 gateway intercepts broadcast ARP requests, resolves the
//! target MAC via the routing server, and re-injects the request as
//! *unicast* (§3.5). This module gives it a real ARP packet to rewrite.
//!
//! ```text
//!  0        2        4    5    6        8          14        18         24        28
//! +--------+--------+----+----+--------+----------+---------+----------+---------+
//! | htype  | ptype  |hlen|plen|  oper  |  sha     |  spa    |  tha     |  tpa    |
//! +--------+--------+----+----+--------+----------+---------+----------+---------+
//! ```

use std::net::Ipv4Addr;

use sda_types::MacAddr;

use crate::field::{self, Field};
use crate::{Error, Result};

mod layout {
    use super::Field;
    pub const HTYPE: Field = 0..2;
    pub const PTYPE: Field = 2..4;
    pub const HLEN: Field = 4..5;
    pub const PLEN: Field = 5..6;
    pub const OPER: Field = 6..8;
    pub const SHA: Field = 8..14;
    pub const SPA: Field = 14..18;
    pub const THA: Field = 18..24;
    pub const TPA: Field = 24..28;
}

/// Total length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = layout::TPA.end;

/// ARP operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operation {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// A read/write view of an ARP packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wraps and validates: length, hardware/protocol types and sizes.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < PACKET_LEN {
            return Err(Error::Truncated);
        }
        let p = Packet { buffer };
        let d = p.buffer.as_ref();
        if field::get_u16(d, layout::HTYPE) != 1 {
            return Err(Error::Malformed);
        }
        if field::get_u16(d, layout::PTYPE) != 0x0800 {
            return Err(Error::Malformed);
        }
        if d[layout::HLEN][0] != 6 || d[layout::PLEN][0] != 4 {
            return Err(Error::Malformed);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The operation (request/reply).
    pub fn operation(&self) -> Result<Operation> {
        match field::get_u16(self.buffer.as_ref(), layout::OPER) {
            1 => Ok(Operation::Request),
            2 => Ok(Operation::Reply),
            _ => Err(Error::Malformed),
        }
    }

    fn mac_at(&self, f: Field) -> MacAddr {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buffer.as_ref()[f]);
        MacAddr(m)
    }

    fn ip_at(&self, f: Field) -> Ipv4Addr {
        let d = &self.buffer.as_ref()[f];
        Ipv4Addr::new(d[0], d[1], d[2], d[3])
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        self.mac_at(layout::SHA)
    }

    /// Sender protocol (IPv4) address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        self.ip_at(layout::SPA)
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        self.mac_at(layout::THA)
    }

    /// Target protocol (IPv4) address.
    pub fn target_ip(&self) -> Ipv4Addr {
        self.ip_at(layout::TPA)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Writes the fixed hardware/protocol type preamble.
    pub fn fill_preamble(&mut self) {
        let d = self.buffer.as_mut();
        field::set_u16(d, layout::HTYPE, 1);
        field::set_u16(d, layout::PTYPE, 0x0800);
        d[layout::HLEN.start] = 6;
        d[layout::PLEN.start] = 4;
    }

    /// Sets the operation.
    pub fn set_operation(&mut self, op: Operation) {
        let raw = match op {
            Operation::Request => 1,
            Operation::Reply => 2,
        };
        field::set_u16(self.buffer.as_mut(), layout::OPER, raw);
    }

    /// Sets the sender hardware address.
    pub fn set_sender_mac(&mut self, m: MacAddr) {
        self.buffer.as_mut()[layout::SHA].copy_from_slice(&m.octets());
    }

    /// Sets the sender protocol address.
    pub fn set_sender_ip(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[layout::SPA].copy_from_slice(&a.octets());
    }

    /// Sets the target hardware address.
    pub fn set_target_mac(&mut self, m: MacAddr) {
        self.buffer.as_mut()[layout::THA].copy_from_slice(&m.octets());
    }

    /// Sets the target protocol address.
    pub fn set_target_ip(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[layout::TPA].copy_from_slice(&a.octets());
    }
}

/// Parsed representation of an ARP packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Request or reply.
    pub operation: Operation,
    /// Sender MAC.
    pub sender_mac: MacAddr,
    /// Sender IPv4.
    pub sender_ip: Ipv4Addr,
    /// Target MAC (zero in requests).
    pub target_mac: MacAddr,
    /// Target IPv4.
    pub target_ip: Ipv4Addr,
}

impl Repr {
    /// Builds a who-has request: "who has `target_ip`? tell `sender`".
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Repr {
        Repr {
            operation: Operation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the reply answering `request` with `mac`.
    pub fn reply_to(request: &Repr, mac: MacAddr) -> Repr {
        Repr {
            operation: Operation::Reply,
            sender_mac: mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parses an ARP packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        Ok(Repr {
            operation: packet.operation()?,
            sender_mac: packet.sender_mac(),
            sender_ip: packet.sender_ip(),
            target_mac: packet.target_mac(),
            target_ip: packet.target_ip(),
        })
    }

    /// Byte length when emitted.
    pub const fn buffer_len(&self) -> usize {
        PACKET_LEN
    }

    /// Emits into a packet view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.fill_preamble();
        packet.set_operation(self.operation);
        packet.set_sender_mac(self.sender_mac);
        packet.set_sender_ip(self.sender_ip);
        packet.set_target_mac(self.target_mac);
        packet.set_target_ip(self.target_ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = Repr::request(
            MacAddr::from_seed(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut buf = vec![0u8; req.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        req.emit(&mut pkt);
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&pkt).unwrap(), req);

        let rep = Repr::reply_to(&req, MacAddr::from_seed(2));
        assert_eq!(rep.operation, Operation::Reply);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
    }

    #[test]
    fn rejects_non_ethernet_ipv4_arp() {
        let req = Repr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::LOCALHOST);
        let mut buf = vec![0u8; req.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        req.emit(&mut pkt);
        buf[0] = 9; // corrupt htype
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            Packet::new_checked(&[0u8; 27][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn rejects_bad_operation() {
        let req = Repr::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::LOCALHOST);
        let mut buf = vec![0u8; req.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        req.emit(&mut pkt);
        buf[7] = 9; // oper = 9
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert!(Repr::parse(&pkt).is_err());
    }
}
