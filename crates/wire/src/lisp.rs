//! LISP control-plane messages (after draft-ietf-lisp-rfc6833bis and
//! draft-ietf-lisp-pubsub), as SDA uses them.
//!
//! The message set is exactly what the paper's control plane needs:
//!
//! * **Map-Request** — edge asks the routing server for the RLOC of an EID.
//!   With the `S` (SMR) bit set it becomes a *Solicit-Map-Request*: the
//!   data-triggered "your cache is stale, re-resolve" message of §3.4.
//! * **Map-Reply** — the answer; may be *negative* (EID unknown), which is
//!   what makes edges delete FIB entries at night (§4.2).
//! * **Map-Register** — edge publishes/updates an endpoint's location.
//! * **Map-Notify** — server tells the *previous* edge about a move so it
//!   can forward in-flight traffic (Fig. 5, step 2).
//! * **Subscribe / Publish** — the pub/sub extension the border router uses
//!   to stay synchronized with the full mapping database (§3.3).
//!
//! Encoding: a 9-byte common header (type+flags, 64-bit nonce) followed by
//! a type-specific body. EIDs are encoded with a 16-bit address family
//! identifier — 1 (IPv4), 2 (IPv6) and 6 (48-bit MAC; real LISP would use
//! an LCAF, simplified here and documented as a divergence).

use std::net::Ipv4Addr;

use sda_types::{Eid, EidKind, EidPrefix, Ipv4Prefix, Ipv6Prefix, MacPrefix, Rloc, VnId};

use crate::{Error, Result};

/// UDP port carried alongside these messages; re-exported for convenience.
pub use crate::udp::LISP_CONTROL_PORT;

const TYPE_MAP_REQUEST: u8 = 1;
const TYPE_MAP_REPLY: u8 = 2;
const TYPE_MAP_REGISTER: u8 = 3;
const TYPE_MAP_NOTIFY: u8 = 4;
const TYPE_PUBLISH: u8 = 6;
const TYPE_SUBSCRIBE: u8 = 7;
const TYPE_SUBSCRIBE_ACK: u8 = 8;
const TYPE_SERVER_BUSY: u8 = 9;

const FLAG_SMR: u8 = 0x1;
const FLAG_NEGATIVE: u8 = 0x1;
const FLAG_WANT_NOTIFY: u8 = 0x1;
const FLAG_WITHDRAW: u8 = 0x1;

const AFI_IPV4: u16 = 1;
const AFI_IPV6: u16 = 2;
const AFI_MAC: u16 = 6;

/// Which admission-control budget a shed [`Message::ServerBusy`] charges.
///
/// Carried in the header flags nibble so the 9-byte common header stays
/// untouched; receivers use it to find the matching retry state
/// (requests match by `(vn, eid)`, registers by nonce, subscribes by VN).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusyClass {
    /// A Map-Request was shed; retry resolution later.
    Request,
    /// A Map-Register was shed; retry registration later.
    Register,
    /// A Subscribe was shed; retry subscription later.
    Subscribe,
}

impl BusyClass {
    fn flag(self) -> u8 {
        match self {
            BusyClass::Request => 0,
            BusyClass::Register => 1,
            BusyClass::Subscribe => 2,
        }
    }

    fn from_flag(flags: u8) -> Result<BusyClass> {
        match flags {
            0 => Ok(BusyClass::Request),
            1 => Ok(BusyClass::Register),
            2 => Ok(BusyClass::Subscribe),
            _ => Err(Error::Malformed),
        }
    }
}

/// A fully parsed LISP control message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// Resolve `eid` in `vn`; replies go to `itr_rloc`.
    MapRequest {
        /// Correlates the eventual Map-Reply.
        nonce: u64,
        /// Solicit-Map-Request: receiver should re-resolve, not answer.
        smr: bool,
        /// VN (LISP instance-id) scope.
        vn: VnId,
        /// The EID being resolved.
        eid: Eid,
        /// The requesting tunnel router's RLOC.
        itr_rloc: Rloc,
    },
    /// Answer to a Map-Request.
    MapReply {
        /// Echoed from the request.
        nonce: u64,
        /// VN scope.
        vn: VnId,
        /// Covering prefix for the answer (host route for endpoints).
        prefix: EidPrefix,
        /// Current locator; `None` together with `negative` means unknown.
        rloc: Option<Rloc>,
        /// Negative reply: EID not registered; cache the miss.
        negative: bool,
        /// Cache lifetime in seconds.
        ttl_secs: u32,
    },
    /// Register (or refresh) an EID-to-RLOC mapping.
    MapRegister {
        /// Correlates the Map-Notify acknowledgment.
        nonce: u64,
        /// VN scope.
        vn: VnId,
        /// The endpoint identifier.
        eid: Eid,
        /// The registering edge router's RLOC.
        rloc: Rloc,
        /// Registration lifetime in seconds.
        ttl_secs: u32,
        /// Request a Map-Notify acknowledgment.
        want_notify: bool,
    },
    /// Server-initiated notification (move handling + register ack).
    MapNotify {
        /// Echoed nonce (0 for unsolicited move notifications).
        nonce: u64,
        /// VN scope.
        vn: VnId,
        /// The moved EID.
        eid: Eid,
        /// The *new* RLOC now serving the EID.
        new_rloc: Rloc,
    },
    /// Subscribe to all mapping changes in `vn` (border router sync).
    Subscribe {
        /// Request nonce.
        nonce: u64,
        /// VN scope of the subscription.
        vn: VnId,
        /// Where publishes should be sent.
        subscriber: Rloc,
    },
    /// Acknowledges a Subscribe: the subscriber's view of `vn` is being
    /// reset and a fresh snapshot follows as Publish messages. Used by
    /// subscribers to retransmit Subscribes until one takes effect.
    SubscribeAck {
        /// Echoed from the Subscribe.
        nonce: u64,
        /// VN scope of the acknowledged subscription.
        vn: VnId,
    },
    /// Shed-load reply: the server's admission budget for `class` is
    /// exhausted and the triggering message was dropped unprocessed.
    /// The sender should retry no sooner than `retry_after_ms` from now
    /// (plus its own jitter) instead of running its normal backoff.
    ServerBusy {
        /// Echoed from the shed message (registers match on this).
        nonce: u64,
        /// VN scope of the shed message.
        vn: VnId,
        /// EID of the shed request/register (requests match on
        /// `(vn, eid)` because retransmits regenerate nonces). For
        /// [`BusyClass::Subscribe`] this carries an all-zero
        /// placeholder; subscribes match on VN alone.
        eid: Eid,
        /// Which admission budget was exhausted.
        class: BusyClass,
        /// Retry-after hint in milliseconds.
        retry_after_ms: u32,
    },
    /// Push a mapping change to a subscriber.
    Publish {
        /// Monotonic publish sequence number (replaces nonce semantics).
        nonce: u64,
        /// VN scope.
        vn: VnId,
        /// The mapping's covering prefix.
        prefix: EidPrefix,
        /// New locator; meaningless when `withdraw`.
        rloc: Rloc,
        /// Mapping was removed rather than updated.
        withdraw: bool,
    },
}

impl Message {
    /// Serializes the message to bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            Message::MapRequest {
                nonce,
                smr,
                vn,
                eid,
                itr_rloc,
            } => {
                w.header(TYPE_MAP_REQUEST, if *smr { FLAG_SMR } else { 0 }, *nonce);
                w.vn(*vn);
                w.eid(*eid);
                w.rloc(*itr_rloc);
            }
            Message::MapReply {
                nonce,
                vn,
                prefix,
                rloc,
                negative,
                ttl_secs,
            } => {
                w.header(
                    TYPE_MAP_REPLY,
                    if *negative { FLAG_NEGATIVE } else { 0 },
                    *nonce,
                );
                w.vn(*vn);
                w.prefix(*prefix);
                w.opt_rloc(*rloc);
                w.u32(*ttl_secs);
            }
            Message::MapRegister {
                nonce,
                vn,
                eid,
                rloc,
                ttl_secs,
                want_notify,
            } => {
                w.header(
                    TYPE_MAP_REGISTER,
                    if *want_notify { FLAG_WANT_NOTIFY } else { 0 },
                    *nonce,
                );
                w.vn(*vn);
                w.eid(*eid);
                w.rloc(*rloc);
                w.u32(*ttl_secs);
            }
            Message::MapNotify {
                nonce,
                vn,
                eid,
                new_rloc,
            } => {
                w.header(TYPE_MAP_NOTIFY, 0, *nonce);
                w.vn(*vn);
                w.eid(*eid);
                w.rloc(*new_rloc);
            }
            Message::Subscribe {
                nonce,
                vn,
                subscriber,
            } => {
                w.header(TYPE_SUBSCRIBE, 0, *nonce);
                w.vn(*vn);
                w.rloc(*subscriber);
            }
            Message::SubscribeAck { nonce, vn } => {
                w.header(TYPE_SUBSCRIBE_ACK, 0, *nonce);
                w.vn(*vn);
            }
            Message::ServerBusy {
                nonce,
                vn,
                eid,
                class,
                retry_after_ms,
            } => {
                w.header(TYPE_SERVER_BUSY, class.flag(), *nonce);
                w.vn(*vn);
                w.eid(*eid);
                w.u32(*retry_after_ms);
            }
            Message::Publish {
                nonce,
                vn,
                prefix,
                rloc,
                withdraw,
            } => {
                w.header(
                    TYPE_PUBLISH,
                    if *withdraw { FLAG_WITHDRAW } else { 0 },
                    *nonce,
                );
                w.vn(*vn);
                w.prefix(*prefix);
                w.rloc(*rloc);
            }
        }
        w.buf
    }

    /// Parses a message from bytes.
    pub fn parse(data: &[u8]) -> Result<Message> {
        let mut r = Reader { data, pos: 0 };
        let (ty, flags, nonce) = r.header()?;
        let msg = match ty {
            TYPE_MAP_REQUEST => Message::MapRequest {
                nonce,
                smr: flags & FLAG_SMR != 0,
                vn: r.vn()?,
                eid: r.eid()?,
                itr_rloc: r.rloc()?,
            },
            TYPE_MAP_REPLY => Message::MapReply {
                nonce,
                negative: flags & FLAG_NEGATIVE != 0,
                vn: r.vn()?,
                prefix: r.prefix()?,
                rloc: r.opt_rloc()?,
                ttl_secs: r.u32()?,
            },
            TYPE_MAP_REGISTER => Message::MapRegister {
                nonce,
                want_notify: flags & FLAG_WANT_NOTIFY != 0,
                vn: r.vn()?,
                eid: r.eid()?,
                rloc: r.rloc()?,
                ttl_secs: r.u32()?,
            },
            TYPE_MAP_NOTIFY => Message::MapNotify {
                nonce,
                vn: r.vn()?,
                eid: r.eid()?,
                new_rloc: r.rloc()?,
            },
            TYPE_SUBSCRIBE => Message::Subscribe {
                nonce,
                vn: r.vn()?,
                subscriber: r.rloc()?,
            },
            TYPE_SUBSCRIBE_ACK => Message::SubscribeAck { nonce, vn: r.vn()? },
            TYPE_SERVER_BUSY => Message::ServerBusy {
                nonce,
                class: BusyClass::from_flag(flags)?,
                vn: r.vn()?,
                eid: r.eid()?,
                retry_after_ms: r.u32()?,
            },
            TYPE_PUBLISH => Message::Publish {
                nonce,
                withdraw: flags & FLAG_WITHDRAW != 0,
                vn: r.vn()?,
                prefix: r.prefix()?,
                rloc: r.rloc()?,
            },
            _ => return Err(Error::Malformed),
        };
        if r.pos != data.len() {
            return Err(Error::BadLength);
        }
        Ok(msg)
    }

    /// The nonce of any message variant.
    pub fn nonce(&self) -> u64 {
        match self {
            Message::MapRequest { nonce, .. }
            | Message::MapReply { nonce, .. }
            | Message::MapRegister { nonce, .. }
            | Message::MapNotify { nonce, .. }
            | Message::Subscribe { nonce, .. }
            | Message::SubscribeAck { nonce, .. }
            | Message::ServerBusy { nonce, .. }
            | Message::Publish { nonce, .. } => *nonce,
        }
    }
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn header(&mut self, ty: u8, flags: u8, nonce: u64) {
        debug_assert!(flags <= 0x0f);
        self.buf.push((ty << 4) | flags);
        self.buf.extend_from_slice(&nonce.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn vn(&mut self, vn: VnId) {
        let raw = vn.raw();
        self.buf.push((raw >> 16) as u8);
        self.buf.push((raw >> 8) as u8);
        self.buf.push(raw as u8);
    }

    fn eid(&mut self, eid: Eid) {
        let afi = match eid.kind() {
            EidKind::V4 => AFI_IPV4,
            EidKind::V6 => AFI_IPV6,
            EidKind::Mac => AFI_MAC,
        };
        self.u16(afi);
        self.buf.extend_from_slice(&eid.to_bytes());
    }

    fn prefix(&mut self, p: EidPrefix) {
        self.buf.push(p.len());
        let afi = match p.kind() {
            EidKind::V4 => AFI_IPV4,
            EidKind::V6 => AFI_IPV6,
            EidKind::Mac => AFI_MAC,
        };
        self.u16(afi);
        self.buf.extend_from_slice(&p.addr_bytes());
    }

    fn rloc(&mut self, r: Rloc) {
        self.u16(AFI_IPV4);
        self.buf.extend_from_slice(&r.addr().octets());
    }

    fn opt_rloc(&mut self, r: Option<Rloc>) {
        match r {
            Some(r) => self.rloc(r),
            // AFI 0 = "no address", as in real LISP.
            None => self.u16(0),
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(Error::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn header(&mut self) -> Result<(u8, u8, u64)> {
        let first = self.take(1)?[0];
        let nonce = u64::from_be_bytes(self.take(8)?.try_into().unwrap());
        Ok((first >> 4, first & 0x0f, nonce))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn vn(&mut self) -> Result<VnId> {
        let b = self.take(3)?;
        let raw = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        VnId::new(raw).map_err(|_| Error::Malformed)
    }

    fn eid(&mut self) -> Result<Eid> {
        let afi = self.u16()?;
        let kind = kind_of_afi(afi)?;
        let bytes = self.take(kind.bit_len() as usize / 8)?;
        Eid::from_bytes(kind, bytes).map_err(|_| Error::Malformed)
    }

    fn prefix(&mut self) -> Result<EidPrefix> {
        let len = self.take(1)?[0];
        let afi = self.u16()?;
        let kind = kind_of_afi(afi)?;
        let bytes = self.take(kind.bit_len() as usize / 8)?;
        let eid = Eid::from_bytes(kind, bytes).map_err(|_| Error::Malformed)?;
        let prefix = match eid {
            Eid::V4(a) => EidPrefix::V4(Ipv4Prefix::new(a, len).map_err(|_| Error::Malformed)?),
            Eid::V6(a) => EidPrefix::V6(Ipv6Prefix::new(a, len).map_err(|_| Error::Malformed)?),
            Eid::Mac(m) => EidPrefix::Mac(MacPrefix::new(m, len).map_err(|_| Error::Malformed)?),
        };
        Ok(prefix)
    }

    fn rloc(&mut self) -> Result<Rloc> {
        let afi = self.u16()?;
        if afi != AFI_IPV4 {
            return Err(Error::UnknownAfi(afi));
        }
        let b = self.take(4)?;
        Ok(Rloc(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
    }

    fn opt_rloc(&mut self) -> Result<Option<Rloc>> {
        let afi = self.u16()?;
        match afi {
            0 => Ok(None),
            AFI_IPV4 => {
                let b = self.take(4)?;
                Ok(Some(Rloc(Ipv4Addr::new(b[0], b[1], b[2], b[3]))))
            }
            other => Err(Error::UnknownAfi(other)),
        }
    }
}

fn kind_of_afi(afi: u16) -> Result<EidKind> {
    match afi {
        AFI_IPV4 => Ok(EidKind::V4),
        AFI_IPV6 => Ok(EidKind::V6),
        AFI_MAC => Ok(EidKind::Mac),
        other => Err(Error::UnknownAfi(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_types::MacAddr;

    fn sample_messages() -> Vec<Message> {
        let vn = VnId::new(100).unwrap();
        let eid4 = Eid::V4(Ipv4Addr::new(10, 1, 0, 5));
        let eid6 = Eid::V6("2001:db8::5".parse::<std::net::Ipv6Addr>().unwrap());
        let eidm = Eid::Mac(MacAddr::from_seed(5));
        let rloc = Rloc::for_router_index(3);
        vec![
            Message::MapRequest {
                nonce: 1,
                smr: false,
                vn,
                eid: eid4,
                itr_rloc: rloc,
            },
            Message::MapRequest {
                nonce: 2,
                smr: true,
                vn,
                eid: eidm,
                itr_rloc: rloc,
            },
            Message::MapReply {
                nonce: 1,
                vn,
                prefix: EidPrefix::host(eid4),
                rloc: Some(rloc),
                negative: false,
                ttl_secs: 1440,
            },
            Message::MapReply {
                nonce: 3,
                vn,
                prefix: EidPrefix::V4(Ipv4Prefix::new(Ipv4Addr::new(10, 9, 0, 0), 16).unwrap()),
                rloc: None,
                negative: true,
                ttl_secs: 60,
            },
            Message::MapRegister {
                nonce: 4,
                vn,
                eid: eid6,
                rloc,
                ttl_secs: 300,
                want_notify: true,
            },
            Message::MapNotify {
                nonce: 0,
                vn,
                eid: eid4,
                new_rloc: rloc,
            },
            Message::Subscribe {
                nonce: 9,
                vn,
                subscriber: rloc,
            },
            Message::SubscribeAck { nonce: 9, vn },
            Message::Publish {
                nonce: 77,
                vn,
                prefix: EidPrefix::host(eidm),
                rloc,
                withdraw: true,
            },
            Message::ServerBusy {
                nonce: 11,
                vn,
                eid: eid4,
                class: BusyClass::Request,
                retry_after_ms: 250,
            },
            Message::ServerBusy {
                nonce: 12,
                vn,
                eid: eidm,
                class: BusyClass::Register,
                retry_after_ms: 1000,
            },
            Message::ServerBusy {
                nonce: 13,
                vn,
                eid: Eid::V4(Ipv4Addr::UNSPECIFIED),
                class: BusyClass::Subscribe,
                retry_after_ms: 2000,
            },
        ]
    }

    #[test]
    fn all_variants_roundtrip() {
        for msg in sample_messages() {
            let bytes = msg.emit();
            let parsed = Message::parse(&bytes).unwrap_or_else(|e| {
                panic!("failed to parse {msg:?}: {e}");
            });
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_messages()[0].emit();
        bytes.push(0);
        assert_eq!(Message::parse(&bytes).unwrap_err(), Error::BadLength);
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        for msg in sample_messages() {
            let bytes = msg.emit();
            for cut in 0..bytes.len() {
                assert!(
                    Message::parse(&bytes[..cut]).is_err(),
                    "truncated {msg:?} at {cut} must not parse"
                );
            }
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = sample_messages()[0].emit();
        bytes[0] = 0xF0; // type 15
        assert_eq!(Message::parse(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn unknown_afi_rejected() {
        let msg = sample_messages().remove(0);
        let mut bytes = msg.emit();
        // EID AFI lives right after header (9) + vn (3).
        bytes[12] = 0x00;
        bytes[13] = 0x63; // AFI 99
        assert!(matches!(Message::parse(&bytes), Err(Error::UnknownAfi(99))));
    }

    #[test]
    fn nonce_accessor_matches() {
        for msg in sample_messages() {
            let bytes = msg.emit();
            assert_eq!(Message::parse(&bytes).unwrap().nonce(), msg.nonce());
        }
    }

    #[test]
    fn server_busy_unknown_class_rejected() {
        let busy = Message::ServerBusy {
            nonce: 11,
            vn: VnId::new(100).unwrap(),
            eid: Eid::V4(Ipv4Addr::new(10, 1, 0, 5)),
            class: BusyClass::Request,
            retry_after_ms: 250,
        };
        let mut bytes = busy.emit();
        bytes[0] = (TYPE_SERVER_BUSY << 4) | 0x7; // class 7 undefined
        assert_eq!(Message::parse(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn smr_bit_is_preserved() {
        let msgs = sample_messages();
        let plain = msgs[0].emit();
        let smr = msgs[1].emit();
        assert_eq!(plain[0] & 0x0f, 0);
        assert_eq!(smr[0] & 0x0f, FLAG_SMR);
    }
}
