//! IPv6 headers (RFC 8200), no extension headers.
//!
//! Overlay endpoints are dual-stack in SDA (each endpoint registers an
//! IPv4, an IPv6 and a MAC EID), so the inner packet may be IPv6. The
//! underlay stays IPv4.

use std::net::Ipv6Addr;

use crate::field::{self, Field, Rest};
use crate::ipv4::Protocol;
use crate::{Error, Result};

mod layout {
    use super::{Field, Rest};
    pub const VER_TC_FL: Field = 0..4;
    pub const PAYLOAD_LEN: Field = 4..6;
    pub const NEXT_HEADER: Field = 6..7;
    pub const HOP_LIMIT: Field = 7..8;
    pub const SRC: Field = 8..24;
    pub const DST: Field = 24..40;
    pub const PAYLOAD: Rest = 40..;
}

/// Length of the fixed IPv6 header.
pub const HEADER_LEN: usize = layout::PAYLOAD.start;

/// Default hop limit for locally originated packets.
pub const DEFAULT_HOP_LIMIT: u8 = 64;

/// A read/write view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wraps and validates version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Packet { buffer };
        let d = p.buffer.as_ref();
        if d[0] >> 4 != 6 {
            return Err(Error::Malformed);
        }
        let payload_len = field::get_u16(d, layout::PAYLOAD_LEN) as usize;
        if HEADER_LEN + payload_len > len {
            return Err(Error::BadLength);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::PAYLOAD_LEN)
    }

    /// Next-header (protocol) field.
    pub fn next_header(&self) -> Protocol {
        self.buffer.as_ref()[layout::NEXT_HEADER][0].into()
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[layout::HOP_LIMIT][0]
    }

    fn addr_at(&self, f: Field) -> Ipv6Addr {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[f]);
        Ipv6Addr::from(a)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        self.addr_at(layout::SRC)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        self.addr_at(layout::DST)
    }

    /// Payload bytes (bounded by the payload-length field).
    pub fn payload(&self) -> &[u8] {
        let end = HEADER_LEN + self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Writes version 6, zero traffic class and flow label.
    pub fn fill_version(&mut self) {
        field::set_u32(self.buffer.as_mut(), layout::VER_TC_FL, 6 << 28);
    }

    /// Sets the payload-length field.
    pub fn set_payload_len(&mut self, len: u16) {
        field::set_u16(self.buffer.as_mut(), layout::PAYLOAD_LEN, len);
    }

    /// Sets the next-header field.
    pub fn set_next_header(&mut self, p: Protocol) {
        self.buffer.as_mut()[layout::NEXT_HEADER.start] = p.into();
    }

    /// Sets the hop limit.
    pub fn set_hop_limit(&mut self, hl: u8) {
        self.buffer.as_mut()[layout::HOP_LIMIT.start] = hl;
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[layout::SRC].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[layout::DST].copy_from_slice(&a.octets());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = HEADER_LEN + self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..end]
    }
}

/// Parsed representation of an IPv6 header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Payload protocol.
    pub next_header: Protocol,
    /// Payload byte length.
    pub payload_len: usize,
    /// Hop limit.
    pub hop_limit: u8,
}

impl Repr {
    /// Parses a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            next_header: packet.next_header(),
            payload_len: packet.payload_len() as usize,
            hop_limit: packet.hop_limit(),
        }
    }

    /// Bytes needed to emit header + payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into a packet view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.fill_version();
        packet.set_payload_len(self.payload_len as u16);
        packet.set_next_header(self.next_header);
        packet.set_hop_limit(self.hop_limit);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: usize) -> Repr {
        Repr {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            next_header: Protocol::Udp,
            payload_len: payload,
            hop_limit: DEFAULT_HOP_LIMIT,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample(5);
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(b"hello");
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&pkt), repr);
        assert_eq!(pkt.payload(), b"hello");
    }

    #[test]
    fn wrong_version_rejected() {
        let repr = sample(0);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[0] = 0x45;
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn payload_len_longer_than_buffer_rejected() {
        let repr = sample(10);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        assert_eq!(
            Packet::new_checked(&buf[..buf.len() - 1]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            Packet::new_checked(&[0x60; 39][..]).unwrap_err(),
            Error::Truncated
        );
    }
}
