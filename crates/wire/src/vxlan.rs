//! VXLAN with the Group Policy Option (VXLAN-GPO,
//! draft-smith-vxlan-group-policy).
//!
//! The paper chose this encapsulation over the native LISP data plane
//! because it carries both L2 and L3 payloads and has room for the source
//! GroupId (Fig. 2). Header layout:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-------------------------------+
//! |G|R|R|R|I|R|R|R|R|D|R|R|A|R|R|R|        Group Policy ID        |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-------------------------------+
//! |                VXLAN Network Identifier (VNI) |   Reserved    |
//! +-----------------------------------------------+---------------+
//! ```
//!
//! * `G` — Group Policy extension present; the Group Policy ID carries the
//!   packet's **source GroupId**.
//! * `I` — VNI field valid (must be set); the VNI carries the **VN**.
//! * `A` — policy has already been applied upstream (used when an ingress
//!   node enforced the ACL so egress must not re-drop).
//!
//! The trailing reserved byte doubles as a GPE-style **next-protocol**
//! indicator so the fabric can carry both L3 and L2 payloads (the very
//! reason the paper picked VXLAN over the native LISP data plane): `0x00`
//! is the historical all-zero encoding and means an **IPv4** inner
//! packet; [`PROTO_ETHERNET`] (`0x03`, the VXLAN-GPE number) means a full
//! **Ethernet** inner frame (L2 flows, §3.5). Any other value is rejected
//! by [`Packet::new_checked`].

use sda_types::{GroupId, VnId};

use crate::field::{self, Field, Rest};
use crate::{Error, Result};

mod layout {
    use super::{Field, Rest};
    pub const FLAGS: Field = 0..2;
    pub const GROUP: Field = 2..4;
    pub const VNI: Field = 4..7;
    pub const RESERVED: Field = 7..8;
    pub const PAYLOAD: Rest = 8..;
}

/// Length of the VXLAN-GPO header.
pub const HEADER_LEN: usize = layout::PAYLOAD.start;

/// Flag-word masks, public so the data plane's flat header writer can
/// assemble the flags in one store instead of per-bit read-modify-write.
pub const FLAG_G: u16 = 0x8000;
/// VNI-valid flag (mandatory).
pub const FLAG_I: u16 = 0x0800;
/// "Don't learn" flag.
pub const FLAG_D: u16 = 0x0040;
/// "Policy already applied" flag.
pub const FLAG_A: u16 = 0x0008;

/// Next-protocol value for an Ethernet inner frame (the VXLAN-GPE
/// number). The historical `0x00` reserved byte reads as IPv4.
pub const PROTO_ETHERNET: u8 = 0x03;

/// What the encapsulated payload is (carried in the reserved byte,
/// GPE-style).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InnerProto {
    /// A bare IPv4 packet (the fabric's L3 flows) — reserved byte 0.
    #[default]
    Ipv4,
    /// A full Ethernet frame (L2 flows, §3.5) — reserved byte
    /// [`PROTO_ETHERNET`].
    Ethernet,
}

/// A read/write view of a VXLAN-GPO packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wraps and validates: length, the mandatory `I` flag and a known
    /// next-protocol byte (`0x00` = IPv4, [`PROTO_ETHERNET`]).
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let p = Packet { buffer };
        let flags = field::get_u16(p.buffer.as_ref(), layout::FLAGS);
        if flags & FLAG_I == 0 {
            return Err(Error::Malformed);
        }
        if !matches!(p.buffer.as_ref()[layout::RESERVED][0], 0 | PROTO_ETHERNET) {
            return Err(Error::Malformed);
        }
        Ok(p)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn flags(&self) -> u16 {
        field::get_u16(self.buffer.as_ref(), layout::FLAGS)
    }

    /// True when the Group Policy extension is present.
    pub fn has_group(&self) -> bool {
        self.flags() & FLAG_G != 0
    }

    /// True when the "don't learn" bit is set.
    pub fn dont_learn(&self) -> bool {
        self.flags() & FLAG_D != 0
    }

    /// True when an upstream node already applied policy.
    pub fn policy_applied(&self) -> bool {
        self.flags() & FLAG_A != 0
    }

    /// The source GroupId, if the `G` flag is set.
    pub fn group(&self) -> Option<GroupId> {
        self.has_group()
            .then(|| GroupId(field::get_u16(self.buffer.as_ref(), layout::GROUP)))
    }

    /// The VN carried in the VNI field.
    pub fn vni(&self) -> VnId {
        VnId::new_unchecked(field::get_u24(self.buffer.as_ref(), layout::VNI))
    }

    /// What the payload is (a validated packet only carries known
    /// values; [`Packet::new_unchecked`] views read unknown bytes as
    /// IPv4).
    pub fn inner_proto(&self) -> InnerProto {
        if self.buffer.as_ref()[layout::RESERVED][0] == PROTO_ETHERNET {
            InnerProto::Ethernet
        } else {
            InnerProto::Ipv4
        }
    }

    /// Encapsulated payload (an Ethernet frame or IP packet).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[layout::PAYLOAD]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    fn set_flag(&mut self, flag: u16, on: bool) {
        let d = self.buffer.as_mut();
        let mut f = field::get_u16(d, layout::FLAGS);
        if on {
            f |= flag;
        } else {
            f &= !flag;
        }
        field::set_u16(d, layout::FLAGS, f);
    }

    /// Writes the mandatory `I` flag and zeroes reserved fields.
    pub fn fill_defaults(&mut self) {
        let d = self.buffer.as_mut();
        field::set_u16(d, layout::FLAGS, FLAG_I);
        field::set_u16(d, layout::GROUP, 0);
        d[layout::RESERVED.start] = 0;
    }

    /// Sets the source GroupId (also sets the `G` flag).
    pub fn set_group(&mut self, g: GroupId) {
        self.set_flag(FLAG_G, true);
        field::set_u16(self.buffer.as_mut(), layout::GROUP, g.raw());
    }

    /// Sets the "don't learn" bit.
    pub fn set_dont_learn(&mut self, on: bool) {
        self.set_flag(FLAG_D, on);
    }

    /// Sets the "policy applied" bit.
    pub fn set_policy_applied(&mut self, on: bool) {
        self.set_flag(FLAG_A, on);
    }

    /// Sets the VNI to `vn`.
    pub fn set_vni(&mut self, vn: VnId) {
        field::set_u24(self.buffer.as_mut(), layout::VNI, vn.raw());
    }

    /// Sets the next-protocol byte.
    pub fn set_inner_proto(&mut self, proto: InnerProto) {
        self.buffer.as_mut()[layout::RESERVED.start] = match proto {
            InnerProto::Ipv4 => 0,
            InnerProto::Ethernet => PROTO_ETHERNET,
        };
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[layout::PAYLOAD]
    }
}

/// Parsed representation of a VXLAN-GPO header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Repr {
    /// The VN (VNI field).
    pub vn: VnId,
    /// Source GroupId, when the `G` extension is present.
    pub group: Option<GroupId>,
    /// Policy-applied bit (`A`).
    pub policy_applied: bool,
    /// Don't-learn bit (`D`): egress must not source-learn from this
    /// packet. Plumbed through `Repr` so the bit survives a
    /// parse → emit round trip (it used to be view-only and was lost).
    pub dont_learn: bool,
    /// What the payload is (IPv4 packet or Ethernet frame).
    pub inner_proto: InnerProto,
    /// Encapsulated payload length.
    pub payload_len: usize,
}

impl Repr {
    /// Parses a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            vn: packet.vni(),
            group: packet.group(),
            policy_applied: packet.policy_applied(),
            dont_learn: packet.dont_learn(),
            inner_proto: packet.inner_proto(),
            payload_len: packet.payload().len(),
        }
    }

    /// Bytes needed to emit header + payload.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into a packet view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.fill_defaults();
        packet.set_vni(self.vn);
        if let Some(g) = self.group {
            packet.set_group(g);
        }
        packet.set_policy_applied(self.policy_applied);
        packet.set_dont_learn(self.dont_learn);
        packet.set_inner_proto(self.inner_proto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_group() {
        let repr = Repr {
            vn: VnId::new(0x00AB_CDEF & VnId::MAX).unwrap(),
            group: Some(GroupId(0xBEEF)),
            policy_applied: false,
            dont_learn: false,
            inner_proto: InnerProto::Ipv4,
            payload_len: 6,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(b"inner!");
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&pkt), repr);
        assert!(pkt.has_group());
        assert_eq!(pkt.payload(), b"inner!");
    }

    #[test]
    fn roundtrip_without_group() {
        let repr = Repr {
            vn: VnId::new(7).unwrap(),
            group: None,
            policy_applied: true,
            dont_learn: true,
            inner_proto: InnerProto::Ipv4,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.group(), None);
        assert!(pkt.policy_applied());
        assert_eq!(Repr::parse(&pkt), repr);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let buf = [0u8; 8];
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn nonzero_reserved_rejected() {
        let repr = Repr {
            vn: VnId::DEFAULT,
            group: None,
            policy_applied: false,
            dont_learn: false,
            inner_proto: InnerProto::Ipv4,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[7] = 1;
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn vni_carries_full_24_bits() {
        let repr = Repr {
            vn: VnId::new(VnId::MAX).unwrap(),
            group: None,
            policy_applied: false,
            dont_learn: false,
            inner_proto: InnerProto::Ipv4,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let pkt = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.vni().raw(), VnId::MAX);
    }

    #[test]
    fn dont_learn_flag() {
        let mut buf = [0u8; 8];
        let mut pkt = Packet::new_unchecked(&mut buf[..]);
        pkt.fill_defaults();
        pkt.set_dont_learn(true);
        assert!(pkt.dont_learn());
        pkt.set_dont_learn(false);
        assert!(!pkt.dont_learn());
    }
}
