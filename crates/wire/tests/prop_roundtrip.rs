//! Property-based round-trip and robustness tests for every wire format.
//!
//! Two invariant families:
//!
//! 1. **Round-trip**: for any valid `Repr`, `parse(emit(repr)) == repr`.
//! 2. **No panic on garbage**: `new_checked`/`parse` over arbitrary bytes
//!    returns `Ok` or `Err`, never panics — the smoltcp robustness rule.

use std::net::{Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;
use sda_types::{Eid, EidPrefix, GroupId, Ipv4Prefix, Ipv6Prefix, MacAddr, MacPrefix, Rloc, VnId};
use sda_wire::{arp, ethernet, ipv4, ipv6, lisp, udp, vxlan};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ipv6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_vn() -> impl Strategy<Value = VnId> {
    (0u32..=VnId::MAX).prop_map(|v| VnId::new(v).unwrap())
}

fn arb_eid() -> impl Strategy<Value = Eid> {
    prop_oneof![
        arb_ipv4().prop_map(Eid::V4),
        arb_ipv6().prop_map(Eid::V6),
        arb_mac().prop_map(Eid::Mac),
    ]
}

fn arb_prefix() -> impl Strategy<Value = EidPrefix> {
    prop_oneof![
        (arb_ipv4(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(a, l).unwrap().into()),
        (arb_ipv6(), 0u8..=128).prop_map(|(a, l)| Ipv6Prefix::new(a, l).unwrap().into()),
        (arb_mac(), 0u8..=48).prop_map(|(m, l)| MacPrefix::new(m, l).unwrap().into()),
    ]
}

fn arb_rloc() -> impl Strategy<Value = Rloc> {
    arb_ipv4().prop_map(Rloc)
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), ty in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let repr = ethernet::Repr { dst, src, ethertype: ty.into() };
        let mut buf = vec![0u8; repr.buffer_len() + payload.len()];
        let mut frame = ethernet::Frame::new_checked(&mut buf[..]).unwrap();
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&payload);
        let frame = ethernet::Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(ethernet::Repr::parse(&frame), repr);
        prop_assert_eq!(frame.payload(), &payload[..]);
    }

    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_ipv4(), tmac in arb_mac(), tip in arb_ipv4(), req in any::<bool>()) {
        let repr = arp::Repr {
            operation: if req { arp::Operation::Request } else { arp::Operation::Reply },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = arp::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        let pkt = arp::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(arp::Repr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ipv4(), dst in arb_ipv4(), proto in any::<u8>(), ttl in 1u8..=255, payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = ipv4::Repr {
            src, dst,
            protocol: proto.into(),
            payload_len: payload.len(),
            ttl,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = ipv4::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&payload);
        // Payload writes happen after emit; the IPv4 *header* checksum does
        // not cover the payload, so the packet must still validate.
        let pkt = ipv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(ipv4::Repr::parse(&pkt), repr);
    }

    #[test]
    fn ipv6_roundtrip(src in arb_ipv6(), dst in arb_ipv6(), proto in any::<u8>(), hl in 1u8..=255, payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = ipv6::Repr {
            src, dst,
            next_header: proto.into(),
            payload_len: payload.len(),
            hop_limit: hl,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = ipv6::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&payload);
        let pkt = ipv6::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(ipv6::Repr::parse(&pkt), repr);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    #[test]
    fn udp_roundtrip_and_checksum(sp in any::<u16>(), dp in any::<u16>(), src in arb_ipv4(), dst in arb_ipv4(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let repr = udp::Repr { src_port: sp, dst_port: dp, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = udp::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&payload);
        pkt.fill_checksum(src, dst);
        let pkt = udp::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(udp::Repr::parse(&pkt), repr);
        prop_assert!(pkt.verify_checksum(src, dst));
    }

    #[test]
    fn vxlan_roundtrip(vn in arb_vn(), group in proptest::option::of(any::<u16>().prop_map(GroupId)), applied in any::<bool>(), dont_learn in any::<bool>(), l2 in any::<bool>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let inner_proto = if l2 { vxlan::InnerProto::Ethernet } else { vxlan::InnerProto::Ipv4 };
        let repr = vxlan::Repr { vn, group, policy_applied: applied, dont_learn, inner_proto, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = vxlan::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(&payload);
        let pkt = vxlan::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(vxlan::Repr::parse(&pkt), repr);
    }

    /// Every strict prefix of a valid VXLAN-GPO packet must be an error
    /// (truncation can never be mistaken for success or panic).
    #[test]
    fn vxlan_truncations_all_error(vn in arb_vn(), group in any::<u16>().prop_map(GroupId), payload in proptest::collection::vec(any::<u8>(), 0..32)) {
        let repr = vxlan::Repr { vn, group: Some(group), policy_applied: false, dont_learn: false, inner_proto: vxlan::InnerProto::Ipv4, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut vxlan::Packet::new_unchecked(&mut buf[..]));
        for cut in 0..vxlan::HEADER_LEN {
            prop_assert!(vxlan::Packet::new_checked(&buf[..cut]).is_err());
        }
        prop_assert!(vxlan::Packet::new_checked(&buf[..]).is_ok());
    }

    /// Same for every LISP control message: all strict prefixes error.
    #[test]
    fn lisp_truncations_all_error(nonce in any::<u64>(), vn in arb_vn(), eid in arb_eid(), prefix in arb_prefix(), rloc in arb_rloc()) {
        let msgs = [
            lisp::Message::MapRequest { nonce, smr: false, vn, eid, itr_rloc: rloc },
            lisp::Message::MapReply { nonce, vn, prefix, rloc: Some(rloc), negative: false, ttl_secs: 60 },
            lisp::Message::MapRegister { nonce, vn, eid, rloc, ttl_secs: 60, want_notify: true },
            lisp::Message::MapNotify { nonce, vn, eid, new_rloc: rloc },
            lisp::Message::Publish { nonce, vn, prefix, rloc, withdraw: false },
            lisp::Message::Subscribe { nonce, vn, subscriber: rloc },
        ];
        for msg in msgs {
            let bytes = msg.emit();
            for cut in 0..bytes.len() {
                prop_assert!(
                    lisp::Message::parse(&bytes[..cut]).is_err(),
                    "truncated {:?} at {} parsed", msg, cut
                );
            }
            prop_assert_eq!(lisp::Message::parse(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn lisp_map_request_roundtrip(nonce in any::<u64>(), smr in any::<bool>(), vn in arb_vn(), eid in arb_eid(), rloc in arb_rloc()) {
        let msg = lisp::Message::MapRequest { nonce, smr, vn, eid, itr_rloc: rloc };
        prop_assert_eq!(lisp::Message::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn lisp_map_reply_roundtrip(nonce in any::<u64>(), vn in arb_vn(), prefix in arb_prefix(), rloc in proptest::option::of(arb_rloc()), negative in any::<bool>(), ttl in any::<u32>()) {
        let msg = lisp::Message::MapReply { nonce, vn, prefix, rloc, negative, ttl_secs: ttl };
        prop_assert_eq!(lisp::Message::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn lisp_map_register_roundtrip(nonce in any::<u64>(), vn in arb_vn(), eid in arb_eid(), rloc in arb_rloc(), ttl in any::<u32>(), wn in any::<bool>()) {
        let msg = lisp::Message::MapRegister { nonce, vn, eid, rloc, ttl_secs: ttl, want_notify: wn };
        prop_assert_eq!(lisp::Message::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn lisp_publish_subscribe_roundtrip(nonce in any::<u64>(), vn in arb_vn(), prefix in arb_prefix(), rloc in arb_rloc(), withdraw in any::<bool>()) {
        let pubm = lisp::Message::Publish { nonce, vn, prefix, rloc, withdraw };
        prop_assert_eq!(lisp::Message::parse(&pubm.emit()).unwrap(), pubm);
        let subm = lisp::Message::Subscribe { nonce, vn, subscriber: rloc };
        prop_assert_eq!(lisp::Message::parse(&subm.emit()).unwrap(), subm);
    }

    #[test]
    fn parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = lisp::Message::parse(&bytes);
        let _ = ethernet::Frame::new_checked(&bytes[..]);
        let _ = arp::Packet::new_checked(&bytes[..]);
        let _ = ipv4::Packet::new_checked(&bytes[..]);
        let _ = ipv6::Packet::new_checked(&bytes[..]);
        let _ = udp::Packet::new_checked(&bytes[..]);
        let _ = vxlan::Packet::new_checked(&bytes[..]);
    }

    #[test]
    fn lisp_bitflip_never_panics(msg_idx in 0usize..4, flip_byte in 0usize..16, flip_bit in 0u8..8, nonce in any::<u64>(), vn in arb_vn(), eid in arb_eid(), rloc in arb_rloc()) {
        let msgs = [
            lisp::Message::MapRequest { nonce, smr: false, vn, eid, itr_rloc: rloc },
            lisp::Message::MapRegister { nonce, vn, eid, rloc, ttl_secs: 60, want_notify: false },
            lisp::Message::MapNotify { nonce, vn, eid, new_rloc: rloc },
            lisp::Message::Subscribe { nonce, vn, subscriber: rloc },
        ];
        let mut bytes = msgs[msg_idx].emit();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = lisp::Message::parse(&bytes); // must not panic
    }
}

/// A full fabric packet assembled layer by layer must decapsulate back to
/// the same inner payload: outer IPv4 → UDP → VXLAN-GPO → inner IPv4.
#[test]
fn full_encapsulation_stack_roundtrip() {
    let inner_repr = ipv4::Repr {
        src: Ipv4Addr::new(10, 1, 0, 5),
        dst: Ipv4Addr::new(10, 2, 0, 9),
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: 12,
        ttl: 64,
    };
    let mut inner = vec![0u8; inner_repr.buffer_len()];
    let mut ipkt = ipv4::Packet::new_unchecked(&mut inner[..]);
    inner_repr.emit(&mut ipkt);
    ipkt.payload_mut().copy_from_slice(b"hello fabric");

    let vx_repr = vxlan::Repr {
        vn: VnId::new(4097).unwrap(),
        group: Some(GroupId(17)),
        policy_applied: false,
        dont_learn: false,
        inner_proto: vxlan::InnerProto::Ipv4,
        payload_len: inner.len(),
    };
    let mut vx = vec![0u8; vx_repr.buffer_len()];
    let mut vpkt = vxlan::Packet::new_unchecked(&mut vx[..]);
    vx_repr.emit(&mut vpkt);
    vpkt.payload_mut().copy_from_slice(&inner);

    let udp_repr = udp::Repr {
        src_port: 49152,
        dst_port: udp::VXLAN_PORT,
        payload_len: vx.len(),
    };
    let src_rloc = Ipv4Addr::new(10, 255, 0, 1);
    let dst_rloc = Ipv4Addr::new(10, 255, 0, 2);
    let mut dgram = vec![0u8; udp_repr.buffer_len()];
    let mut upkt = udp::Packet::new_unchecked(&mut dgram[..]);
    udp_repr.emit(&mut upkt);
    upkt.payload_mut().copy_from_slice(&vx);
    upkt.fill_checksum(src_rloc, dst_rloc);

    let outer_repr = ipv4::Repr {
        src: src_rloc,
        dst: dst_rloc,
        protocol: ipv4::Protocol::Udp,
        payload_len: dgram.len(),
        ttl: 64,
    };
    let mut outer = vec![0u8; outer_repr.buffer_len()];
    let mut opkt = ipv4::Packet::new_unchecked(&mut outer[..]);
    outer_repr.emit(&mut opkt);
    opkt.payload_mut().copy_from_slice(&dgram);

    // Decapsulate.
    let opkt = ipv4::Packet::new_checked(&outer[..]).unwrap();
    assert_eq!(opkt.protocol(), ipv4::Protocol::Udp);
    let upkt = udp::Packet::new_checked(opkt.payload()).unwrap();
    assert!(upkt.verify_checksum(opkt.src_addr(), opkt.dst_addr()));
    assert_eq!(upkt.dst_port(), udp::VXLAN_PORT);
    let vpkt = vxlan::Packet::new_checked(upkt.payload()).unwrap();
    assert_eq!(vpkt.vni().raw(), 4097);
    assert_eq!(vpkt.group(), Some(GroupId(17)));
    let ipkt = ipv4::Packet::new_checked(vpkt.payload()).unwrap();
    assert_eq!(ipkt.payload(), b"hello fabric");
    assert_eq!(ipkt.dst_addr(), Ipv4Addr::new(10, 2, 0, 9));
}
