//! The chaos scenario pack: a full-fabric fault campaign with a
//! convergence verdict.
//!
//! Where [`campus`](crate::campus) and [`warehouse`](crate::warehouse)
//! reproduce the paper's *measured* workloads, this module stresses the
//! control plane the way an unlucky week of operations would:
//!
//! * a **reboot storm** — every access switch in a wing power-cycles on
//!   a stagger (≥100 edges at full scale), losing volatile state and
//!   recovering from its local endpoint inventory;
//! * a **routing-server restart mid-churn** — the mapping database,
//!   subscriber list and ARP table vanish; edges repopulate the database
//!   through registration refreshes, borders resync by snapshot;
//! * a **roam storm on a lossy fabric** — a slice of the population
//!   changes edges while every link drops a percentage of messages
//!   (Map-Requests, Registers, Publishes included).
//!
//! Edge↔policy-server links are pinned lossless for the campaign
//! (out-of-band management network): authentication has no retransmit
//! path, and the chaos under test is the *LISP* control plane's.
//!
//! The campaign ends with a quiet tail longer than the map-cache idle
//! timeout (stale reactive entries must evict), a
//! [`check_convergence`] pass against the expected endpoint placement,
//! and a probe round that must deliver loss-free on the healed fabric.
//! Same seed ⇒ byte-identical run, faults and drops included.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::controller::{BorderHandle, EdgeHandle, FabricBuilder};
use sda_core::{check_convergence, ConvergenceReport, EndpointIdentity, ExpectedPlacement, Fabric};
use sda_simnet::{Fault, FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

/// The one group everyone belongs to (policy is not under test here).
pub const USERS: GroupId = GroupId(10);

/// Campaign shape. Presets: [`ChaosParams::storm`] (full scale),
/// [`ChaosParams::reduced`] (CI scale).
#[derive(Clone, Debug)]
pub struct ChaosParams {
    /// Label used in output.
    pub name: &'static str,
    /// Total endpoints.
    pub endpoints: usize,
    /// Edge routers.
    pub edges: usize,
    /// Border routers.
    pub borders: usize,
    /// How many edges the reboot storm power-cycles.
    pub reboot_edges: usize,
    /// Fraction of endpoints that change edges mid-campaign.
    pub roam_share: f64,
    /// Fabric-wide loss probability during the chaos window.
    pub fabric_loss: f64,
    /// RNG seed (schedule and fabric).
    pub seed: u64,
}

impl ChaosParams {
    /// Full scale: a 120-edge fabric whose storm reboots 110 of them.
    pub fn storm() -> Self {
        ChaosParams {
            name: "storm",
            endpoints: 240,
            edges: 120,
            borders: 2,
            reboot_edges: 110,
            roam_share: 0.05,
            fabric_loss: 0.05,
            seed: 0xC4A05,
        }
    }

    /// CI scale: same phases, ~5× smaller fabric.
    pub fn reduced() -> Self {
        ChaosParams {
            name: "reduced",
            endpoints: 48,
            edges: 24,
            borders: 1,
            reboot_edges: 20,
            roam_share: 0.1,
            fabric_loss: 0.05,
            seed: 0xC4A05,
        }
    }

    /// [`Self::reduced`] when `SDA_CHAOS_REDUCED` is set (CI),
    /// [`Self::storm`] otherwise.
    pub fn from_env() -> Self {
        if std::env::var_os("SDA_CHAOS_REDUCED").is_some() {
            Self::reduced()
        } else {
            Self::storm()
        }
    }
}

/// Campaign phase boundaries (seconds). The roam window starts after
/// the last storm restart (16 + 110·0.12 + 2 ≈ 31.3 at full scale);
/// the convergence check sits off the 5-second control-plane timer
/// grid so it never samples a just-fired refresh mid-round-trip.
mod t {
    /// Attaches are staggered over `[0, ATTACH)`.
    pub const ATTACH: u64 = 10;
    /// Fabric-wide loss switches on.
    pub const LOSS_ON: u64 = 15;
    /// First storm crash.
    pub const STORM: u64 = 16;
    /// Routing server crashes...
    pub const SERVER_DOWN: u64 = 20;
    /// ...and restarts empty.
    pub const SERVER_UP: u64 = 24;
    /// Roams are staggered over `[ROAM_FROM, ROAM_TO)`.
    pub const ROAM_FROM: u64 = 33;
    /// End of the roam window.
    pub const ROAM_TO: u64 = 39;
    /// Fabric-wide loss heals; the quiet tail begins.
    pub const LOSS_OFF: u64 = 45;
    /// Convergence is checked here (quiet tail ≫ idle timeout).
    pub const CHECK: u64 = 91;
    /// Probe round on the healed fabric.
    pub const PROBE: u64 = 92;
    /// End of the run.
    pub const END: u64 = 99;
}

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

/// One endpoint: identity, home edge, and where it ends up.
#[derive(Clone, Copy, Debug)]
pub struct Member {
    /// Identity (credentials + addresses).
    pub identity: EndpointIdentity,
    /// Edge it attaches to first.
    pub home: usize,
    /// Edge it is on when the campaign ends (≠ `home` for roamers).
    pub fin: usize,
}

/// The fault/retry counters every chaos run reports.
pub const CHAOS_COUNTERS: &[&str] = &[
    "simnet.faults_injected",
    "simnet.node_crashes",
    "simnet.node_restarts",
    "simnet.fault_msg_drops",
    "simnet.link_drops",
    "fabric.map_request_retries",
    "fabric.resolve_timeouts",
    "fabric.register_retries",
    "fabric.register_timeouts",
    "fabric.edge_restarts",
    "ctrl.server_restarts",
    "border.subscribe_retries",
    "border.publish_gaps",
    "border.publish_regressions",
    "border.resyncs_requested",
    "border.resyncs_completed",
];

/// What a campaign run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The convergence verdict at the end of the quiet tail.
    pub report: ConvergenceReport,
    /// Probes sent on the healed fabric.
    pub probes_sent: u64,
    /// Probes delivered (must equal `probes_sent`: loss is healed).
    pub probes_delivered: u64,
    /// `(name, value)` for every counter in [`CHAOS_COUNTERS`].
    pub counters: Vec<(&'static str, u64)>,
}

impl ChaosOutcome {
    /// Prints the observability block scenario binaries and tests emit.
    pub fn print(&self, label: &str) {
        println!("chaos[{label}] convergence: {:?}", self.report);
        println!(
            "chaos[{label}] probes: {}/{} delivered",
            self.probes_delivered, self.probes_sent
        );
        for (name, value) in &self.counters {
            println!("chaos[{label}]   {name} = {value}");
        }
    }
}

/// A built campaign: fabric wired, faults, churn and traffic scheduled.
pub struct ChaosScenario {
    /// The fabric under test.
    pub fabric: Fabric,
    /// Edge handles, index-aligned with [`Member::home`]/[`Member::fin`].
    pub edges: Vec<EdgeHandle>,
    /// Border handles.
    pub borders: Vec<BorderHandle>,
    /// Everyone, with final placement.
    pub roster: Vec<Member>,
    /// The one overlay VN.
    pub vn: VnId,
    /// Parameters used.
    pub params: ChaosParams,
}

impl ChaosScenario {
    /// Builds the fabric and pre-schedules the whole campaign.
    pub fn build(params: ChaosParams) -> ChaosScenario {
        assert!(params.reboot_edges <= params.edges);
        assert!(params.edges >= 2, "roams need somewhere to go");
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut b = FabricBuilder::new(params.seed);
        {
            let cfg = b.config_mut();
            // Fast control plane + short idle timeout: the quiet tail
            // (LOSS_OFF..CHECK, 46 s) covers several refresh rounds and
            // more than two idle-eviction horizons.
            cfg.refresh_interval = Some(SimDuration::from_secs(5));
            cfg.subscribe_refresh_interval = Some(SimDuration::from_secs(5));
            cfg.purge_interval = Some(SimDuration::from_secs(5));
            cfg.register_ttl_secs = 30;
            cfg.idle_timeout = SimDuration::from_secs(20);
            cfg.eviction_interval = SimDuration::from_secs(2);
        }
        let vn = b.add_vn(
            100,
            Ipv4Prefix::new(std::net::Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
        );
        b.allow(vn, USERS, USERS);
        let edges: Vec<EdgeHandle> = (0..params.edges)
            .map(|i| b.add_edge(format!("chaos-e{i}")))
            .collect();
        let borders: Vec<BorderHandle> = (0..params.borders)
            .map(|i| b.add_border(format!("chaos-b{i}"), vec![]))
            .collect();

        let mut roster: Vec<Member> = (0..params.endpoints)
            .map(|i| Member {
                identity: b.mint_endpoint(vn, USERS),
                home: i % params.edges,
                fin: i % params.edges,
            })
            .collect();

        let mut fabric = b.build();

        // Attach everyone, staggered over the first seconds.
        for (i, m) in roster.iter().enumerate() {
            let at =
                SimTime::ZERO + SimDuration::from_secs_f64(rng.gen::<f64>() * t::ATTACH as f64);
            fabric.attach_at(at, edges[m.home], m.identity, PortId(i as u16));
        }

        // The fault plan: lossless management links to the policy server
        // first (auth has no retransmit path — see module docs), then
        // the three chaos phases.
        let policy = fabric.policy_node();
        let mut plan = FaultPlan::new();
        for &e in &edges {
            plan = plan.at(
                SimTime::ZERO,
                Fault::Loss {
                    a: fabric.edge_node(e),
                    b: policy,
                    loss: 0.0,
                },
            );
        }
        plan = plan
            .default_loss_window(params.fabric_loss, secs(t::LOSS_ON), secs(t::LOSS_OFF))
            .reboot(
                fabric.routing_node(),
                secs(t::SERVER_DOWN),
                secs(t::SERVER_UP),
            );
        for (i, &e) in edges.iter().take(params.reboot_edges).enumerate() {
            let down = secs(t::STORM) + SimDuration::from_millis(120).saturating_mul(i as u64);
            plan = plan.reboot(fabric.edge_node(e), down, down + SimDuration::from_secs(2));
        }
        fabric.schedule_faults(&plan);

        // Roam storm: a slice of the population changes edges after the
        // reboot storm settles (a detach aimed at a crashed edge would
        // be lost with the power, leaving two edges claiming one
        // endpoint — a fabric with out-of-band port state; here roams
        // go switch-to-switch while both are up).
        let roam_count = (params.endpoints as f64 * params.roam_share).round() as usize;
        let roam_span = (t::ROAM_TO - t::ROAM_FROM) as f64;
        for k in 0..roam_count {
            let i = k * params.endpoints / roam_count.max(1);
            let m = roster[i];
            let mut dst = rng.gen_range(0..params.edges);
            if dst == m.home {
                dst = (dst + 1) % params.edges;
            }
            let at = secs(t::ROAM_FROM) + SimDuration::from_secs_f64(rng.gen::<f64>() * roam_span);
            fabric.detach_at(at, edges[m.home], m.identity.mac);
            fabric.attach_at(
                at + SimDuration::from_millis(500),
                edges[dst],
                m.identity,
                PortId(i as u16),
            );
            roster[i].fin = dst;
        }

        // Background traffic through the chaos window: drives reactive
        // resolutions (and their retransmits) under loss. Roamers stop
        // sending before their detach.
        for (i, m) in roster.iter().enumerate() {
            let send_until = if m.fin != m.home {
                t::ROAM_FROM
            } else {
                t::ROAM_TO
            };
            for f in 0..2u64 {
                let span = (send_until - t::ATTACH) as f64;
                let at = secs(t::ATTACH) + SimDuration::from_secs_f64(rng.gen::<f64>() * span);
                let peer =
                    &roster[(i + 1 + rng.gen_range(0..params.endpoints - 1)) % params.endpoints];
                fabric.send_at(
                    at,
                    edges[m.home],
                    m.identity.mac,
                    Eid::V4(peer.identity.ipv4),
                    256,
                    (i as u64) << 8 | f,
                    false,
                );
            }
        }

        ChaosScenario {
            fabric,
            edges,
            borders,
            roster,
            vn,
            params,
        }
    }

    /// Where every endpoint must be once the faults cease.
    pub fn expected(&self) -> ExpectedPlacement {
        let mut want = ExpectedPlacement::new();
        for m in &self.roster {
            let rloc = self.fabric.edge(self.edges[m.fin]).rloc();
            want.insert((self.vn, Eid::V4(m.identity.ipv4)), rloc);
            want.insert((self.vn, Eid::Mac(m.identity.mac)), rloc);
        }
        want
    }

    /// Runs the campaign: chaos, quiet tail, convergence check, probes.
    pub fn run(&mut self) -> ChaosOutcome {
        self.fabric.run_until(secs(t::CHECK));
        let report = check_convergence(&self.fabric, &self.expected());

        // Probe round on the healed fabric: every endpoint reaches a
        // peer on a different (final) edge, loss-free.
        let delivered_before = self.fabric.metrics().counter("fabric.delivered");
        let mut probes = 0u64;
        let roster = self.roster.clone();
        for (i, m) in roster.iter().enumerate() {
            let Some(peer) = (1..roster.len())
                .map(|d| &roster[(i + d) % roster.len()])
                .find(|p| p.fin != m.fin)
            else {
                continue;
            };
            self.fabric.send_at(
                secs(t::PROBE) + SimDuration::from_millis(10).saturating_mul(i as u64),
                self.edges[m.fin],
                m.identity.mac,
                Eid::V4(peer.identity.ipv4),
                128,
                0xF000 + i as u64,
                false,
            );
            probes += 1;
        }
        self.fabric.run_until(secs(t::END));

        let m = self.fabric.metrics();
        ChaosOutcome {
            report,
            probes_sent: probes,
            probes_delivered: m.counter("fabric.delivered") - delivered_before,
            counters: CHAOS_COUNTERS.iter().map(|n| (*n, m.counter(n))).collect(),
        }
    }
}
