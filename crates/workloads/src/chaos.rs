//! The chaos scenario pack: a full-fabric fault campaign with a
//! convergence verdict.
//!
//! Where [`campus`](crate::campus) and [`warehouse`](crate::warehouse)
//! reproduce the paper's *measured* workloads, this module stresses the
//! control plane the way an unlucky week of operations would:
//!
//! * a **reboot storm** — every access switch in a wing power-cycles on
//!   a stagger (≥100 edges at full scale), losing volatile state and
//!   recovering from its local endpoint inventory;
//! * a **routing-server restart mid-churn** — the mapping database,
//!   subscriber list and ARP table vanish; edges repopulate the database
//!   through registration refreshes, borders resync by snapshot;
//! * a **roam storm on a lossy fabric** — a slice of the population
//!   changes edges while every link drops a percentage of messages
//!   (Map-Requests, Registers, Publishes included).
//!
//! Edge↔policy-server links are pinned lossless for the campaign
//! (out-of-band management network): authentication has no retransmit
//! path, and the chaos under test is the *LISP* control plane's.
//!
//! ## Overload variant
//!
//! [`ChaosParams::with_overload`] (preset [`ChaosParams::shard_storm`],
//! env `SDA_CHAOS_SHARDS=n`) layers the hardened control plane under
//! the same storm: a multi-shard map-server with per-class admission
//! budgets scaled to the refresh-wave size, bounded ingress queues on
//! every node, and one control shard crashed mid-storm (its database
//! slice lost) and restarted while the others keep serving. The
//! campaign then asserts *graceful* degradation, not absence of pain:
//! sheds and tail-drops are expected and counted
//! (`ctrl.shed_replies`, `simnet.ingress_drops`,
//! `fabric.server_busy_backoffs`, `fabric.jittered_retries` in the
//! counter block), but every bounded structure's high-water mark stays
//! ≤ its cap and the fabric still reaches the fault-free fixed point —
//! retry-after floors plus decorrelated per-node jitter keep the shed
//! herds from re-synchronizing into lockstep waves.
//!
//! The campaign ends with a quiet tail longer than the map-cache idle
//! timeout (stale reactive entries must evict), a
//! [`check_convergence`] pass against the expected endpoint placement,
//! and a probe round that must deliver loss-free on the healed fabric.
//! Same seed ⇒ byte-identical run, faults and drops included.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::controller::{BorderHandle, EdgeHandle, FabricBuilder};
use sda_core::{
    check_convergence, AdmissionConfig, ClassBudget, ConvergenceReport, EndpointIdentity,
    ExpectedPlacement, Fabric,
};
use sda_simnet::{Fault, FaultPlan, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, VnId};

/// The one group everyone belongs to (policy is not under test here).
pub const USERS: GroupId = GroupId(10);

/// Campaign shape. Presets: [`ChaosParams::storm`] (full scale),
/// [`ChaosParams::reduced`] (CI scale).
#[derive(Clone, Debug)]
pub struct ChaosParams {
    /// Label used in output.
    pub name: &'static str,
    /// Total endpoints.
    pub endpoints: usize,
    /// Edge routers.
    pub edges: usize,
    /// Border routers.
    pub borders: usize,
    /// How many edges the reboot storm power-cycles.
    pub reboot_edges: usize,
    /// Fraction of endpoints that change edges mid-campaign.
    pub roam_share: f64,
    /// Fabric-wide loss probability during the chaos window.
    pub fabric_loss: f64,
    /// RNG seed (schedule and fabric).
    pub seed: u64,
    /// Map-server shards on the routing server (1 = the paper's single
    /// server).
    pub ctrl_shards: usize,
    /// Crash one shard mid-campaign (requires `ctrl_shards > 1`): its
    /// slice of the mapping database is lost and rebuilt by the
    /// registration refreshes after the shard restarts.
    pub shard_outage: bool,
    /// Routing-server admission control: per-shard token buckets that
    /// shed over-budget messages with `ServerBusy` retry-after replies.
    pub admission: Option<AdmissionConfig>,
    /// Per-node bounded ingress queue (tail-drop beyond the cap).
    pub ingress_cap: Option<usize>,
}

impl ChaosParams {
    /// Full scale: a 120-edge fabric whose storm reboots 110 of them.
    pub fn storm() -> Self {
        ChaosParams {
            name: "storm",
            endpoints: 240,
            edges: 120,
            borders: 2,
            reboot_edges: 110,
            roam_share: 0.05,
            fabric_loss: 0.05,
            seed: 0xC4A05,
            ctrl_shards: 1,
            shard_outage: false,
            admission: None,
            ingress_cap: None,
        }
    }

    /// CI scale: same phases, ~5× smaller fabric.
    pub fn reduced() -> Self {
        ChaosParams {
            name: "reduced",
            endpoints: 48,
            edges: 24,
            borders: 1,
            reboot_edges: 20,
            roam_share: 0.1,
            fabric_loss: 0.05,
            seed: 0xC4A05,
            ctrl_shards: 1,
            shard_outage: false,
            admission: None,
            ingress_cap: None,
        }
    }

    /// The overload campaign: the same storm against a sharded,
    /// admission-guarded, bounded-queue control plane, with one shard
    /// crashed mid-storm. The budgets are sized so a synchronized
    /// refresh wave *must* shed (burst < wave) while the sustained rate
    /// comfortably drains the backlog before the next wave — the
    /// campaign proves degradation, not collapse.
    pub fn shard_storm() -> Self {
        ChaosParams {
            name: "shard-storm",
            ..Self::storm().with_overload(4)
        }
    }

    /// Applies the overload-hardening knobs on top of a base preset:
    /// `shards` map-server shards, per-shard admission budgets, a
    /// bounded per-node ingress queue and a mid-campaign shard outage.
    ///
    /// The campaign's single-/16 EID plan parks every IPv4 EID on one
    /// shard and every MAC EID on another (prefix-aligned partition), so
    /// each synchronized refresh wave hits one shard with the *whole*
    /// family's registers at once. Budgets scale with the population:
    /// burst well below the wave (every wave sheds) and a sustained rate
    /// that drains the backlog in under a second (every wave converges).
    pub fn with_overload(mut self, shards: usize) -> Self {
        assert!(shards > 1, "overload campaign needs a sharded server");
        let wave = self.endpoints as f64; // one family's refresh wave
        self.ctrl_shards = shards;
        self.shard_outage = true;
        self.admission = Some(AdmissionConfig {
            requests: ClassBudget::new((2.0 * wave).max(100.0), (wave / 4.0).max(16.0)),
            registers: ClassBudget::new((2.0 * wave).max(100.0), (wave / 8.0).max(8.0)),
            subscribes: ClassBudget::new(10.0, 4.0),
            retry_after: SimDuration::from_millis(300),
        });
        self.ingress_cap = Some(512);
        self
    }

    /// [`Self::reduced`] when `SDA_CHAOS_REDUCED` is set (CI),
    /// [`Self::storm`] otherwise; `SDA_CHAOS_SHARDS=<n>` (n > 1) layers
    /// the overload campaign ([`Self::with_overload`]) on top.
    pub fn from_env() -> Self {
        let base = if std::env::var_os("SDA_CHAOS_REDUCED").is_some() {
            Self::reduced()
        } else {
            Self::storm()
        };
        match std::env::var("SDA_CHAOS_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 1 => ChaosParams {
                name: if base.ctrl_shards == 1 && base.edges >= 100 {
                    "shard-storm"
                } else {
                    "shard-reduced"
                },
                ..base.with_overload(n)
            },
            _ => base,
        }
    }
}

/// Campaign phase boundaries (seconds). The roam window starts after
/// the last storm restart (16 + 110·0.12 + 2 ≈ 31.3 at full scale);
/// the convergence check sits off the 5-second control-plane timer
/// grid so it never samples a just-fired refresh mid-round-trip.
mod t {
    /// Attaches are staggered over `[0, ATTACH)`.
    pub const ATTACH: u64 = 10;
    /// Fabric-wide loss switches on.
    pub const LOSS_ON: u64 = 15;
    /// First storm crash.
    pub const STORM: u64 = 16;
    /// Routing server crashes...
    pub const SERVER_DOWN: u64 = 20;
    /// ...and restarts empty.
    pub const SERVER_UP: u64 = 24;
    /// One map-server shard crashes (overload campaigns only)...
    pub const SHARD_DOWN: u64 = 28;
    /// ...and restarts empty mid-roam-storm.
    pub const SHARD_UP: u64 = 34;
    /// Roams are staggered over `[ROAM_FROM, ROAM_TO)`.
    pub const ROAM_FROM: u64 = 33;
    /// End of the roam window.
    pub const ROAM_TO: u64 = 39;
    /// Fabric-wide loss heals; the quiet tail begins.
    pub const LOSS_OFF: u64 = 45;
    /// Convergence is checked here (quiet tail ≫ idle timeout). Off the
    /// 5-second refresh grid and the 2-second eviction grid, with 4 s of
    /// headroom after the t=85 refresh wave: an admission-throttled
    /// wave needs a few shed→retry rounds to drain before the check
    /// samples the pending maps.
    pub const CHECK: u64 = 89;
    /// Probe round on the healed fabric.
    pub const PROBE: u64 = 91;
    /// End of the run.
    pub const END: u64 = 99;
}

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

/// One endpoint: identity, home edge, and where it ends up.
#[derive(Clone, Copy, Debug)]
pub struct Member {
    /// Identity (credentials + addresses).
    pub identity: EndpointIdentity,
    /// Edge it attaches to first.
    pub home: usize,
    /// Edge it is on when the campaign ends (≠ `home` for roamers).
    pub fin: usize,
}

/// The fault/retry counters every chaos run reports.
pub const CHAOS_COUNTERS: &[&str] = &[
    "simnet.faults_injected",
    "simnet.node_crashes",
    "simnet.node_restarts",
    "simnet.fault_msg_drops",
    "simnet.link_drops",
    "fabric.map_request_retries",
    "fabric.resolve_timeouts",
    "fabric.register_retries",
    "fabric.register_timeouts",
    "fabric.edge_restarts",
    "ctrl.server_restarts",
    "border.subscribe_retries",
    "border.publish_gaps",
    "border.publish_regressions",
    "border.resyncs_requested",
    "border.resyncs_completed",
    "simnet.ingress_drops",
    "simnet.shard_crashes",
    "simnet.shard_restarts",
    "ctrl.shed_replies",
    "ctrl.shard_drops",
    "fabric.server_busy_backoffs",
    "fabric.negative_cache_hits",
    "fabric.jittered_retries",
    "fabric.resolve_evictions",
];

/// What a campaign run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The convergence verdict at the end of the quiet tail.
    pub report: ConvergenceReport,
    /// Probes sent on the healed fabric.
    pub probes_sent: u64,
    /// Probes delivered (must equal `probes_sent`: loss is healed).
    pub probes_delivered: u64,
    /// `(name, value)` for every counter in [`CHAOS_COUNTERS`].
    pub counters: Vec<(&'static str, u64)>,
    /// High-water mark of the routing server's ingress queue.
    pub server_queue_peak: u32,
    /// The per-node ingress cap the campaign ran with, if bounded.
    pub queue_cap: Option<usize>,
}

impl ChaosOutcome {
    /// Prints the observability block scenario binaries and tests emit.
    pub fn print(&self, label: &str) {
        println!("chaos[{label}] convergence: {:?}", self.report);
        println!(
            "chaos[{label}] probes: {}/{} delivered",
            self.probes_delivered, self.probes_sent
        );
        match self.queue_cap {
            Some(cap) => println!(
                "chaos[{label}] server queue peak: {} (cap {cap})",
                self.server_queue_peak
            ),
            None => println!(
                "chaos[{label}] server queue peak: {} (unbounded)",
                self.server_queue_peak
            ),
        }
        for (name, value) in &self.counters {
            println!("chaos[{label}]   {name} = {value}");
        }
    }
}

/// A built campaign: fabric wired, faults, churn and traffic scheduled.
pub struct ChaosScenario {
    /// The fabric under test.
    pub fabric: Fabric,
    /// Edge handles, index-aligned with [`Member::home`]/[`Member::fin`].
    pub edges: Vec<EdgeHandle>,
    /// Border handles.
    pub borders: Vec<BorderHandle>,
    /// Everyone, with final placement.
    pub roster: Vec<Member>,
    /// The one overlay VN.
    pub vn: VnId,
    /// Parameters used.
    pub params: ChaosParams,
}

impl ChaosScenario {
    /// Builds the fabric and pre-schedules the whole campaign.
    pub fn build(params: ChaosParams) -> ChaosScenario {
        assert!(params.reboot_edges <= params.edges);
        assert!(params.edges >= 2, "roams need somewhere to go");
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut b = FabricBuilder::new(params.seed);
        {
            let cfg = b.config_mut();
            // Fast control plane + short idle timeout: the quiet tail
            // (LOSS_OFF..CHECK, 46 s) covers several refresh rounds and
            // more than two idle-eviction horizons.
            cfg.refresh_interval = Some(SimDuration::from_secs(5));
            cfg.subscribe_refresh_interval = Some(SimDuration::from_secs(5));
            cfg.purge_interval = Some(SimDuration::from_secs(5));
            cfg.register_ttl_secs = 30;
            cfg.idle_timeout = SimDuration::from_secs(20);
            cfg.eviction_interval = SimDuration::from_secs(2);
            cfg.ctrl_shards = params.ctrl_shards;
            cfg.admission = params.admission;
            cfg.node_ingress_cap = params.ingress_cap;
        }
        let vn = b.add_vn(
            100,
            Ipv4Prefix::new(std::net::Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
        );
        b.allow(vn, USERS, USERS);
        let edges: Vec<EdgeHandle> = (0..params.edges)
            .map(|i| b.add_edge(format!("chaos-e{i}")))
            .collect();
        let borders: Vec<BorderHandle> = (0..params.borders)
            .map(|i| b.add_border(format!("chaos-b{i}"), vec![]))
            .collect();

        let mut roster: Vec<Member> = (0..params.endpoints)
            .map(|i| Member {
                identity: b.mint_endpoint(vn, USERS),
                home: i % params.edges,
                fin: i % params.edges,
            })
            .collect();

        let mut fabric = b.build();

        // Attach everyone, staggered over the first seconds.
        for (i, m) in roster.iter().enumerate() {
            let at =
                SimTime::ZERO + SimDuration::from_secs_f64(rng.gen::<f64>() * t::ATTACH as f64);
            fabric.attach_at(at, edges[m.home], m.identity, PortId(i as u16));
        }

        // The fault plan: lossless management links to the policy server
        // first (auth has no retransmit path — see module docs), then
        // the three chaos phases.
        let policy = fabric.policy_node();
        let mut plan = FaultPlan::new();
        for &e in &edges {
            plan = plan.at(
                SimTime::ZERO,
                Fault::Loss {
                    a: fabric.edge_node(e),
                    b: policy,
                    loss: 0.0,
                },
            );
        }
        plan = plan
            .default_loss_window(params.fabric_loss, secs(t::LOSS_ON), secs(t::LOSS_OFF))
            .reboot(
                fabric.routing_node(),
                secs(t::SERVER_DOWN),
                secs(t::SERVER_UP),
            );
        for (i, &e) in edges.iter().take(params.reboot_edges).enumerate() {
            let down = secs(t::STORM) + SimDuration::from_millis(120).saturating_mul(i as u64);
            plan = plan.reboot(fabric.edge_node(e), down, down + SimDuration::from_secs(2));
        }
        if params.shard_outage {
            assert!(
                params.ctrl_shards > 1,
                "a shard outage needs a sharded server"
            );
            // Crash a middle shard while the roam storm is still running:
            // its database slice is lost; refresh registrations rebuild
            // it after the restart.
            plan = plan.shard_outage(
                fabric.routing_node(),
                1,
                secs(t::SHARD_DOWN),
                secs(t::SHARD_UP),
            );
        }
        fabric.schedule_faults(&plan);

        // Roam storm: a slice of the population changes edges after the
        // reboot storm settles (a detach aimed at a crashed edge would
        // be lost with the power, leaving two edges claiming one
        // endpoint — a fabric with out-of-band port state; here roams
        // go switch-to-switch while both are up).
        let roam_count = (params.endpoints as f64 * params.roam_share).round() as usize;
        let roam_span = (t::ROAM_TO - t::ROAM_FROM) as f64;
        for k in 0..roam_count {
            let i = k * params.endpoints / roam_count.max(1);
            let m = roster[i];
            let mut dst = rng.gen_range(0..params.edges);
            if dst == m.home {
                dst = (dst + 1) % params.edges;
            }
            let at = secs(t::ROAM_FROM) + SimDuration::from_secs_f64(rng.gen::<f64>() * roam_span);
            fabric.detach_at(at, edges[m.home], m.identity.mac);
            fabric.attach_at(
                at + SimDuration::from_millis(500),
                edges[dst],
                m.identity,
                PortId(i as u16),
            );
            roster[i].fin = dst;
        }

        // Background traffic through the chaos window: drives reactive
        // resolutions (and their retransmits) under loss. Roamers stop
        // sending before their detach.
        for (i, m) in roster.iter().enumerate() {
            let send_until = if m.fin != m.home {
                t::ROAM_FROM
            } else {
                t::ROAM_TO
            };
            for f in 0..2u64 {
                let span = (send_until - t::ATTACH) as f64;
                let at = secs(t::ATTACH) + SimDuration::from_secs_f64(rng.gen::<f64>() * span);
                let peer =
                    &roster[(i + 1 + rng.gen_range(0..params.endpoints - 1)) % params.endpoints];
                fabric.send_at(
                    at,
                    edges[m.home],
                    m.identity.mac,
                    Eid::V4(peer.identity.ipv4),
                    256,
                    (i as u64) << 8 | f,
                    false,
                );
            }
        }

        ChaosScenario {
            fabric,
            edges,
            borders,
            roster,
            vn,
            params,
        }
    }

    /// Where every endpoint must be once the faults cease.
    pub fn expected(&self) -> ExpectedPlacement {
        let mut want = ExpectedPlacement::new();
        for m in &self.roster {
            let rloc = self.fabric.edge(self.edges[m.fin]).rloc();
            want.insert((self.vn, Eid::V4(m.identity.ipv4)), rloc);
            want.insert((self.vn, Eid::Mac(m.identity.mac)), rloc);
        }
        want
    }

    /// Runs the campaign: chaos, quiet tail, convergence check, probes.
    pub fn run(&mut self) -> ChaosOutcome {
        self.fabric.run_until(secs(t::CHECK));
        let report = check_convergence(&self.fabric, &self.expected());

        // Probe round on the healed fabric: every endpoint reaches a
        // peer on a different (final) edge, loss-free.
        let delivered_before = self.fabric.metrics().counter("fabric.delivered");
        let mut probes = 0u64;
        let roster = self.roster.clone();
        for (i, m) in roster.iter().enumerate() {
            let Some(peer) = (1..roster.len())
                .map(|d| &roster[(i + d) % roster.len()])
                .find(|p| p.fin != m.fin)
            else {
                continue;
            };
            self.fabric.send_at(
                secs(t::PROBE) + SimDuration::from_millis(10).saturating_mul(i as u64),
                self.edges[m.fin],
                m.identity.mac,
                Eid::V4(peer.identity.ipv4),
                128,
                0xF000 + i as u64,
                false,
            );
            probes += 1;
        }
        self.fabric.run_until(secs(t::END));

        let routing = self.fabric.routing_node();
        let server_queue_peak = self.fabric.sim_mut().ingress_peak(routing);
        let m = self.fabric.metrics();
        ChaosOutcome {
            report,
            probes_sent: probes,
            probes_delivered: m.counter("fabric.delivered") - delivered_before,
            counters: CHAOS_COUNTERS.iter().map(|n| (*n, m.counter(n))).collect(),
            server_queue_peak,
            queue_cap: self.params.ingress_cap,
        }
    }
}
