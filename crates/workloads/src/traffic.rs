//! Popularity sampling: a small Zipf sampler over ranks.
//!
//! Endpoint communication in enterprises is heavily skewed — a few
//! servers and printers take most flows. The campus model ranks
//! always-on infrastructure first so it naturally absorbs the skew.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1 / (rank+1)^s`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative weights, normalized to the total.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn skewed_distribution_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 takes roughly 1/H(100) ≈ 19% of draws.
        assert!((15_000..25_000).contains(&counts[0]), "rank0={}", counts[0]);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "uniform expected, got {c}");
        }
    }

    #[test]
    fn all_ranks_reachable() {
        let z = ZipfSampler::new(5, 1.5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
