//! The campus diurnal workload (Fig. 9, Tables 3–5).
//!
//! Reproduces the presence and traffic dynamics the paper measured on
//! two live buildings:
//!
//! * **Humans** arrive between 8:00–10:00 on workdays, leave between
//!   17:00–20:00, and are absent on weekends.
//! * An **always-on share** (desktops, VoIP phones, cameras, servers —
//!   "end-hosts that are permanently connected... do not follow the
//!   day/night routine") attaches once and stays.
//! * While present, endpoints open flows toward popularity-skewed
//!   destinations (always-on infrastructure ranks most popular) and
//!   occasionally the Internet via the border.
//! * At night, always-on endpoints keep chattering; flows toward
//!   *departed* endpoints resolve negatively, and the negative reply
//!   deletes the edge's FIB entry — the §4.2 explanation for building
//!   B's nighttime cache decay.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::controller::{BorderHandle, EdgeHandle, FabricBuilder};
use sda_core::Fabric;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};

use crate::traffic::ZipfSampler;

/// Scenario parameters; presets mirror Table 3/4.
#[derive(Clone, Debug)]
pub struct CampusParams {
    /// Label used in output ("A", "B").
    pub name: &'static str,
    /// Total endpoints (Table 3: 150 / 450).
    pub endpoints: usize,
    /// Edge routers (Table 4: 7 / 6).
    pub edges: usize,
    /// Border routers (Table 4: 1 / 2).
    pub borders: usize,
    /// Fraction of endpoints that never leave (desktops, IoT, servers).
    pub always_on_share: f64,
    /// Probability a human endpoint shows up on a given workday
    /// (vacations, remote work, meetings elsewhere).
    pub attendance: f64,
    /// Simulated days.
    pub days: usize,
    /// Flows initiated per present endpoint per hour.
    pub flows_per_hour: f64,
    /// Probability a flow goes to the Internet instead of a peer.
    pub external_share: f64,
    /// Zipf exponent of destination popularity.
    pub popularity_skew: f64,
    /// Nighttime flows per always-on endpoint per hour (the building-B
    /// cache-cleaning chatter; ~0 for building A).
    pub night_flows_per_hour: f64,
    /// Map-cache idle timeout (edge cache decay horizon).
    pub idle_timeout: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl CampusParams {
    /// Building A of Table 3/4: 150 endpoints, 7 edges, 1 border.
    /// Low always-on share; effectively no night chatter — edge caches
    /// persist between workdays and clear over the weekend.
    pub fn building_a() -> Self {
        CampusParams {
            name: "A",
            endpoints: 150,
            edges: 7,
            borders: 1,
            always_on_share: 0.13,
            attendance: 0.62,
            days: 7,
            flows_per_hour: 2.2,
            external_share: 0.2,
            popularity_skew: 1.0,
            night_flows_per_hour: 0.05,
            idle_timeout: SimDuration::from_hours(40),
            seed: 0xA,
        }
    }

    /// Building B: 450 endpoints, 6 edges, 2 borders, a large always-on
    /// population and meaningful night chatter.
    pub fn building_b() -> Self {
        CampusParams {
            name: "B",
            endpoints: 450,
            edges: 6,
            borders: 2,
            always_on_share: 0.5,
            attendance: 0.62,
            days: 7,
            flows_per_hour: 1.2,
            external_share: 0.2,
            popularity_skew: 1.6,
            night_flows_per_hour: 0.8,
            idle_timeout: SimDuration::from_hours(40),
            seed: 0xB,
        }
    }
}

/// One endpoint in the roster.
#[derive(Clone, Copy, Debug)]
pub struct Member {
    /// Identity (credentials + addresses).
    pub identity: sda_core::EndpointIdentity,
    /// Home edge.
    pub edge: EdgeHandle,
    /// Never detaches when true.
    pub always_on: bool,
}

/// A built campus scenario, ready to run.
pub struct CampusScenario {
    /// The fabric under test.
    pub fabric: Fabric,
    /// Edge handles (FIB series are named `fib.edge{i}`).
    pub edges: Vec<EdgeHandle>,
    /// Border handles (`fib.border{i}`).
    pub borders: Vec<BorderHandle>,
    /// Everyone.
    pub roster: Vec<Member>,
    /// Parameters used.
    pub params: CampusParams,
}

/// The users group.
pub const USERS: GroupId = GroupId(10);
/// The infrastructure group (always-on).
pub const INFRA: GroupId = GroupId(20);

impl CampusScenario {
    /// Builds the fabric and roster, and schedules the whole campaign.
    pub fn build(params: CampusParams) -> CampusScenario {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut b = FabricBuilder::new(params.seed);
        {
            let cfg = b.config_mut();
            cfg.fib_sample_interval = Some(SimDuration::from_hours(1));
            cfg.idle_timeout = params.idle_timeout;
            cfg.eviction_interval = SimDuration::from_mins(30);
            cfg.register_ttl_secs = 2 * 3600;
            cfg.refresh_interval = Some(SimDuration::from_mins(30));
            cfg.purge_interval = Some(SimDuration::from_mins(15));
        }
        let vn = b.add_vn(
            100,
            Ipv4Prefix::new(std::net::Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
        );
        // Open intra-campus policy: users↔users, users↔infra, infra↔infra.
        for src in [USERS, INFRA] {
            for dst in [USERS, INFRA] {
                b.allow(vn, src, dst);
            }
        }
        let edges: Vec<EdgeHandle> = (0..params.edges)
            .map(|i| b.add_edge(format!("edge{}{}", params.name, i)))
            .collect();
        let default_route = Ipv4Prefix::new(std::net::Ipv4Addr::new(0, 0, 0, 0), 0).unwrap();
        let borders: Vec<BorderHandle> = (0..params.borders)
            .map(|i| b.add_border(format!("border{}{}", params.name, i), vec![default_route]))
            .collect();

        let always_on_count = (params.endpoints as f64 * params.always_on_share).round() as usize;
        let mut roster = Vec::with_capacity(params.endpoints);
        for i in 0..params.endpoints {
            let always_on = i < always_on_count;
            let group = if always_on { INFRA } else { USERS };
            let identity = b.mint_endpoint(vn, group);
            let edge = edges[i % edges.len()];
            roster.push(Member {
                identity,
                edge,
                always_on,
            });
        }

        let mut scenario = CampusScenario {
            fabric: b.build(),
            edges,
            borders,
            roster,
            params,
        };
        scenario.schedule(&mut rng);
        scenario
    }

    /// Pre-schedules attaches, detaches and flows for every day.
    fn schedule(&mut self, rng: &mut SmallRng) {
        let day = SimDuration::from_hours(24);
        let popularity = ZipfSampler::new(self.roster.len(), self.params.popularity_skew);
        // Always-on infrastructure (cameras, phones, desktops) talks to
        // a handful of servers, not the whole roster: its destination
        // diversity is tiny. Servers are the first roster ranks.
        let server_count = 8.min(self.roster.len());
        let infra_targets = ZipfSampler::new(server_count, 0.8);
        // External "Internet" target outside every overlay pool.
        let external_dst = Eid::V4(std::net::Ipv4Addr::new(93, 184, 216, 34));

        // Always-on endpoints attach once, staggered over the first hour.
        for (i, m) in self.roster.iter().enumerate() {
            if m.always_on {
                let at = SimTime::ZERO + SimDuration::from_secs_f64(rng.gen::<f64>() * 3600.0);
                self.fabric
                    .attach_at(at, m.edge, m.identity, PortId(i as u16));
            }
        }

        for d in 0..self.params.days {
            let day_start = SimTime::ZERO + day.saturating_mul(d as u64);
            let weekday = d % 7 < 5;

            // Presence windows.
            let mut windows: Vec<Option<(SimTime, SimTime)>> =
                Vec::with_capacity(self.roster.len());
            for (i, m) in self.roster.iter().enumerate() {
                if m.always_on {
                    windows.push(Some((day_start, day_start + day)));
                } else if weekday && rng.gen::<f64>() < self.params.attendance {
                    let arrive = day_start
                        + SimDuration::from_secs_f64((8.0 + 2.0 * rng.gen::<f64>()) * 3600.0);
                    let leave = day_start
                        + SimDuration::from_secs_f64((17.0 + 3.0 * rng.gen::<f64>()) * 3600.0);
                    self.fabric
                        .attach_at(arrive, m.edge, m.identity, PortId(i as u16));
                    self.fabric.detach_at(leave, m.edge, m.identity.mac);
                    windows.push(Some((arrive, leave)));
                } else {
                    windows.push(None);
                }
            }

            // Flows while present.
            for (i, m) in self.roster.iter().enumerate() {
                let Some((from, to)) = windows[i] else {
                    continue;
                };
                let hours = to.since(from).as_secs_f64() / 3600.0;
                let rate = if m.always_on && !weekday {
                    // Weekend: infrastructure chatter only.
                    self.params.night_flows_per_hour
                } else {
                    self.params.flows_per_hour
                };
                let n = poisson_count(rng, rate * hours);
                for _ in 0..n {
                    let at = from
                        + SimDuration::from_secs_f64(
                            rng.gen::<f64>() * to.since(from).as_secs_f64(),
                        );
                    let dst = if rng.gen::<f64>() < self.params.external_share {
                        external_dst
                    } else {
                        let mut pick = if m.always_on {
                            infra_targets.sample(rng)
                        } else {
                            popularity.sample(rng)
                        };
                        if pick == i {
                            pick = (pick + 1) % self.roster.len();
                        }
                        Eid::V4(self.roster[pick].identity.ipv4)
                    };
                    self.fabric.send_at(
                        at,
                        m.edge,
                        m.identity.mac,
                        dst,
                        512,
                        (d * 100_000 + i) as u64,
                        false,
                    );
                }
            }

            // Night chatter from always-on endpoints (20:00–24:00 plus
            // 0:00–8:00 modeled within the same day for simplicity):
            // monitoring/backup-style probes toward *user* machines, most
            // of which have left — each failed resolution deletes the
            // probing edge's FIB entry (§4.2's building-B mechanism).
            let human_count = self.roster.iter().filter(|m| !m.always_on).count();
            for (i, m) in self.roster.iter().enumerate() {
                if !m.always_on || human_count == 0 {
                    continue;
                }
                let night_hours = 12.0;
                let n = poisson_count(rng, self.params.night_flows_per_hour * night_hours);
                for _ in 0..n {
                    let at = day_start
                        + SimDuration::from_secs_f64(
                            (20.0 + rng.gen::<f64>() * night_hours) * 3600.0,
                        );
                    let always_on_count = self.roster.len() - human_count;
                    let pick = always_on_count + rng.gen_range(0..human_count);
                    let dst = Eid::V4(self.roster[pick].identity.ipv4);
                    self.fabric.send_at(
                        at,
                        m.edge,
                        m.identity.mac,
                        dst,
                        256,
                        (d * 100_000 + i) as u64,
                        false,
                    );
                }
            }
        }
    }

    /// Runs the whole campaign.
    pub fn run(&mut self) {
        let end =
            SimTime::ZERO + SimDuration::from_hours(24).saturating_mul(self.params.days as u64 + 1);
        self.fabric.run_until(end);
    }

    /// The border FIB series name for border `i`.
    pub fn border_series(&self, i: usize) -> String {
        format!("fib.border{}{}", self.params.name, i)
    }

    /// The edge FIB series name for edge `i`.
    pub fn edge_series(&self, i: usize) -> String {
        format!("fib.edge{}{}", self.params.name, i)
    }
}

/// Draws a Poisson count via inversion (small means).
fn poisson_count(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> CampusParams {
        CampusParams {
            name: "T",
            endpoints: 30,
            edges: 3,
            borders: 1,
            always_on_share: 0.2,
            attendance: 0.8,
            days: 2,
            flows_per_hour: 1.0,
            external_share: 0.1,
            popularity_skew: 0.9,
            night_flows_per_hour: 0.3,
            idle_timeout: SimDuration::from_hours(40),
            seed: 99,
        }
    }

    #[test]
    fn two_day_campaign_produces_fib_series() {
        let mut s = CampusScenario::build(tiny_params());
        s.run();
        let border = s.fabric.metrics().series(&s.border_series(0)).to_vec();
        assert!(!border.is_empty(), "border FIB series missing");
        // During the second workday's office hours the border carries
        // more mappings than at 04:00.
        let at_hour = |h: usize| {
            border
                .iter()
                .find(|(t, _)| t.as_secs_f64() >= h as f64 * 3600.0)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let night = at_hour(28); // 04:00 day 2
        let noon = at_hour(36); // 12:00 day 2
        assert!(
            noon > night,
            "presence must drive border FIB: noon={noon} night={night}"
        );
        // Edge FIB stays below border's daytime FIB (the state saving).
        let edge = s.fabric.metrics().series(&s.edge_series(0)).to_vec();
        assert!(!edge.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_series() {
        let run = || {
            let mut s = CampusScenario::build(tiny_params());
            s.run();
            s.fabric.metrics().series(&s.border_series(0)).to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn poisson_count_mean_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(5);
        let total: usize = (0..10_000).map(|_| poisson_count(&mut rng, 3.0)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((2.8..3.2).contains(&mean), "mean {mean}");
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
    }
}
