//! Frame-level traffic driver: the campus and warehouse populations
//! pushed through the real data plane as **bytes**, not events.
//!
//! The simulator models in [`crate::campus`] / [`crate::warehouse`]
//! exchange structured messages; this module mints the same populations
//! as actual Ethernet/IPv4 frames and drives them through an
//! [`sda_dataplane::Switch`] in [`BATCH_SIZE`] bursts, with a minimal
//! in-loop control plane answering the engine's punts:
//!
//! * **Campus**: a stable population, Zipf-skewed peer selection, a
//!   local/remote split (other buildings reachable through the
//!   map-cache) and an external share that rides the border default
//!   route — the Fig. 9 traffic mix at the byte level.
//! * **Warehouse**: the same skeleton plus constant mobility — remote
//!   endpoints keep handing over between edges, so the driver
//!   continuously exercises the SMR → stale-forward → refresh loop of
//!   Fig. 6 on the hot path.
//!
//! Deterministic (seeded) and allocation-light: frames are composed in
//! one scratch buffer and copied into pooled [`PacketBuf`]s.

use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_dataplane::{
    DropReason, LocalEndpoint, PacketBuf, Punt, Switch, SwitchConfig, Verdict, BATCH_SIZE,
};
use sda_simnet::{Metrics, SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};

use crate::traffic::ZipfSampler;

/// The users group (humans, robots).
pub const USERS: GroupId = GroupId(10);
/// The infrastructure group (servers, APs, always-on devices).
pub const INFRA: GroupId = GroupId(20);

/// Parameters of a frame-level campaign.
#[derive(Clone, Debug)]
pub struct FramePreset {
    /// Label in reports.
    pub name: &'static str,
    /// Endpoints attached to the switch under test.
    pub local_endpoints: usize,
    /// Endpoints on other edges, reachable through the map-cache.
    pub remote_endpoints: usize,
    /// Fabric edges the remote population spreads across.
    pub remote_edges: u16,
    /// Probability a flow targets the Internet (border default route).
    pub external_share: f64,
    /// Zipf exponent of destination popularity.
    pub popularity_skew: f64,
    /// Every `n`th flow, one remote endpoint hands over to another edge
    /// (`None` disables mobility — the campus case).
    pub handover_every: Option<usize>,
    /// Inner payload bytes per frame.
    pub payload_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FramePreset {
    /// Campus building: stable population, no mobility.
    pub fn campus() -> Self {
        FramePreset {
            name: "campus",
            local_endpoints: 60,
            remote_endpoints: 400,
            remote_edges: 12,
            external_share: 0.2,
            popularity_skew: 1.0,
            handover_every: None,
            payload_len: 256,
            seed: 0xCA,
        }
    }

    /// Warehouse: heavy mobility — robots hand over constantly.
    pub fn warehouse() -> Self {
        FramePreset {
            name: "warehouse",
            local_endpoints: 80,
            remote_endpoints: 800,
            remote_edges: 40,
            external_share: 0.02,
            popularity_skew: 0.8,
            handover_every: Some(24),
            payload_len: 128,
            seed: 0x3A,
        }
    }
}

/// What happened to the frames of one campaign.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FrameStats {
    /// Frames injected.
    pub flows: u64,
    /// Encapsulated toward a resolved edge.
    pub forwarded: u64,
    /// Encapsulated toward the border default route (misses, Internet).
    pub forwarded_default: u64,
    /// Delivered on a local port.
    pub delivered: u64,
    /// Dropped by group policy.
    pub dropped_policy: u64,
    /// Dropped for any other reason (should stay 0 in these campaigns).
    pub dropped_other: u64,
    /// Map-Request punts for cold misses.
    pub punted_miss: u64,
    /// Map-Request punts refreshing SMR'd entries (mobility churn).
    pub punted_refresh: u64,
    /// Handovers performed.
    pub handovers: u64,
}

impl FrameStats {
    /// Records the campaign counters into a metrics sink, one counter
    /// per field under `prefix.`.
    pub fn record(&self, prefix: &str, metrics: &mut Metrics) {
        metrics.add(&format!("{prefix}.flows"), self.flows);
        metrics.add(&format!("{prefix}.forwarded"), self.forwarded);
        metrics.add(
            &format!("{prefix}.forwarded_default"),
            self.forwarded_default,
        );
        metrics.add(&format!("{prefix}.delivered"), self.delivered);
        metrics.add(&format!("{prefix}.dropped_policy"), self.dropped_policy);
        metrics.add(&format!("{prefix}.dropped_other"), self.dropped_other);
        metrics.add(&format!("{prefix}.punted_miss"), self.punted_miss);
        metrics.add(&format!("{prefix}.punted_refresh"), self.punted_refresh);
        metrics.add(&format!("{prefix}.handovers"), self.handovers);
    }
}

/// Drives one preset's traffic through a [`Switch`] in batches.
pub struct FrameDriver {
    switch: Switch,
    preset: FramePreset,
    vn: VnId,
    local: Vec<LocalEndpoint>,
    /// Remote endpoint addresses and their current edge.
    remote: Vec<(Ipv4Addr, Rloc)>,
    popularity: ZipfSampler,
    rng: SmallRng,
    bufs: Vec<PacketBuf>,
    scratch: Vec<u8>,
    /// Cycled punt-drain scratch: `drain_punts_into` swaps the switch's
    /// queue with this vector, so neither ever reallocates.
    punt_scratch: Vec<Punt>,
    now: SimTime,
    next_handover: usize,
    stats: FrameStats,
}

const MAPPING_TTL: SimDuration = SimDuration::from_secs(48 * 3600);

impl FrameDriver {
    /// Builds the switch, attaches the local population and installs the
    /// remote mappings plus an open USERS/INFRA policy.
    pub fn new(preset: FramePreset) -> Self {
        let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
        cfg.border = Some(Rloc::for_router_index(999));
        let mut switch = Switch::new(cfg);
        let vn = VnId::new(100).unwrap();

        let mut matrix = sda_policy::ConnectivityMatrix::new();
        for src in [USERS, INFRA] {
            for dst in [USERS, INFRA] {
                matrix.set_rule(vn, src, dst, sda_policy::Action::Allow);
            }
        }
        switch.install_matrix(&matrix);

        let mut local = Vec::with_capacity(preset.local_endpoints);
        for i in 0..preset.local_endpoints {
            let ep = LocalEndpoint {
                port: PortId(i as u16),
                group: if i % 5 == 0 { INFRA } else { USERS },
                mac: MacAddr::from_seed(i as u32 + 1),
                ipv4: Ipv4Addr::new(10, 100, (i >> 8) as u8, i as u8),
            };
            switch.attach(vn, ep);
            local.push(ep);
        }

        let mut remote = Vec::with_capacity(preset.remote_endpoints);
        for i in 0..preset.remote_endpoints {
            let ip = Ipv4Addr::new(10, 101, (i >> 8) as u8, i as u8);
            let rloc = Rloc::for_router_index(2 + (i as u16 % preset.remote_edges));
            switch.install_mapping(
                vn,
                EidPrefix::host(Eid::V4(ip)),
                rloc,
                MAPPING_TTL,
                SimTime::ZERO,
            );
            remote.push((ip, rloc));
        }
        // Population is done: re-lay the table arenas in DFS order so
        // the measured forwarding phase descends sequential memory.
        switch.compact_tables();

        let population = preset.local_endpoints + preset.remote_endpoints;
        FrameDriver {
            popularity: ZipfSampler::new(population, preset.popularity_skew),
            rng: SmallRng::seed_from_u64(preset.seed),
            bufs: (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect(),
            scratch: Vec::new(),
            punt_scratch: Vec::new(),
            now: SimTime::ZERO + SimDuration::from_secs(1),
            next_handover: preset.handover_every.unwrap_or(usize::MAX),
            stats: FrameStats::default(),
            switch,
            preset,
            vn,
            local,
            remote,
        }
    }

    /// The switch under test.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Runs `flows` frames through the switch in batches and returns the
    /// cumulative stats.
    pub fn run(&mut self, flows: usize) -> FrameStats {
        let mut sent = 0;
        while sent < flows {
            let batch = BATCH_SIZE.min(flows - sent);
            for i in 0..batch {
                self.compose_flow_frame(i);
            }
            self.process_batch(batch);
            sent += batch;
        }
        self.stats
    }

    /// Cumulative stats so far.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Builds the `i`th frame of the current batch into `bufs[i]`.
    fn compose_flow_frame(&mut self, i: usize) {
        let src = self.local[self.rng.gen_range(0..self.local.len())];
        let external = self.rng.gen::<f64>() < self.preset.external_share;
        let dst_ip = if external {
            Ipv4Addr::new(93, 184, 216, 34)
        } else {
            let mut pick = self.popularity.sample(&mut self.rng);
            if pick < self.local.len() {
                // Avoid self-flows: bump to a neighbour.
                if self.local[pick].ipv4 == src.ipv4 {
                    pick = (pick + 1) % (self.local.len() + self.remote.len());
                }
            }
            if pick < self.local.len() {
                self.local[pick].ipv4
            } else {
                self.remote[pick - self.local.len()].0
            }
        };

        let inner = ipv4::Repr {
            src: src.ipv4,
            dst: dst_ip,
            protocol: ipv4::Protocol::Unknown(253),
            payload_len: self.preset.payload_len,
            ttl: 64,
        };
        self.scratch
            .resize(ethernet::HEADER_LEN + inner.buffer_len(), 0);
        ethernet::Repr {
            dst: MacAddr::BROADCAST,
            src: src.mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut ethernet::Frame::new_unchecked(&mut self.scratch[..]));
        inner.emit(&mut ipv4::Packet::new_unchecked(
            &mut self.scratch[ethernet::HEADER_LEN..],
        ));
        assert!(self.bufs[i].load(&self.scratch));
    }

    /// Processes `batch` loaded buffers and runs the in-loop control
    /// plane over the punts.
    fn process_batch(&mut self, batch: usize) {
        self.stats.flows += batch as u64;
        // Mobility: hand a remote endpoint over before the burst, so the
        // burst itself hits the stale entry (Fig. 6 order).
        if let Some(every) = self.preset.handover_every {
            while self.next_handover <= self.stats.flows as usize {
                self.handover();
                self.next_handover += every;
            }
        }

        self.switch
            .process_ingress(&mut self.bufs[..batch], self.now);
        for v in self.switch.verdicts() {
            match v {
                Verdict::Forward { to } => {
                    if Some(*to) == self.switch.config().border {
                        self.stats.forwarded_default += 1;
                    } else {
                        self.stats.forwarded += 1;
                    }
                }
                Verdict::Deliver { .. } => self.stats.delivered += 1,
                // No external prefixes are installed in these presets;
                // surface it as an anomaly if one ever appears.
                Verdict::DeliverExternal => self.stats.dropped_other += 1,
                Verdict::Drop(DropReason::Policy) => self.stats.dropped_policy += 1,
                Verdict::Drop(_) => self.stats.dropped_other += 1,
            }
        }
        // Minimal control plane: answer refresh punts with the (already
        // updated) registry state, count the rest. One drain call swaps
        // the queue out (no clone, no punts()+clear_punts() pair), and
        // the scratch vector lets the switch keep installing mappings
        // while we walk the drained punts.
        self.switch.drain_punts_into(&mut self.punt_scratch);
        for &punt in &self.punt_scratch {
            match punt {
                Punt::MapRequest { vn, eid, refresh } => {
                    if refresh {
                        self.stats.punted_refresh += 1;
                        if let Eid::V4(ip) = eid {
                            if let Some((_, rloc)) = self.remote.iter().find(|(rip, _)| *rip == ip)
                            {
                                self.switch.install_mapping(
                                    vn,
                                    EidPrefix::host(eid),
                                    *rloc,
                                    MAPPING_TTL,
                                    self.now,
                                );
                            }
                        }
                    } else {
                        self.stats.punted_miss += 1;
                    }
                }
                Punt::Smr { .. } => {}
            }
        }
        self.now += SimDuration::from_millis(1);
    }

    /// Moves one remote endpoint to the next edge (round-robin over the
    /// remote edge pool, so every handover is a real location change)
    /// and SMRs the switch — what the map-server's move notification
    /// does in the full system.
    fn handover(&mut self) {
        let idx = self.rng.gen_range(0..self.remote.len());
        let (ip, old) = self.remote[idx];
        let o = old.addr().octets();
        let old_index = (u16::from(o[2]) << 8) | u16::from(o[3]);
        let new = Rloc::for_router_index(2 + (old_index - 2 + 1) % self.preset.remote_edges);
        debug_assert!(self.preset.remote_edges < 2 || new != old);
        self.remote[idx].1 = new;
        self.switch.receive_smr(self.vn, Eid::V4(ip), self.now);
        self.stats.handovers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_mix_reaches_every_path() {
        let mut d = FrameDriver::new(FramePreset::campus());
        let s = d.run(2_000);
        assert_eq!(s.flows, 2_000);
        assert_eq!(
            s.forwarded + s.forwarded_default + s.delivered + s.dropped_policy + s.dropped_other,
            s.flows,
            "every frame accounted for"
        );
        assert!(s.delivered > 0, "local deliveries expected");
        assert!(s.forwarded > 0, "remote forwards expected");
        assert!(s.forwarded_default > 0, "external share rides the border");
        assert_eq!(s.dropped_other, 0, "no malformed frames in the mix");
        assert_eq!(s.handovers, 0, "campus preset is immobile");
    }

    #[test]
    fn warehouse_mobility_exercises_stale_refresh() {
        let mut d = FrameDriver::new(FramePreset::warehouse());
        let s = d.run(4_000);
        assert!(s.handovers > 100, "constant churn expected: {s:?}");
        assert!(
            s.punted_refresh > 0,
            "stale entries must punt refreshes: {s:?}"
        );
        assert_eq!(
            s.forwarded + s.forwarded_default + s.delivered + s.dropped_policy + s.dropped_other,
            s.flows
        );
        assert_eq!(s.dropped_other, 0);
        // The switch-level counters agree with the driver's view.
        let sw = d.switch().stats();
        assert_eq!(sw.rx, s.flows);
        assert_eq!(sw.delivered, s.delivered);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || FrameDriver::new(FramePreset::warehouse()).run(1_500);
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_record_into_metrics() {
        let mut d = FrameDriver::new(FramePreset::campus());
        let s = d.run(500);
        let mut m = Metrics::default();
        s.record("frames.campus", &mut m);
        assert_eq!(m.counter("frames.campus.flows"), s.flows);
        assert_eq!(m.counter("frames.campus.delivered"), s.delivered);
    }
}
