//! The massive-mobility warehouse workload (Fig. 10/11).
//!
//! Topology per the paper: one border (with the traffic sink behind
//! it), two *physical* edges the robots flip between, and 198 emulated
//! edges hosting correspondents. 16,000 endpoints generate 800 moves/s
//! (≈5% of endpoints moving per second).
//!
//! Handover delay = "the time since the emulated host is detached until
//! traffic is restored after it attaches to the new edge router":
//! a correspondent streams packets at a fixed cadence toward each
//! *measured* mover; the sample is the gap between the detach instant
//! and the first post-detach delivery.
//!
//! The same generator drives the reactive fabric (`sda-core`, LISP) and
//! the proactive baseline (`sda-bgp`), with identical AAA delay, link
//! latency and traffic cadence, isolating the control-plane difference.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::controller::{EdgeHandle, FabricBuilder};
use sda_simnet::{Metrics, SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, MacAddr, PortId, Rloc};

/// Scenario parameters. Defaults mirror §4.3.
#[derive(Clone, Debug)]
pub struct WarehouseParams {
    /// Total mobile endpoints (16,000 in the paper).
    pub hosts: usize,
    /// Total edges (2 physical + emulated; 200 in the paper).
    pub edges: usize,
    /// Aggregate mobility event rate.
    pub moves_per_sec: f64,
    /// Initial onboarding is staggered over this long.
    pub warmup: SimDuration,
    /// Mobility runs for this long after warmup.
    pub duration: SimDuration,
    /// How many moves get correspondent measurement traffic.
    pub measured_moves: usize,
    /// Correspondent packet cadence.
    pub probe_interval: SimDuration,
    /// How long after the move the correspondent keeps probing.
    pub probe_window: SimDuration,
    /// Minimum gap between detach and re-attach (radio re-association);
    /// each move draws uniformly from [min, 4×min].
    pub detect_delay: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarehouseParams {
    fn default() -> Self {
        WarehouseParams {
            hosts: 16_000,
            edges: 200,
            moves_per_sec: 800.0,
            warmup: SimDuration::from_secs(25),
            duration: SimDuration::from_secs(10),
            measured_moves: 400,
            probe_interval: SimDuration::from_millis(1),
            probe_window: SimDuration::from_millis(400),
            detect_delay: SimDuration::from_micros(500),
            seed: 0xF16,
        }
    }
}

impl WarehouseParams {
    /// A laptop-scale variant for tests (hundreds of hosts).
    pub fn small() -> Self {
        WarehouseParams {
            hosts: 400,
            edges: 20,
            moves_per_sec: 100.0,
            warmup: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(4),
            measured_moves: 40,
            ..Default::default()
        }
    }
}

/// One measured handover.
#[derive(Clone, Copy, Debug)]
pub struct HandoverSample {
    /// When the endpoint detached.
    pub detached_at: SimTime,
    /// First post-detach delivery, if any arrived in the window.
    pub restored_at: Option<SimTime>,
}

impl HandoverSample {
    /// The handover delay in seconds, if traffic was restored.
    pub fn delay_secs(&self) -> Option<f64> {
        self.restored_at
            .map(|r| r.since(self.detached_at).as_secs_f64())
    }
}

/// A planned move used by both fabrics.
struct PlannedMove {
    at: SimTime,
    host: usize,
    measured: bool,
}

/// Plans the move schedule + which moves are measured.
fn plan_moves(p: &WarehouseParams, rng: &mut SmallRng) -> Vec<PlannedMove> {
    let total = (p.moves_per_sec * p.duration.as_secs_f64()) as usize;
    let start = SimTime::ZERO + p.warmup;
    // Measured moves spread evenly through the run, skipping the first
    // second so background load is established.
    let measure_from = (p.moves_per_sec as usize).min(total / 10);
    let measure_stride = ((total - measure_from) / p.measured_moves.max(1)).max(1);
    (0..total)
        .map(|i| {
            let at = start
                + SimDuration::from_secs_f64(i as f64 / p.moves_per_sec)
                + SimDuration::from_nanos(rng.gen_range(0..100_000));
            let host = rng.gen_range(0..p.hosts);
            let measured = i >= measure_from && (i - measure_from).is_multiple_of(measure_stride);
            PlannedMove { at, host, measured }
        })
        .collect()
}

/// Extracts handover samples from the shared metrics convention
/// (`deliver.{eid}` series, values = flow ids, times = delivery times).
fn extract_samples(
    metrics: &Metrics,
    measured: &[(String, SimTime)],
    window: SimDuration,
) -> Vec<HandoverSample> {
    measured
        .iter()
        .map(|(series, detached_at)| {
            let restored_at = metrics
                .series(series)
                .iter()
                .map(|(t, _)| *t)
                .find(|t| t > detached_at && *t <= *detached_at + window);
            HandoverSample {
                detached_at: *detached_at,
                restored_at,
            }
        })
        .collect()
}

/// Runs the warehouse against the **reactive** (LISP) fabric; returns
/// the measured handovers.
pub fn run_lisp(p: &WarehouseParams) -> Vec<HandoverSample> {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut b = FabricBuilder::new(p.seed);
    {
        let cfg = b.config_mut();
        cfg.register_mac = false; // L3-only scenario (halves registers)
        cfg.refresh_interval = None; // run is shorter than any TTL
        cfg.purge_interval = None;
        cfg.fib_sample_interval = None;
        cfg.register_ttl_secs = 24 * 3600;
    }
    let vn = b.add_vn(
        200,
        Ipv4Prefix::new(std::net::Ipv4Addr::new(10, 0, 0, 0), 10).unwrap(),
    );
    let robots = GroupId(1);
    b.allow(vn, robots, robots);

    let physical: Vec<EdgeHandle> = (0..2).map(|i| b.add_edge(format!("phys{i}"))).collect();
    let emulated: Vec<EdgeHandle> = (0..p.edges.saturating_sub(2))
        .map(|i| b.add_edge(format!("emu{i}")))
        .collect();
    b.add_border("border", vec![]);

    // Mobile hosts + correspondents.
    let hosts: Vec<_> = (0..p.hosts).map(|_| b.mint_endpoint(vn, robots)).collect();
    let correspondents: Vec<_> = (0..p.measured_moves)
        .map(|_| b.mint_endpoint(vn, robots))
        .collect();

    let mut f = b.build();

    // Staggered initial onboarding: hosts alternate between the two
    // physical edges; correspondents live on emulated edges.
    let mut side: Vec<u8> = Vec::with_capacity(p.hosts);
    for (i, h) in hosts.iter().enumerate() {
        let s = (i % 2) as u8;
        side.push(s);
        let at = SimTime::ZERO
            + SimDuration::from_secs_f64(rng.gen::<f64>() * p.warmup.as_secs_f64() * 0.8);
        f.attach_at(at, physical[s as usize], *h, PortId((i % 4096) as u16));
    }
    for (i, c) in correspondents.iter().enumerate() {
        let edge = emulated[i % emulated.len().max(1)];
        let at = SimTime::ZERO
            + SimDuration::from_secs_f64(rng.gen::<f64>() * p.warmup.as_secs_f64() * 0.5);
        f.attach_at(at, edge, *c, PortId(1));
    }

    // Moves.
    let moves = plan_moves(p, &mut rng);
    let mut measured: Vec<(String, SimTime)> = Vec::new();
    let mut measure_idx = 0usize;
    for mv in &moves {
        let from = side[mv.host] as usize;
        let to = 1 - from;
        side[mv.host] = to as u8;
        let h = hosts[mv.host];
        let detect = SimDuration::from_secs_f64(
            p.detect_delay.as_secs_f64() * (1.0 + 3.0 * rng.gen::<f64>()),
        );
        f.detach_at(mv.at, physical[from], h.mac);
        f.attach_at(mv.at + detect, physical[to], h, PortId(9));

        if mv.measured && measure_idx < correspondents.len() {
            let c = correspondents[measure_idx];
            let c_edge = emulated[measure_idx % emulated.len().max(1)];
            measure_idx += 1;
            measured.push((format!("deliver.{}", Eid::V4(h.ipv4)), mv.at));
            // Probe stream: starts before the move (warming the sender's
            // cache), continues through the window; random phase so the
            // cadence does not align with the move instant.
            let phase =
                SimDuration::from_secs_f64(rng.gen::<f64>() * p.probe_interval.as_secs_f64());
            let mut t = mv.at + phase;
            let pre = 5;
            for k in 0..pre {
                let before = p.probe_interval.saturating_mul(pre - k);
                let send_at =
                    SimTime::from_nanos(mv.at.as_nanos().saturating_sub(before.as_nanos()));
                f.send_at(send_at, c_edge, c.mac, Eid::V4(h.ipv4), 1470, k, true);
            }
            let mut k = pre;
            while t <= mv.at + p.probe_window {
                f.send_at(t, c_edge, c.mac, Eid::V4(h.ipv4), 1470, k, true);
                t += p.probe_interval;
                k += 1;
            }
        }
    }

    let end = SimTime::ZERO + p.warmup + p.duration + p.probe_window + SimDuration::from_secs(1);
    f.run_until(end);
    extract_samples(f.metrics(), &measured, p.probe_window)
}

/// Runs the warehouse against the **proactive** (BGP route-reflector)
/// baseline; returns the measured handovers.
pub fn run_bgp(p: &WarehouseParams) -> Vec<HandoverSample> {
    use sda_bgp::msg::BgpHostEvent;
    use sda_bgp::{BgpConfig, BgpDirectory, BgpEdge, BgpMsg, RouteReflector};
    use sda_simnet::{NodeId, Simulator};
    use std::collections::BTreeMap;
    use std::rc::Rc;

    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut node_of_rloc = BTreeMap::new();
    let reflector_id = NodeId(0);
    let n_edges = p.edges;
    for i in 0..n_edges {
        node_of_rloc.insert(Rloc::for_router_index(1 + i as u16), NodeId(1 + i as u32));
    }
    let dir = Rc::new(BgpDirectory {
        node_of_rloc,
        reflector: reflector_id,
        config: BgpConfig::default(),
    });
    let mut sim: Simulator<BgpMsg> = Simulator::new(p.seed);
    let peers: Vec<Rloc> = (0..n_edges)
        .map(|i| Rloc::for_router_index(1 + i as u16))
        .collect();
    assert_eq!(
        sim.add_node(Box::new(RouteReflector::new(dir.clone(), peers))),
        reflector_id
    );
    let edge_nodes: Vec<NodeId> = (0..n_edges)
        .map(|i| {
            sim.add_node(Box::new(BgpEdge::new(
                Rloc::for_router_index(1 + i as u16),
                dir.clone(),
            )))
        })
        .collect();
    sim.arm_timer_at(SimTime::ZERO, reflector_id, 0);

    // Identities: same address plan as the LISP run.
    let mk_host = |i: usize| {
        let seed = 1 + i as u32;
        (
            MacAddr::from_seed(seed),
            std::net::Ipv4Addr::from(u32::from(std::net::Ipv4Addr::new(10, 0, 0, 0)) + seed),
        )
    };
    let physical = [edge_nodes[0], edge_nodes[1]];
    let emulated: Vec<NodeId> = edge_nodes[2..].to_vec();

    let mut side: Vec<u8> = Vec::with_capacity(p.hosts);
    for i in 0..p.hosts {
        let (mac, ipv4) = mk_host(i);
        let s = (i % 2) as u8;
        side.push(s);
        let at = SimTime::ZERO
            + SimDuration::from_secs_f64(rng.gen::<f64>() * p.warmup.as_secs_f64() * 0.8);
        sim.inject_at(
            at,
            physical[s as usize],
            BgpMsg::Host(BgpHostEvent::Attach { mac, ipv4 }),
        );
    }
    // Correspondents only send; they need no attachment in this model.

    let moves = plan_moves(p, &mut rng);
    let mut measured: Vec<(String, SimTime)> = Vec::new();
    let mut measure_idx = 0usize;
    for mv in &moves {
        let from = side[mv.host] as usize;
        let to = 1 - from;
        side[mv.host] = to as u8;
        let (mac, ipv4) = mk_host(mv.host);
        let detect = SimDuration::from_secs_f64(
            p.detect_delay.as_secs_f64() * (1.0 + 3.0 * rng.gen::<f64>()),
        );
        sim.inject_at(
            mv.at,
            physical[from],
            BgpMsg::Host(BgpHostEvent::Detach { mac }),
        );
        sim.inject_at(
            mv.at + detect,
            physical[to],
            BgpMsg::Host(BgpHostEvent::Attach { mac, ipv4 }),
        );

        if mv.measured && measure_idx < p.measured_moves {
            let c_edge = emulated[measure_idx % emulated.len().max(1)];
            measure_idx += 1;
            let dst = Eid::V4(ipv4);
            measured.push((format!("deliver.{dst}"), mv.at));
            let phase =
                SimDuration::from_secs_f64(rng.gen::<f64>() * p.probe_interval.as_secs_f64());
            let pre = 5u64;
            for k in 0..pre {
                let before = p.probe_interval.saturating_mul(pre - k);
                let send_at =
                    SimTime::from_nanos(mv.at.as_nanos().saturating_sub(before.as_nanos()));
                sim.inject_at(
                    send_at,
                    c_edge,
                    BgpMsg::Host(BgpHostEvent::Send {
                        dst,
                        flow: k,
                        track: true,
                    }),
                );
            }
            let mut t = mv.at + phase;
            let mut k = pre;
            while t <= mv.at + p.probe_window {
                sim.inject_at(
                    t,
                    c_edge,
                    BgpMsg::Host(BgpHostEvent::Send {
                        dst,
                        flow: k,
                        track: true,
                    }),
                );
                t += p.probe_interval;
                k += 1;
            }
        }
    }

    let end = SimTime::ZERO + p.warmup + p.duration + p.probe_window + SimDuration::from_secs(1);
    sim.run_until(end);
    extract_samples(sim.metrics(), &measured, p.probe_window)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_warehouse_lisp_handover_fast_and_complete() {
        let p = WarehouseParams::small();
        let samples = run_lisp(&p);
        assert!(!samples.is_empty());
        let restored: Vec<f64> = samples.iter().filter_map(|s| s.delay_secs()).collect();
        assert!(
            restored.len() * 10 >= samples.len() * 9,
            "≥90% of LISP handovers must restore: {}/{}",
            restored.len(),
            samples.len()
        );
        let mean = restored.iter().sum::<f64>() / restored.len() as f64;
        assert!(mean < 0.020, "LISP mean handover {mean}s too slow");
    }

    #[test]
    fn small_warehouse_bgp_slower_than_lisp() {
        let p = WarehouseParams::small();
        let lisp: Vec<f64> = run_lisp(&p).iter().filter_map(|s| s.delay_secs()).collect();
        let bgp: Vec<f64> = run_bgp(&p).iter().filter_map(|s| s.delay_secs()).collect();
        assert!(!lisp.is_empty() && !bgp.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ml, mb) = (mean(&lisp), mean(&bgp));
        assert!(
            mb > 3.0 * ml,
            "proactive must be several× slower: lisp={ml:.4}s bgp={mb:.4}s"
        );
    }

    #[test]
    fn plans_are_deterministic() {
        let p = WarehouseParams::small();
        let mut r1 = SmallRng::seed_from_u64(p.seed);
        let mut r2 = SmallRng::seed_from_u64(p.seed);
        let a = plan_moves(&p, &mut r1);
        let b = plan_moves(&p, &mut r2);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.host == y.host));
    }
}
