//! Arrival processes for load experiments (Fig. 7c).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_simnet::{SimDuration, SimTime};

/// A Poisson arrival process: exponential inter-arrival times at a
/// configured rate.
pub struct PoissonArrivals {
    rng: SmallRng,
    rate_per_sec: f64,
    next: SimTime,
}

impl PoissonArrivals {
    /// Creates a process starting at `start` with `rate_per_sec`.
    ///
    /// # Panics
    /// Panics if the rate is not positive and finite.
    pub fn new(rate_per_sec: f64, start: SimTime, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0 && rate_per_sec.is_finite());
        let mut p = PoissonArrivals {
            rng: SmallRng::seed_from_u64(seed),
            rate_per_sec,
            next: start,
        };
        p.advance();
        p
    }

    fn advance(&mut self) {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let gap = -u.ln() / self.rate_per_sec;
        self.next += SimDuration::from_secs_f64(gap);
    }

    /// The next arrival instant (consumes it).
    pub fn next_arrival(&mut self) -> SimTime {
        let t = self.next;
        self.advance();
        t
    }

    /// All arrivals up to `deadline`.
    pub fn take_until(&mut self, deadline: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        while self.next <= deadline {
            out.push(self.next_arrival());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let mut p = PoissonArrivals::new(1000.0, SimTime::ZERO, 7);
        let arrivals = p.take_until(SimTime::ZERO + SimDuration::from_secs(10));
        // 10k expected; Poisson sd = 100.
        let n = arrivals.len() as f64;
        assert!(
            (9_500.0..10_500.0).contains(&n),
            "{n} arrivals for rate 1000"
        );
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = PoissonArrivals::new(100.0, SimTime::ZERO, 8);
        let arrivals = p.take_until(SimTime::ZERO + SimDuration::from_secs(5));
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = PoissonArrivals::new(500.0, SimTime::ZERO, 9)
            .take_until(SimTime::ZERO + SimDuration::from_secs(1));
        let b: Vec<_> = PoissonArrivals::new(500.0, SimTime::ZERO, 9)
            .take_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(a, b);
    }
}
