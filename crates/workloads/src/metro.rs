//! The metro-fabric control-plane workload: a city-scale SDA deployment
//! (§5's "largest networks" tier) expressed as a deterministic stream of
//! LISP control messages, sized for the partitioned map-server
//! (`sda-ctrl`) rather than the packet-level simulator — at a million
//! endpoints the interesting contention is in the mapping system, not
//! the wires.
//!
//! Three deterministic generators, all plain index arithmetic (no RNG
//! state to carry, so benches can re-derive any slice of the stream):
//!
//! * [`MetroWorkload::initial_registers`] — every endpoint onboards once
//!   from its home edge.
//! * [`MetroWorkload::churn`] — roaming endpoints re-register from a
//!   different edge (each one a *move* with a Map-Notify to the old
//!   edge and a publish toward subscribers).
//! * [`MetroWorkload::requests`] — ITRs resolve Zipf-less uniform
//!   destinations (the map-server cost is identical either way).
//!
//! EIDs are laid out so consecutive endpoints land in *different* /16
//! partitions (prime-stride second octet), which keeps every shard of a
//! partitioned server busy at any scale — see `eid_of`.

use sda_types::{Eid, Rloc, VnId};
use sda_wire::lisp::Message;

/// Second-octet stride: prime, so blocks spread evenly modulo any shard
/// count, and 251 blocks × 65,536 hosts covers 16.4M endpoints.
const BLOCK_STRIDE: u32 = 251;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct MetroParams {
    /// Total endpoints across the fabric.
    pub endpoints: u32,
    /// Edge routers endpoints attach to.
    pub edges: u16,
    /// Virtual networks endpoints are spread over.
    pub vns: u32,
    /// Roaming re-registrations in the churn phase.
    pub churn_moves: u32,
    /// Map-Requests in the resolve phase.
    pub requests: u32,
    /// Border routers subscribed to every VN's mapping stream.
    pub borders: u16,
    /// Registration TTL.
    pub register_ttl_secs: u32,
    /// Mixed into the churn/request index permutations.
    pub seed: u64,
}

impl MetroParams {
    /// The full metro tier: one million endpoints over 256 edges.
    pub fn full() -> Self {
        MetroParams {
            endpoints: 1_000_000,
            edges: 256,
            vns: 64,
            churn_moves: 100_000,
            requests: 100_000,
            borders: 4,
            register_ttl_secs: 48 * 3600,
            seed: 0x3E70,
        }
    }

    /// The 100k tier (same shape, tenth the population).
    pub fn hundred_k() -> Self {
        MetroParams {
            endpoints: 100_000,
            churn_moves: 10_000,
            requests: 10_000,
            ..MetroParams::full()
        }
    }

    /// A laptop-scale variant for tests.
    pub fn small() -> Self {
        MetroParams {
            endpoints: 2_000,
            edges: 16,
            vns: 4,
            churn_moves: 500,
            requests: 1_000,
            borders: 2,
            register_ttl_secs: 300,
            ..MetroParams::full()
        }
    }
}

/// The deterministic message generators for one parameter set.
#[derive(Clone, Debug)]
pub struct MetroWorkload {
    p: MetroParams,
}

impl MetroWorkload {
    /// Builds the workload.
    ///
    /// # Panics
    /// Panics on empty dimensions or more endpoints than the EID plan
    /// holds (`251 × 65,536`).
    pub fn new(p: MetroParams) -> Self {
        assert!(p.endpoints > 0 && p.edges > 0 && p.vns > 0 && p.borders > 0);
        assert!(
            p.endpoints <= BLOCK_STRIDE * 65_536,
            "EID plan exhausted: {} endpoints",
            p.endpoints
        );
        MetroWorkload { p }
    }

    /// The parameters this workload was built from.
    pub fn params(&self) -> &MetroParams {
        &self.p
    }

    /// Endpoint `i`'s EID. The second octet walks a prime-stride cycle,
    /// so endpoints `i` and `i+1` sit in different /16 partition blocks
    /// and *any* contiguous slice of the population loads all shards of
    /// a partitioned map-server evenly.
    pub fn eid_of(&self, i: u32) -> Eid {
        let block = i % BLOCK_STRIDE;
        let host = i / BLOCK_STRIDE;
        Eid::V4(std::net::Ipv4Addr::from(0x0A00_0000 | (block << 16) | host))
    }

    /// Endpoint `i`'s VN (round-robin; every VN is populated).
    pub fn vn_of(&self, i: u32) -> VnId {
        VnId::new(1 + i % self.p.vns).expect("vns >= 1")
    }

    /// Endpoint `i`'s home edge RLOC.
    pub fn home_edge(&self, i: u32) -> Rloc {
        Rloc::for_router_index(1 + (i % u32::from(self.p.edges)) as u16)
    }

    /// Border `b`'s RLOC (distinct from every edge).
    pub fn border_rloc(&self, b: u16) -> Rloc {
        Rloc::for_router_index(0x7000 + b)
    }

    /// Every `(vn, subscriber)` pair: each border subscribes to every
    /// VN, as fabric borders do.
    pub fn subscriptions(&self) -> impl Iterator<Item = Message> + '_ {
        (0..self.p.borders).flat_map(move |b| {
            (0..self.p.vns).map(move |v| Message::Subscribe {
                nonce: 0,
                vn: VnId::new(1 + v).expect("vns >= 1"),
                subscriber: self.border_rloc(b),
            })
        })
    }

    /// Onboarding: one register per endpoint, from its home edge.
    pub fn initial_registers(&self) -> impl Iterator<Item = Message> + '_ {
        (0..self.p.endpoints).map(move |i| self.register_of(i, self.home_edge(i)))
    }

    /// Churn: `churn_moves` roaming re-registrations. Endpoint choice is
    /// a seeded permutation walk; the new edge is always a *different*
    /// edge, so every churn message is a move (notify + publish), never
    /// a refresh.
    pub fn churn(&self) -> impl Iterator<Item = Message> + '_ {
        (0..self.p.churn_moves).map(move |k| {
            let i = self.permute(k);
            let home = i % u32::from(self.p.edges);
            let hop = 1 + (mix(self.p.seed ^ 0xC4, k) % u32::from(self.p.edges - 1).max(1));
            let away = (home + hop) % u32::from(self.p.edges);
            self.register_of(i, Rloc::for_router_index(1 + away as u16))
        })
    }

    /// Resolution: `requests` Map-Requests for uniformly mixed
    /// destinations, asked by rotating edge ITRs.
    pub fn requests(&self) -> impl Iterator<Item = Message> + '_ {
        (0..self.p.requests).map(move |k| {
            let i = self.permute(k.wrapping_add(0x5EED));
            Message::MapRequest {
                nonce: u64::from(k) + 1,
                smr: false,
                vn: self.vn_of(i),
                eid: self.eid_of(i),
                itr_rloc: self.home_edge(mix(self.p.seed ^ 0x17, k)),
            }
        })
    }

    fn register_of(&self, i: u32, rloc: Rloc) -> Message {
        Message::MapRegister {
            nonce: u64::from(i) + 1,
            vn: self.vn_of(i),
            eid: self.eid_of(i),
            rloc,
            ttl_secs: self.p.register_ttl_secs,
            want_notify: false,
        }
    }

    /// A seeded endpoint-index permutation step.
    fn permute(&self, k: u32) -> u32 {
        mix(self.p.seed, k) % self.p.endpoints
    }
}

/// SplitMix-style integer hash: deterministic, uniform, no RNG state.
fn mix(seed: u64, k: u32) -> u32 {
    let mut z = seed
        .wrapping_add(u64::from(k))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn full_tier_meets_the_metro_floor() {
        let p = MetroParams::full();
        assert!(p.endpoints >= 1_000_000);
        assert!(p.edges >= 256);
        MetroWorkload::new(p); // EID plan must hold a million endpoints
    }

    #[test]
    fn eids_are_unique_and_spread_across_blocks() {
        let w = MetroWorkload::new(MetroParams::small());
        let mut seen = BTreeSet::new();
        let mut blocks = BTreeSet::new();
        for i in 0..w.params().endpoints {
            let Eid::V4(a) = w.eid_of(i) else {
                unreachable!()
            };
            assert!(seen.insert(a), "duplicate EID {a}");
            blocks.insert(u32::from(a) >> 16);
        }
        assert!(
            blocks.len() >= 64,
            "only {} /16 blocks for 2k endpoints",
            blocks.len()
        );
    }

    #[test]
    fn churn_never_re_registers_at_home() {
        let w = MetroWorkload::new(MetroParams::small());
        let churn: Vec<Message> = w.churn().collect();
        assert_eq!(churn.len(), w.params().churn_moves as usize);
        for m in &churn {
            let Message::MapRegister { nonce, rloc, .. } = m else {
                panic!("churn must be registers")
            };
            let i = (nonce - 1) as u32;
            assert_ne!(*rloc, w.home_edge(i), "endpoint {i} must move away");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = MetroWorkload::new(MetroParams::small());
        let b = MetroWorkload::new(MetroParams::small());
        assert!(a.churn().eq(b.churn()));
        assert!(a.requests().eq(b.requests()));
        assert!(a.initial_registers().eq(b.initial_registers()));
    }

    #[test]
    fn subscriptions_cover_every_vn_for_every_border() {
        let w = MetroWorkload::new(MetroParams::small());
        let subs: Vec<Message> = w.subscriptions().collect();
        assert_eq!(
            subs.len(),
            (w.params().vns * u32::from(w.params().borders)) as usize
        );
        let distinct: BTreeSet<_> = subs
            .iter()
            .map(|m| match m {
                Message::Subscribe { vn, subscriber, .. } => (*vn, *subscriber),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(distinct.len(), subs.len());
    }
}
