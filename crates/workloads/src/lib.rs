//! # sda-workloads
//!
//! Workload generators standing in for the paper's live deployments and
//! commercial traffic generator (DESIGN.md §2 documents each
//! substitution):
//!
//! * [`campus`] — the diurnal campus model behind Fig. 9 / Table 5:
//!   Table 3/4 deployment shapes (buildings A and B), morning arrivals,
//!   evening departures, weekends, an always-on device share, favorite-
//!   peer traffic with popularity skew, and nighttime chatter toward
//!   departed endpoints (the building-B cache-cleaning effect).
//! * [`warehouse`] — the massive-mobility model behind Fig. 11: 16,000
//!   endpoints over 200 edges, 800 moves/s flipping attachment between
//!   two physical edges, with measured movers receiving correspondent
//!   traffic; runs against both the reactive (`sda-core`) and proactive
//!   (`sda-bgp`) fabrics.
//! * [`frames`] — the same populations as real Ethernet/IPv4 frames,
//!   batched through the `sda-dataplane` forwarding engine.
//! * [`metro`] — the city-scale control-plane message stream (million-
//!   endpoint tier) driving the partitioned map-server benches.
//! * [`policy_churn`] — Table 3's policy-update scenarios at fleet
//!   scale: SXP re-subset storms, enforcement-point flips and §5.4
//!   group-move vs rule-rewrite rollouts over hundreds of edges
//!   carrying compiled bitset ACLs, with exact fan-out accounting and
//!   a semantic convergence check.
//! * [`queries`] — Poisson arrival processes (Fig. 7c's offered load).
//! * [`traffic`] — popularity (Zipf) samplers shared by the models.
//! * [`chaos`] — the fault campaign (reboot storm, server restart
//!   mid-churn, roam storm on a lossy fabric) with a convergence
//!   verdict and probe round; the robustness counterpart of the
//!   measured workloads.
//!
//! Everything is seeded and deterministic.

pub mod campus;
pub mod chaos;
pub mod frames;
pub mod metro;
pub mod policy_churn;
pub mod queries;
pub mod traffic;
pub mod warehouse;

pub use campus::{CampusParams, CampusScenario};
pub use chaos::{ChaosOutcome, ChaosParams, ChaosScenario};
pub use frames::{FrameDriver, FramePreset, FrameStats};
pub use metro::{MetroParams, MetroWorkload};
pub use policy_churn::{
    ChurnEdge, FlipReport, PolicyChurnParams, PolicyChurnScenario, RolloutReport, StormReport,
};
pub use queries::PoissonArrivals;
pub use traffic::ZipfSampler;
pub use warehouse::{HandoverSample, WarehouseParams};
