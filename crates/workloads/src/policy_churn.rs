//! The policy-churn workload: Table 3's update scenarios at scale.
//!
//! A fleet of hundreds of edges, each holding the compiled bitset ACL
//! ([`CompiledAcl`]) its SXP subset compiles into, driven through the
//! §5.3/§5.4 operational storms:
//!
//! * **SXP re-subset storms** — a burst of matrix rewrites; only the
//!   edges whose local scope intersects the touched rows may receive a
//!   push, and the fan-out is accounted edge for edge.
//! * **Enforcement-point flips** — the whole fleet switches between
//!   egress subsets (rules toward local destinations) and ingress
//!   subsets (rules from local sources), re-subsetting everyone; the
//!   report carries the §5.3 state blow-up (ingress rule volume vs
//!   egress) and the flip's total fan-out.
//! * **Group-move vs rule-rewrite rollouts** — [`UpdatePlan`] executed
//!   both ways; the delivered message counts must equal
//!   [`UpdatePlan::signaling_messages`] exactly (the planner's cost
//!   formula is checked against the rollout it plans, not trusted).
//!
//! Convergence is semantic, not version-counting: after every event,
//! each edge must answer every verdict inside its local scope exactly
//! as the policy server's authoritative matrix does. Everything is
//! seeded and deterministic.

use std::collections::BTreeSet;

use sda_policy::{
    ingress_subset, Action, CompiledAcl, EnforcementPoint, Population, RuleSubset, UpdatePlan,
    UpdateStrategy,
};
use sda_types::{GroupId, RouterId, VnId};

/// Fleet shape and seeding knobs.
#[derive(Clone, Copy, Debug)]
pub struct PolicyChurnParams {
    /// Edge routers in the fleet.
    pub edges: usize,
    /// VNs the deployment spans.
    pub vn_count: u32,
    /// Groups per VN id space.
    pub groups: u16,
    /// Distinct `(vn, group)` bindings attached per edge.
    pub bindings_per_edge: usize,
    /// Endpoints behind each binding.
    pub endpoints_per_binding: u32,
    /// Explicit matrix cells seeded before the churn starts.
    pub base_rules: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for PolicyChurnParams {
    /// Table 3 at scale: 300 edges, 4 VNs, 64 groups.
    fn default() -> Self {
        PolicyChurnParams {
            edges: 300,
            vn_count: 4,
            groups: 64,
            bindings_per_edge: 6,
            endpoints_per_binding: 8,
            base_rules: 1_500,
            seed: 0x5DA_9001,
        }
    }
}

/// One edge of the fleet: its local scope and the compiled ACL its
/// last subset push produced.
pub struct ChurnEdge {
    /// Fabric identity.
    pub router: RouterId,
    /// Locally attached `(vn, group)` bindings, sorted and deduped.
    pub local: Vec<(VnId, GroupId)>,
    /// The edge's enforcement table (compiled from the last push).
    pub acl: CompiledAcl,
    /// Subset pushes received since construction.
    pub pushes: u64,
    /// Total rules carried by those pushes.
    pub rules_received: u64,
}

/// What one re-subset storm did.
#[derive(Clone, Copy, Debug, Default)]
pub struct StormReport {
    /// Matrix cells rewritten.
    pub rewrites: u64,
    /// Edges whose local scope intersected a touched row (pushed).
    pub edges_pushed: u64,
    /// Total rules shipped across those pushes.
    pub rules_pushed: u64,
}

/// What an enforcement-point flip did.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlipReport {
    /// Edges re-subset (the whole fleet — a flip invalidates every
    /// subset, the fan-out floor of §5.3).
    pub edges_pushed: u64,
    /// Rule volume under the old enforcement point.
    pub rules_before: u64,
    /// Rule volume under the new one (ingress carries the blow-up).
    pub rules_after: u64,
}

/// What a §5.4 rollout did, planned vs delivered.
#[derive(Clone, Copy, Debug)]
pub struct RolloutReport {
    /// Strategy executed.
    pub strategy: UpdateStrategy,
    /// The planner's predicted signaling cost.
    pub planned_messages: u64,
    /// Messages actually delivered (re-auths + pushes, or row pushes).
    pub delivered_messages: u64,
    /// Edges that received at least one message.
    pub edges_touched: u64,
}

/// The fleet under churn.
pub struct PolicyChurnScenario {
    params: PolicyChurnParams,
    /// Authoritative intent (the policy server's matrix).
    matrix: sda_policy::ConnectivityMatrix,
    edges: Vec<ChurnEdge>,
    population: Population,
    enforcement: EnforcementPoint,
    rng: u64,
}

/// Splitmix64 step — the crate-wide deterministic stream shape.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PolicyChurnScenario {
    /// Builds the fleet, seeds the matrix, and performs the initial
    /// full SXP push (every edge receives its subset once).
    pub fn new(params: PolicyChurnParams) -> Self {
        let mut rng = params.seed | 1;
        let mut matrix = sda_policy::ConnectivityMatrix::new();
        for _ in 0..params.base_rules {
            let r = splitmix(&mut rng);
            let vn = Self::vn_of(params, r as u32);
            let src = GroupId((r >> 16) as u16 % params.groups);
            let dst = GroupId((r >> 32) as u16 % params.groups);
            let action = if r >> 48 & 1 == 0 {
                Action::Allow
            } else {
                Action::Deny
            };
            matrix.set_rule(vn, src, dst, action);
        }

        let mut population = Population::new();
        let mut edges = Vec::with_capacity(params.edges);
        for e in 0..params.edges {
            let router = RouterId(e as u32 + 1);
            let mut local = Vec::with_capacity(params.bindings_per_edge);
            for _ in 0..params.bindings_per_edge {
                let r = splitmix(&mut rng);
                let vn = Self::vn_of(params, r as u32);
                let group = GroupId((r >> 24) as u16 % params.groups);
                local.push((vn, group));
            }
            local.sort_unstable();
            local.dedup();
            for &(vn, group) in &local {
                population.add(router, vn, group, params.endpoints_per_binding);
            }
            edges.push(ChurnEdge {
                router,
                local,
                acl: CompiledAcl::with_default(matrix.default_action()),
                pushes: 0,
                rules_received: 0,
            });
        }

        let mut scenario = PolicyChurnScenario {
            params,
            matrix,
            edges,
            population,
            enforcement: EnforcementPoint::Egress,
            rng,
        };
        for i in 0..scenario.edges.len() {
            scenario.push_subset(i);
        }
        scenario
    }

    fn vn_of(params: PolicyChurnParams, r: u32) -> VnId {
        VnId::new(1 + r % params.vn_count).expect("vn_count stays in 24-bit space")
    }

    /// The fleet's current enforcement point.
    pub fn enforcement(&self) -> EnforcementPoint {
        self.enforcement
    }

    /// Read access to the fleet.
    pub fn edges(&self) -> &[ChurnEdge] {
        &self.edges
    }

    /// Read access to the authoritative matrix.
    pub fn matrix(&self) -> &sda_policy::ConnectivityMatrix {
        &self.matrix
    }

    /// Read access to the deployment snapshot.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The subset edge `i` needs under the current enforcement point.
    fn subset_for(&self, i: usize) -> RuleSubset {
        match self.enforcement {
            EnforcementPoint::Egress => {
                sda_policy::egress_subset(&self.matrix, &self.edges[i].local)
            }
            EnforcementPoint::Ingress => ingress_subset(&self.matrix, &self.edges[i].local),
        }
    }

    /// Pushes a fresh subset to edge `i` (one SXP message), compiling
    /// it into the edge's bitset ACL. Returns the rules shipped.
    fn push_subset(&mut self, i: usize) -> u64 {
        let subset = self.subset_for(i);
        let rules = subset.len() as u64;
        let edge = &mut self.edges[i];
        edge.acl.replace(&subset);
        edge.pushes += 1;
        edge.rules_received += rules;
        rules
    }

    /// Whether edge `i`'s scope intersects `(vn, group)` as the side
    /// the current enforcement point subsets on (destination for
    /// egress, source for ingress — §3.3.1 / §5.3).
    fn edge_scoped_to(&self, i: usize, vn: VnId, group: GroupId) -> bool {
        self.edges[i].local.binary_search(&(vn, group)).is_ok()
    }

    /// A burst of `rewrites` random matrix-cell flips followed by the
    /// SXP re-subset push to exactly the affected edges. Fan-out is
    /// exact: an edge is pushed iff its local scope intersects a
    /// touched row's subset-relevant group.
    pub fn resubset_storm(&mut self, rewrites: usize) -> StormReport {
        let mut touched: BTreeSet<(VnId, GroupId)> = BTreeSet::new();
        for _ in 0..rewrites {
            let r = splitmix(&mut self.rng);
            let vn = Self::vn_of(self.params, r as u32);
            let src = GroupId((r >> 16) as u16 % self.params.groups);
            let dst = GroupId((r >> 32) as u16 % self.params.groups);
            let action = if r >> 48 & 1 == 0 {
                Action::Allow
            } else {
                Action::Deny
            };
            self.matrix.set_rule(vn, src, dst, action);
            // Which group the subset keys on for this rule (§3.3.1:
            // egress subsets follow destinations, ingress follow
            // sources).
            touched.insert(match self.enforcement {
                EnforcementPoint::Egress => (vn, dst),
                EnforcementPoint::Ingress => (vn, src),
            });
        }
        let mut report = StormReport {
            rewrites: rewrites as u64,
            ..StormReport::default()
        };
        for i in 0..self.edges.len() {
            if touched.iter().any(|&(vn, g)| self.edge_scoped_to(i, vn, g)) {
                report.rules_pushed += self.push_subset(i);
                report.edges_pushed += 1;
            }
        }
        report
    }

    /// The edges a storm touching `keys` would push — the oracle the
    /// scenario tests diff actual push deltas against.
    pub fn affected_edges(&self, keys: &[(VnId, GroupId)]) -> Vec<RouterId> {
        (0..self.edges.len())
            .filter(|&i| keys.iter().any(|&(vn, g)| self.edge_scoped_to(i, vn, g)))
            .map(|i| self.edges[i].router)
            .collect()
    }

    /// Flips the fleet's enforcement point and re-subsets every edge
    /// (a flip invalidates the subset-selection rule itself, so the
    /// fan-out is the whole fleet — the operational cost of the §5.3
    /// choice).
    pub fn flip_enforcement(&mut self) -> FlipReport {
        let rules_before: u64 = self.edges.iter().map(|e| e.acl.len() as u64).sum();
        self.enforcement = match self.enforcement {
            EnforcementPoint::Egress => EnforcementPoint::Ingress,
            EnforcementPoint::Ingress => EnforcementPoint::Egress,
        };
        let mut report = FlipReport {
            rules_before,
            ..FlipReport::default()
        };
        for i in 0..self.edges.len() {
            self.push_subset(i);
            report.edges_pushed += 1;
        }
        report.rules_after = self.edges.iter().map(|e| e.acl.len() as u64).sum();
        report
    }

    /// Executes a §5.4 acquisition rollout (`from` absorbed into `to`
    /// inside `vn`) under `strategy`, delivering real messages:
    ///
    /// * MoveEndpoints — every hosted endpoint of `from` re-auths (one
    ///   message) and pulls a refreshed subset (one message); the
    ///   edge's local scope is retagged and its ACL recompiled.
    /// * RewriteRules — every explicit rule touching `from` is
    ///   mirrored onto `to`; each edge scoped to a rewritten row
    ///   receives the row's rules.
    ///
    /// The report carries the planner's predicted cost next to the
    /// delivered count; the scenario tests assert they are equal.
    pub fn rollout(
        &mut self,
        vn: VnId,
        from: GroupId,
        to: GroupId,
        strategy: UpdateStrategy,
    ) -> RolloutReport {
        // Rows the rewrite path would touch: every explicit rule with
        // `from` as destination (the egress-subset side §5.4 costs).
        let rules_toward_from = self.matrix.rules_of(vn).filter(|r| r.dst == from).count() as u32;
        let plan = UpdatePlan::acquisition(vn, from, to, rules_toward_from);
        let planned = plan.signaling_messages(strategy, &self.population);
        let fanout = plan.fanout(strategy, &self.population);

        let mut delivered = 0u64;
        let mut edges_touched = 0u64;
        match strategy {
            UpdateStrategy::MoveEndpoints => {
                for i in 0..self.edges.len() {
                    let hosted = self
                        .population
                        .per_edge(vn, from)
                        .iter()
                        .find(|(e, _)| *e == self.edges[i].router)
                        .map(|(_, n)| *n)
                        .unwrap_or(0);
                    if hosted == 0 {
                        continue;
                    }
                    // Each endpoint re-authenticates and refreshes;
                    // the edge recompiles once (idempotent pushes).
                    delivered += u64::from(hosted) * 2;
                    edges_touched += 1;
                    for binding in &mut self.edges[i].local {
                        if *binding == (vn, from) {
                            *binding = (vn, to);
                        }
                    }
                    self.edges[i].local.sort_unstable();
                    self.edges[i].local.dedup();
                    self.push_subset(i);
                }
                self.population.move_group(vn, from, to);
            }
            UpdateStrategy::RewriteRules => {
                let rows: Vec<sda_policy::GroupRule> =
                    self.matrix.rules_of(vn).filter(|r| r.dst == from).collect();
                for r in &rows {
                    self.matrix.set_rule(vn, r.src, to, r.action);
                }
                for i in 0..self.edges.len() {
                    if self.edge_scoped_to(i, vn, from) {
                        delivered += u64::from(rules_toward_from);
                        edges_touched += 1;
                        self.push_subset(i);
                    }
                }
                // The mirrored `to` rows also land on `to`'s edges.
                for i in 0..self.edges.len() {
                    if self.edge_scoped_to(i, vn, to) && !self.edge_scoped_to(i, vn, from) {
                        self.push_subset(i);
                    }
                }
            }
        }
        debug_assert_eq!(fanout.total(), planned, "planner self-consistency");
        RolloutReport {
            strategy,
            planned_messages: planned,
            delivered_messages: delivered,
            edges_touched,
        }
    }

    /// Semantic convergence: every edge answers every verdict inside
    /// its subset scope exactly as the authoritative matrix does.
    /// Returns the number of `(edge, pair)` divergences (0 = converged).
    pub fn divergences(&self) -> u64 {
        let mut bad = 0;
        let default = self.matrix.default_action();
        for edge in &self.edges {
            for &(vn, local_group) in &edge.local {
                for g in 0..self.params.groups {
                    let other = GroupId(g);
                    let (src, dst) = match self.enforcement {
                        // Egress subset: rules *toward* local groups.
                        EnforcementPoint::Egress => (other, local_group),
                        // Ingress subset: rules *from* local groups.
                        EnforcementPoint::Ingress => (local_group, other),
                    };
                    if edge.acl.check(vn, src, dst, default) != self.matrix.check(vn, src, dst) {
                        bad += 1;
                    }
                }
            }
        }
        bad
    }

    /// Total subset pushes across the fleet.
    pub fn total_pushes(&self) -> u64 {
        self.edges.iter().map(|e| e.pushes).sum()
    }

    /// Total rules shipped across all pushes (SXP byte-volume proxy).
    pub fn total_rules_shipped(&self) -> u64 {
        self.edges.iter().map(|e| e.rules_received).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PolicyChurnParams {
        PolicyChurnParams {
            edges: 24,
            vn_count: 2,
            groups: 16,
            bindings_per_edge: 3,
            endpoints_per_binding: 4,
            base_rules: 120,
            seed: 7,
        }
    }

    #[test]
    fn initial_push_converges_fleet() {
        let s = PolicyChurnScenario::new(small());
        assert_eq!(s.total_pushes(), 24, "exactly one push per edge");
        assert_eq!(s.divergences(), 0);
        assert!(s.edges().iter().all(|e| e.acl.version() > 0));
    }

    #[test]
    fn storm_pushes_only_scoped_edges_and_reconverges() {
        let mut s = PolicyChurnScenario::new(small());
        let before: Vec<u64> = s.edges().iter().map(|e| e.pushes).collect();
        let report = s.resubset_storm(10);
        assert!(
            report.edges_pushed > 0,
            "a 10-cell storm must land somewhere"
        );
        let delta: u64 = s
            .edges()
            .iter()
            .zip(&before)
            .map(|(e, b)| e.pushes - b)
            .sum();
        assert_eq!(delta, report.edges_pushed, "fan-out accounted exactly");
        assert_eq!(s.divergences(), 0);
    }

    #[test]
    fn flip_resubsets_everyone_both_ways() {
        let mut s = PolicyChurnScenario::new(small());
        let f1 = s.flip_enforcement();
        assert_eq!(f1.edges_pushed, 24);
        assert_eq!(s.enforcement(), EnforcementPoint::Ingress);
        assert_eq!(s.divergences(), 0);
        let f2 = s.flip_enforcement();
        assert_eq!(s.enforcement(), EnforcementPoint::Egress);
        assert_eq!(f2.rules_after, f1.rules_before, "flip-back restores volume");
        assert_eq!(s.divergences(), 0);
    }

    #[test]
    fn rollouts_deliver_exactly_the_planned_messages() {
        for strategy in [UpdateStrategy::MoveEndpoints, UpdateStrategy::RewriteRules] {
            let mut s = PolicyChurnScenario::new(small());
            let vn = VnId::new(1).unwrap();
            let report = s.rollout(vn, GroupId(3), GroupId(5), strategy);
            assert_eq!(
                report.delivered_messages, report.planned_messages,
                "{strategy:?}: §5.4 cost formula must match the rollout it plans"
            );
            assert_eq!(s.divergences(), 0, "{strategy:?}: fleet reconverged");
        }
    }
}
