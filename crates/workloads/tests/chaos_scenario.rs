//! The chaos scenario pack as a test: the full campaign (or the CI
//! scale when `SDA_CHAOS_REDUCED` is set) must end converged, deliver
//! every probe on the healed fabric, and replay byte-identically.

use sda_workloads::chaos::{ChaosParams, ChaosScenario};

fn run(params: ChaosParams) -> sda_workloads::ChaosOutcome {
    let mut s = ChaosScenario::build(params);
    s.run()
}

#[test]
fn chaos_campaign_converges_and_probes_deliver() {
    let params = ChaosParams::from_env();
    let label = params.name;
    let outcome = run(params);
    outcome.print(label);
    assert!(
        outcome.report.converged(),
        "post-chaos fixed point: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.probes_delivered, outcome.probes_sent,
        "healed fabric must deliver every probe"
    );
    // The campaign actually hurt: faults fired, messages died, the
    // retry/self-healing machinery did real work.
    let counter = |name: &str| {
        outcome
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(counter("simnet.node_crashes") >= 2, "storm + server reboot");
    assert!(
        counter("simnet.link_drops") > 0,
        "lossy window dropped messages"
    );
    assert!(counter("ctrl.server_restarts") == 1);
    assert!(counter("fabric.edge_restarts") as usize >= 1);
    assert!(
        counter("fabric.register_retries") > 0,
        "registers retransmitted under loss"
    );
    assert!(
        counter("border.resyncs_completed") >= 1,
        "borders resynced after the server restart"
    );
}

/// The overload campaign: the full storm against a 4-shard,
/// admission-guarded, bounded-queue control plane with one shard
/// crashed mid-storm. Degradation must be graceful — sheds happen, but
/// the fabric converges, every bounded structure stays within its cap,
/// and no resolution is left permanently wedged.
#[test]
fn shard_storm_degrades_gracefully_and_converges() {
    let params = if std::env::var_os("SDA_CHAOS_REDUCED").is_some() {
        sda_workloads::chaos::ChaosParams {
            name: "shard-reduced",
            ..ChaosParams::reduced().with_overload(4)
        }
    } else {
        ChaosParams::shard_storm()
    };
    let cap = params.ingress_cap.unwrap();
    let max_resolving = 4096; // FabricConfig default, asserted below
    let mut s = ChaosScenario::build(params.clone());
    let outcome = s.run();
    outcome.print(params.name);

    assert!(
        outcome.report.converged(),
        "overload campaign must still reach the fixed point: {:?}",
        outcome.report
    );
    assert_eq!(outcome.probes_delivered, outcome.probes_sent);

    let counter = |name: &str| {
        outcome
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap()
    };
    // The admission gate actually fired, the shard outage actually
    // happened, and shed senders honored the retry-after hint.
    assert!(counter("ctrl.shed_replies") > 0, "admission never shed");
    assert_eq!(counter("simnet.shard_crashes"), 1);
    assert_eq!(counter("simnet.shard_restarts"), 1);
    assert!(
        counter("fabric.server_busy_backoffs") > 0,
        "no sender honored a retry-after hint"
    );
    assert!(counter("fabric.jittered_retries") > 0, "jitter never used");

    // Bounded-queue proofs: every capped structure stayed within cap.
    assert!(
        outcome.server_queue_peak as usize <= cap,
        "server ingress queue peak {} exceeded cap {cap}",
        outcome.server_queue_peak
    );
    let dir_params = &s.fabric.directory().params;
    assert_eq!(dir_params.max_resolving, max_resolving);
    for &e in &s.edges {
        let edge = s.fabric.edge(e);
        assert!(
            edge.resolving_peak() <= dir_params.max_resolving,
            "resolving map exceeded its cap"
        );
        assert!(
            edge.pending_registers_peak() <= dir_params.max_pending_registers,
            "pending-register map exceeded its cap"
        );
        // Zero permanently-wedged resolutions on the healed fabric.
        assert_eq!(
            edge.resolving_len(),
            0,
            "edge left with wedged resolving entries"
        );
    }
    assert!(
        s.fabric.routing_server().server().pubsub_peak_depth() <= sda_ctrl::DEFAULT_QUEUE_CAP,
        "delta fan-out queue exceeded its cap"
    );
}

#[test]
fn chaos_campaign_replays_identically() {
    let params = ChaosParams::reduced();
    let a = run(params.clone());
    let b = run(params);
    assert_eq!(
        a.counters, b.counters,
        "same seed, same campaign, same trace"
    );
    assert_eq!(a.probes_delivered, b.probes_delivered);
}
