//! The chaos scenario pack as a test: the full campaign (or the CI
//! scale when `SDA_CHAOS_REDUCED` is set) must end converged, deliver
//! every probe on the healed fabric, and replay byte-identically.

use sda_workloads::chaos::{ChaosParams, ChaosScenario};

fn run(params: ChaosParams) -> sda_workloads::ChaosOutcome {
    let mut s = ChaosScenario::build(params);
    s.run()
}

#[test]
fn chaos_campaign_converges_and_probes_deliver() {
    let params = ChaosParams::from_env();
    let label = params.name;
    let outcome = run(params);
    outcome.print(label);
    assert!(
        outcome.report.converged(),
        "post-chaos fixed point: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.probes_delivered, outcome.probes_sent,
        "healed fabric must deliver every probe"
    );
    // The campaign actually hurt: faults fired, messages died, the
    // retry/self-healing machinery did real work.
    let counter = |name: &str| {
        outcome
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(counter("simnet.node_crashes") >= 2, "storm + server reboot");
    assert!(
        counter("simnet.link_drops") > 0,
        "lossy window dropped messages"
    );
    assert!(counter("ctrl.server_restarts") == 1);
    assert!(counter("fabric.edge_restarts") as usize >= 1);
    assert!(
        counter("fabric.register_retries") > 0,
        "registers retransmitted under loss"
    );
    assert!(
        counter("border.resyncs_completed") >= 1,
        "borders resynced after the server restart"
    );
}

#[test]
fn chaos_campaign_replays_identically() {
    let params = ChaosParams::reduced();
    let a = run(params.clone());
    let b = run(params);
    assert_eq!(
        a.counters, b.counters,
        "same seed, same campaign, same trace"
    );
    assert_eq!(a.probes_delivered, b.probes_delivered);
}
