//! The Table-3-at-scale policy-churn scenario: 300 edges carrying
//! compiled bitset ACLs, driven through an SXP re-subset storm, a §5.3
//! enforcement-point flip (and back), and both §5.4 rollout strategies
//! — with exact fan-out accounting at every step and a semantic
//! convergence check (every edge answers its whole subset scope exactly
//! like the authoritative matrix) after each event.

use sda_policy::{EnforcementPoint, UpdateStrategy};
use sda_types::{GroupId, VnId};
use sda_workloads::{PolicyChurnParams, PolicyChurnScenario};

fn vn(n: u32) -> VnId {
    VnId::new(n).unwrap()
}

#[test]
fn fleet_survives_storm_flip_and_rollouts() {
    let params = PolicyChurnParams::default();
    assert!(
        params.edges >= 300,
        "Table 3 at scale means hundreds of edges"
    );
    let mut s = PolicyChurnScenario::new(params);

    // Initial SXP distribution: one push per edge, fleet converged.
    assert_eq!(s.total_pushes(), params.edges as u64);
    assert_eq!(s.divergences(), 0, "initial distribution must converge");
    let baseline_rules = s.total_rules_shipped();
    assert!(
        baseline_rules > 0,
        "a 1.5k-cell matrix must subset somewhere"
    );

    // --- SXP re-subset storm -------------------------------------------
    let before: Vec<u64> = s.edges().iter().map(|e| e.pushes).collect();
    let storm = s.resubset_storm(200);
    assert_eq!(storm.rewrites, 200);
    assert!(
        storm.edges_pushed > 0 && storm.edges_pushed <= params.edges as u64,
        "storm fan-out must be positive and bounded by the fleet"
    );
    // Exact fan-out: the push deltas across the fleet sum to the
    // reported count, and every pushed edge moved by exactly one.
    let deltas: Vec<u64> = s
        .edges()
        .iter()
        .zip(&before)
        .map(|(e, b)| e.pushes - b)
        .collect();
    assert_eq!(deltas.iter().sum::<u64>(), storm.edges_pushed);
    assert!(deltas.iter().all(|d| *d <= 1), "one push per affected edge");
    assert_eq!(s.divergences(), 0, "storm must reconverge");

    // --- Enforcement-point flip (§5.3) ---------------------------------
    let flip = s.flip_enforcement();
    assert_eq!(s.enforcement(), EnforcementPoint::Ingress);
    assert_eq!(
        flip.edges_pushed, params.edges as u64,
        "a flip re-subsets the entire fleet"
    );
    assert_eq!(s.divergences(), 0, "ingress subsets must converge too");
    // The §5.3 state argument, measured: ingress subsets (every rule a
    // local *source* may use) carry at least the egress volume on this
    // uniformly random matrix.
    assert!(
        flip.rules_after >= flip.rules_before,
        "ingress rule volume {} unexpectedly below egress {}",
        flip.rules_after,
        flip.rules_before
    );
    let back = s.flip_enforcement();
    assert_eq!(s.enforcement(), EnforcementPoint::Egress);
    assert_eq!(
        back.rules_after, flip.rules_before,
        "flip-back restores volume"
    );
    assert_eq!(s.divergences(), 0);

    // --- §5.4 rollouts: group move vs rule rewrite ---------------------
    // Pick a source group that is actually hosted so the move is real.
    let from = (0..64u16)
        .map(GroupId)
        .find(|g| s.population().group_size(vn(1), *g) > 0)
        .expect("a 300-edge fleet hosts something in VN 1");
    let to = GroupId(63);

    let mv = s.rollout(vn(1), from, to, UpdateStrategy::MoveEndpoints);
    assert!(mv.planned_messages > 0, "hosted group must cost something");
    assert_eq!(
        mv.delivered_messages, mv.planned_messages,
        "group-move rollout must deliver exactly the planned §5.4 cost"
    );
    assert!(mv.edges_touched > 0);
    assert_eq!(s.population().group_size(vn(1), from), 0, "everyone moved");
    assert_eq!(s.divergences(), 0, "move rollout reconverged");

    // Rewrite rollout on a fresh hosted group.
    let from2 = (0..63u16)
        .map(GroupId)
        .find(|g| {
            s.population().group_size(vn(2), *g) > 0
                && s.matrix().rules_of(vn(2)).any(|r| r.dst == *g)
        })
        .expect("some hosted VN-2 group has explicit rows toward it");
    let rw = s.rollout(vn(2), from2, GroupId(62), UpdateStrategy::RewriteRules);
    assert!(
        rw.planned_messages > 0,
        "rows toward a hosted group cost > 0"
    );
    assert_eq!(
        rw.delivered_messages, rw.planned_messages,
        "rule-rewrite rollout must deliver exactly the planned §5.4 cost"
    );
    assert_eq!(s.divergences(), 0, "rewrite rollout reconverged");
}
