//! The metro workload at laptop scale, driven end-to-end through the
//! partitioned map-server: onboard → subscribe → churn → resolve →
//! expire, checking partition balance, move accounting, pub/sub
//! delivery, and the expiry sweep — the same phases the full-tier
//! `ctrl_plane` bench times.

use sda_ctrl::PartitionedMapServer;
use sda_simnet::{SimDuration, SimTime};
use sda_types::Rloc;
use sda_wire::lisp::Message;
use sda_workloads::{MetroParams, MetroWorkload};

const SHARDS: usize = 4;

#[test]
fn small_metro_through_partitioned_server() {
    let w = MetroWorkload::new(MetroParams::small());
    let p = w.params().clone();
    // Queue sized for the mass-expiry finale: the whole population ages
    // out at once, and this test asserts exact delta fan-out rather
    // than the gap → resync path (covered in `sda-ctrl`'s tests).
    let mut server = PartitionedMapServer::with_queue_capacity(
        Rloc::for_router_index(1000),
        SHARDS,
        p.endpoints as usize * 2,
    );
    let now = SimTime::ZERO;

    // Onboard: every endpoint lands on exactly one shard, and the
    // prime-stride EID plan keeps the partition balanced.
    for m in w.initial_registers() {
        server.handle(m, now);
    }
    assert_eq!(server.db_len(), p.endpoints as usize);
    let lens = server.shard_lens();
    let (min, max) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
    assert!(
        max <= min + min / 2,
        "partition imbalance: {lens:?} (min {min}, max {max})"
    );
    server.flush_publishes(); // nobody subscribed yet

    // Borders subscribe to every VN; the first flush is their snapshot
    // of the whole world, each entry exactly once per subscriber.
    for m in w.subscriptions() {
        server.handle(m, now);
    }
    let snapshot = server.flush_publishes();
    assert_eq!(
        snapshot.len(),
        p.endpoints as usize * usize::from(p.borders),
        "snapshot must carry every mapping once per border"
    );

    // Churn: every message is a move — notify to the previous edge, and
    // one delta per subscriber of that VN.
    let mut notifies = 0usize;
    for m in w.churn() {
        let out = server.handle(m, now);
        notifies += out
            .iter()
            .filter(|(_, m)| matches!(m, Message::MapNotify { .. }))
            .count();
    }
    // Churn may revisit an endpoint; every churn register still changes
    // its RLOC (the generator never picks the current home... but a
    // second visit can land it back), so moves ≤ churn_moves and most
    // churn is a genuine move.
    let stats = server.stats();
    assert!(stats.moves as u32 >= p.churn_moves * 9 / 10);
    assert_eq!(notifies, stats.moves as usize);
    let deltas = server.flush_publishes();
    assert_eq!(
        deltas.len(),
        stats.moves as usize * usize::from(p.borders),
        "each move fans out once per subscriber of its VN"
    );
    assert_eq!(server.pubsub_gaps(), 0, "default queue must not overflow");

    // Resolve: the workload only asks for onboarded endpoints, so every
    // request gets a positive reply, spread across shards.
    for m in w.requests() {
        let out = server.handle(m, now);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].1,
            Message::MapReply {
                negative: false,
                ..
            }
        ));
    }
    let dist = server.request_distribution();
    assert_eq!(dist.iter().sum::<u64>(), u64::from(p.requests));
    assert!(
        dist.iter().all(|&c| c > 0),
        "every shard must answer requests: {dist:?}"
    );

    // Expire: past the TTL the whole population ages out (the parallel
    // sweep), withdrawals fan out, and the database drains.
    let later = now + SimDuration::from_secs(u64::from(p.register_ttl_secs) + 1);
    let dead = server.expire(later);
    assert_eq!(dead, p.endpoints as usize);
    assert!(server.is_empty());
    let withdrawals = server.flush_publishes();
    assert_eq!(
        withdrawals.len(),
        p.endpoints as usize * usize::from(p.borders)
    );
    assert!(withdrawals
        .iter()
        .all(|(_, m)| matches!(m, Message::Publish { withdraw: true, .. })));
}

/// The workload's deterministic streams replayed twice produce the same
/// server state — the property the bench's re-derived slices rely on.
#[test]
fn metro_replay_is_reproducible() {
    let run = || {
        let w = MetroWorkload::new(MetroParams::small());
        let mut s = PartitionedMapServer::new(Rloc::for_router_index(1000), SHARDS);
        for m in w.initial_registers().chain(w.churn()) {
            s.handle(m, SimTime::ZERO);
        }
        (s.shard_lens(), s.stats())
    };
    let (lens_a, stats_a) = run();
    let (lens_b, stats_b) = run();
    assert_eq!(lens_a, lens_b);
    assert_eq!(stats_a.moves, stats_b.moves);
    assert_eq!(stats_a.registers, stats_b.registers);
}
