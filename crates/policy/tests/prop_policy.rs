//! Property tests for the policy plane: matrix/subset coherence and the
//! §5.4 planner's cost model.

use proptest::prelude::*;
use sda_policy::sxp::{egress_subset, ingress_subset};
use sda_policy::{Action, ConnectivityMatrix, Population, UpdatePlan, UpdateStrategy};
use sda_types::{GroupId, RouterId, VnId};

fn vn(n: u32) -> VnId {
    VnId::new(n).unwrap()
}

fn arb_rules() -> impl Strategy<Value = Vec<(u32, u16, u16, bool)>> {
    proptest::collection::vec((1u32..4, 0u16..12, 0u16..12, any::<bool>()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The egress subset contains *exactly* the rules whose destination
    /// is local, and every subset rule agrees with the full matrix.
    #[test]
    fn egress_subset_is_sound_and_complete(
        rules in arb_rules(),
        local in proptest::collection::vec((1u32..4, 0u16..12), 1..6),
    ) {
        let mut m = ConnectivityMatrix::new();
        for (v, s, d, allow) in &rules {
            m.set_rule(
                vn(*v),
                GroupId(*s),
                GroupId(*d),
                if *allow { Action::Allow } else { Action::Deny },
            );
        }
        let local: Vec<(VnId, GroupId)> =
            local.into_iter().map(|(v, g)| (vn(v), GroupId(g))).collect();
        let subset = egress_subset(&m, &local);

        // Soundness: every rule in the subset is in the matrix, has a
        // local destination, and carries the matrix's action.
        for (v, r) in &subset.rules {
            prop_assert!(local.contains(&(*v, r.dst)));
            prop_assert_eq!(m.check(*v, r.src, r.dst), r.action);
        }
        // Completeness: every matrix rule with a local destination is in
        // the subset.
        for v in m.vns().collect::<Vec<_>>() {
            for r in m.rules_of(v) {
                if local.contains(&(v, r.dst)) {
                    prop_assert!(
                        subset.rules.iter().any(|(sv, sr)| *sv == v
                            && sr.src == r.src
                            && sr.dst == r.dst
                            && sr.action == r.action),
                        "missing rule {v} {:?}", r
                    );
                }
            }
        }
        // Version tags the matrix state.
        prop_assert_eq!(subset.version, m.version());
    }

    /// Ingress and egress subsets partition along src/dst roles: a rule
    /// appears in the ingress subset iff its source is local.
    #[test]
    fn ingress_subset_selects_by_source(
        rules in arb_rules(),
        local in proptest::collection::vec((1u32..4, 0u16..12), 1..6),
    ) {
        let mut m = ConnectivityMatrix::new();
        for (v, s, d, allow) in &rules {
            m.set_rule(
                vn(*v),
                GroupId(*s),
                GroupId(*d),
                if *allow { Action::Allow } else { Action::Deny },
            );
        }
        let local: Vec<(VnId, GroupId)> =
            local.into_iter().map(|(v, g)| (vn(v), GroupId(g))).collect();
        let subset = ingress_subset(&m, &local);
        for (v, r) in &subset.rules {
            prop_assert!(local.contains(&(*v, r.src)));
        }
        let expected = m
            .vns()
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|v| m.rules_of(v).map(move |r| (v, r)))
            .filter(|(v, r)| local.contains(&(*v, r.src)))
            .count();
        prop_assert_eq!(subset.len(), expected);
    }

    /// Matrix check() is a pure function of the last write per cell.
    #[test]
    fn matrix_last_write_wins(rules in arb_rules(), probe in (1u32..4, 0u16..12, 0u16..12)) {
        let mut m = ConnectivityMatrix::new();
        for (v, s, d, allow) in &rules {
            m.set_rule(
                vn(*v),
                GroupId(*s),
                GroupId(*d),
                if *allow { Action::Allow } else { Action::Deny },
            );
        }
        let (v, s, d) = probe;
        let want = rules
            .iter()
            .rev()
            .find(|(rv, rs, rd, _)| *rv == v && *rs == s && *rd == d)
            .map(|(_, _, _, allow)| if *allow { Action::Allow } else { Action::Deny })
            .unwrap_or(Action::Deny);
        prop_assert_eq!(m.check(vn(v), GroupId(s), GroupId(d)), want);
    }

    /// Planner consistency: `cheaper_strategy` always returns the
    /// strategy whose cost is minimal, and costs scale linearly with
    /// population/rule multipliers.
    #[test]
    fn planner_picks_the_cheaper_strategy(
        spread in proptest::collection::vec((0u32..30, 1u32..200), 1..10),
        rules_touched in 1u32..100,
    ) {
        let mut pop = Population::new();
        for (edge, n) in &spread {
            pop.add(RouterId(*edge), vn(1), GroupId(1), *n);
        }
        let plan = UpdatePlan::acquisition(vn(1), GroupId(1), GroupId(2), rules_touched);
        let mv = plan.signaling_messages(UpdateStrategy::MoveEndpoints, &pop);
        let rw = plan.signaling_messages(UpdateStrategy::RewriteRules, &pop);
        let pick = plan.cheaper_strategy(&pop);
        match pick {
            UpdateStrategy::MoveEndpoints => prop_assert!(mv <= rw),
            UpdateStrategy::RewriteRules => prop_assert!(rw < mv),
        }
        // Move cost = 2 messages per endpoint, exactly.
        prop_assert_eq!(mv, u64::from(pop.group_size(vn(1), GroupId(1))) * 2);
    }
}
