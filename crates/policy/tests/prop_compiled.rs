//! Differential property tests: the compiled bitset ACL must agree with
//! the reference per-pair [`GroupAcl`] verdict-for-verdict and
//! counter-for-counter over random matrices, installs, replaces,
//! enforcement traffic and clears — for both compiled default
//! polarities (the folded fast path and the mismatched-default slow
//! path).

use proptest::prelude::*;
use sda_policy::{Action, CompiledAcl, ConnectivityMatrix, GroupAcl, GroupRule, RuleSubset};
use sda_types::{GroupId, VnId};

fn vn(n: u32) -> VnId {
    VnId::new(n).unwrap()
}

fn action(allow: bool) -> Action {
    if allow {
        Action::Allow
    } else {
        Action::Deny
    }
}

type RawRules = Vec<(u32, u16, u16, bool)>;

fn arb_rules(max: usize) -> impl Strategy<Value = RawRules> {
    proptest::collection::vec((1u32..4, 0u16..24, 0u16..24, any::<bool>()), 0..max)
}

fn arb_probes() -> impl Strategy<Value = Vec<(u32, u16, u16, bool)>> {
    proptest::collection::vec((1u32..5, 0u16..28, 0u16..28, any::<bool>()), 1..80)
}

fn subset(version: u64, rules: &RawRules) -> RuleSubset {
    RuleSubset {
        version,
        rules: rules
            .iter()
            .map(|(v, s, d, allow)| {
                (
                    vn(*v),
                    GroupRule {
                        src: GroupId(*s),
                        dst: GroupId(*d),
                        action: action(*allow),
                    },
                )
            })
            .collect(),
    }
}

fn matrix(default: Action, rules: &RawRules) -> ConnectivityMatrix {
    let mut m = ConnectivityMatrix::with_default(default);
    for (v, s, d, allow) in rules {
        m.set_rule(vn(*v), GroupId(*s), GroupId(*d), action(*allow));
    }
    m
}

/// Asserts check() agreement over the full probe grid, both defaults.
fn assert_grid_agrees(compiled: &CompiledAcl, reference: &GroupAcl) {
    for v in 1..5u32 {
        for s in 0..28u16 {
            for d in 0..28u16 {
                for default in [Action::Allow, Action::Deny] {
                    assert_eq!(
                        compiled.check(vn(v), GroupId(s), GroupId(d), default),
                        reference.check(vn(v), GroupId(s), GroupId(d), default),
                        "vn {v} {s}->{d} default {default:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full lifecycle differential: compile a matrix, enforce traffic,
    /// delta-install, replace, enforce again, clear — the compiled form
    /// must shadow the reference at every step.
    #[test]
    fn compiled_acl_shadows_group_acl(
        compiled_default_allow in any::<bool>(),
        base in arb_rules(60),
        delta in arb_rules(20),
        refresh in arb_rules(20),
        probes in arb_probes(),
    ) {
        let compiled_default = action(compiled_default_allow);
        let m = matrix(compiled_default, &base);

        let mut compiled = CompiledAcl::with_default(compiled_default);
        let mut reference = GroupAcl::new();
        compiled.install_matrix(&m);
        reference.install_matrix(&m);
        prop_assert_eq!(compiled.len(), reference.len());
        prop_assert_eq!(compiled.len(), m.len());
        prop_assert_eq!(compiled.version(), reference.version());
        assert_grid_agrees(&compiled, &reference);

        // Counting traffic: verdict-for-verdict, counter-for-counter.
        for (v, s, d, default_allow) in &probes {
            let default = action(*default_allow);
            prop_assert_eq!(
                compiled.enforce(vn(*v), GroupId(*s), GroupId(*d), default),
                reference.enforce(vn(*v), GroupId(*s), GroupId(*d), default),
            );
        }
        prop_assert_eq!(compiled.counters(), reference.counters());
        prop_assert_eq!(compiled.drop_permille(), reference.drop_permille());

        // Delta install (merge) then full replace.
        let s1 = subset(m.version() + 1, &delta);
        compiled.install(&s1);
        reference.install(&s1);
        prop_assert_eq!(compiled.len(), reference.len());
        prop_assert_eq!(compiled.version(), reference.version());
        assert_grid_agrees(&compiled, &reference);

        let s2 = subset(m.version() + 2, &refresh);
        compiled.replace(&s2);
        reference.replace(&s2);
        prop_assert_eq!(compiled.len(), reference.len());
        prop_assert_eq!(compiled.version(), reference.version());
        assert_grid_agrees(&compiled, &reference);

        for (v, s, d, default_allow) in &probes {
            let default = action(*default_allow);
            prop_assert_eq!(
                compiled.enforce(vn(*v), GroupId(*s), GroupId(*d), default),
                reference.enforce(vn(*v), GroupId(*s), GroupId(*d), default),
            );
        }
        prop_assert_eq!(compiled.counters(), reference.counters());

        compiled.clear();
        reference.clear();
        prop_assert!(compiled.is_empty());
        prop_assert_eq!(compiled.len(), reference.len());
        prop_assert_eq!(compiled.counters(), reference.counters());
        prop_assert_eq!(compiled.version(), reference.version());
    }

    /// Decompilation inverts compilation: `to_group_acl` reproduces the
    /// exact rule set and version, and a published clone keeps serving
    /// the old rules while the working copy takes deltas.
    #[test]
    fn decompile_round_trips_and_publish_isolates(
        base in arb_rules(60),
        delta in arb_rules(20),
    ) {
        let m = matrix(Action::Deny, &base);
        let mut compiled = CompiledAcl::compile(&m);
        let decompiled = compiled.to_group_acl();
        prop_assert_eq!(decompiled.len(), compiled.len());
        prop_assert_eq!(decompiled.version(), compiled.version());
        assert_grid_agrees(&compiled, &decompiled);

        // Epoch-publish model: the clone is the snapshot workers read.
        let published = compiled.clone();
        let frozen = published.to_group_acl();
        compiled.install(&subset(m.version() + 1, &delta));
        // The snapshot still answers exactly as before the delta...
        assert_grid_agrees(&published, &frozen);
        // ...and the working copy matches a reference that took the
        // same delta.
        let mut reference = frozen.clone();
        reference.install(&subset(m.version() + 1, &delta));
        assert_grid_agrees(&compiled, &reference);
        // Counters stay shared across the publish (one Fig. 12 total).
        published.enforce(vn(1), GroupId(0), GroupId(0), Action::Deny);
        compiled.enforce(vn(1), GroupId(0), GroupId(1), Action::Deny);
        let (a, d) = compiled.counters();
        prop_assert_eq!((a, d), published.counters());
        prop_assert_eq!(a + d, 2);
    }
}
